"""Acceptance: one sampled ``/plan_batch`` through a 2-worker cluster
assembles into a single complete trace that explains >= 90% of the
client-observed latency, with per-worker dispatch hops visible.
"""

import os
import time
import urllib.request

import numpy as np
import pytest

from repro.cluster.lifecycle import LocalCluster
from repro.core.pipeline import PlanRequest
from repro.obs import SpanRecorder, assemble_traces, read_spans, start_trace
from repro.platform.star import StarPlatform
from repro.service.client import ServiceClient

#: enough work per shard that dispatch + kernel time dominates the
#: constant per-hop overhead the spans can't see (connect, GIL handoff)
N_REQUESTS = 64
P = 256


@pytest.fixture(scope="module")
def batch_requests():
    rng = np.random.default_rng(2013)
    platform = StarPlatform.from_speeds(rng.uniform(1.0, 8.0, size=P))
    return [
        PlanRequest(platform=platform, N=40_000.0 + i, strategy="het")
        for i in range(N_REQUESTS)
    ]


@pytest.fixture(scope="module")
def traced_cluster_run(batch_requests, tmp_path_factory):
    """One traced /plan_batch through a live 2-worker cluster."""
    tmp = tmp_path_factory.mktemp("trace")
    trace_path = str(tmp / "spans.jsonl")
    client_rec = SpanRecorder(service="client")
    ctx = start_trace()
    with LocalCluster(
        n=2,
        cache=None,
        vectorize=False,  # scalar planning: shards cost real time
        heartbeat_interval=30.0,
        state_path=None,
        trace=trace_path,
    ) as cluster:
        client = ServiceClient(cluster.url, span_recorder=client_rec)
        results = client.plan_items(batch_requests, trace=ctx)
        time.sleep(0.5)  # let coordinator + worker root spans flush
        prom = urllib.request.urlopen(
            f"{cluster.url}/metrics?format=prometheus", timeout=10
        ).read().decode("utf-8")
    span_files = [trace_path] + [
        f"{trace_path}.w{i}" for i in range(2)
        if os.path.exists(f"{trace_path}.w{i}")
    ]
    spans = client_rec.drain() + read_spans(span_files)
    return {
        "ctx": ctx,
        "results": results,
        "spans": spans,
        "prometheus": prom,
        "files": span_files,
    }


class TestClusterTraceAcceptance:
    def test_batch_planned(self, traced_cluster_run, batch_requests):
        assert len(traced_cluster_run["results"]) == len(batch_requests)

    def test_one_complete_trace(self, traced_cluster_run):
        traces = assemble_traces(traced_cluster_run["spans"])
        assert len(traces) == 1
        trace = traces[0]
        assert trace.trace_id == traced_cluster_run["ctx"].trace_id
        assert trace.complete, (
            f"orphans: {[s.name for s in trace.orphans]}"
        )
        assert trace.root.name == "client /plan_batch"

    def test_trace_crosses_all_three_services(self, traced_cluster_run):
        services = {span.service for span in traced_cluster_run["spans"]}
        assert services == {"client", "coordinator", "server"}

    def test_sharded_dispatch_hops_recorded(self, traced_cluster_run):
        dispatches = [
            span
            for span in traced_cluster_run["spans"]
            if span.name == "dispatch"
        ]
        assert len(dispatches) == 2  # one hop per worker
        assert {d.meta["worker"] for d in dispatches} == {
            d.meta["worker"] for d in dispatches
        }
        assert all(d.meta["outcome"] == "ok" for d in dispatches)
        assert all(d.meta["round"] == 0 for d in dispatches)
        assert sum(d.meta["items"] for d in dispatches) == N_REQUESTS

    def test_accounts_for_ninety_percent_of_latency(
        self, traced_cluster_run
    ):
        (trace,) = assemble_traces(traced_cluster_run["spans"])
        fraction = trace.accounted_fraction()
        assert fraction >= 0.90, (
            f"trace explains only {fraction:.1%} of the client latency"
        )

    def test_critical_path_reaches_a_worker_kernel(self, traced_cluster_run):
        (trace,) = assemble_traces(traced_cluster_run["spans"])
        path = [span.name for span in trace.critical_path()]
        assert path[:3] == [
            "client /plan_batch",
            "coordinator /plan_batch",
            "dispatch",
        ]
        assert "plan_kernel" in path

    def test_coordinator_serves_prometheus(self, traced_cluster_run):
        body = traced_cluster_run["prometheus"]
        assert "# TYPE repro_request_duration_seconds histogram" in body
        assert 'le="+Inf"' in body
        # the cluster-wide aggregate carries the workers' /plan_batch hits
        assert 'repro_requests_total{endpoint="/plan_batch"}' in body

    def test_repro_trace_cli_renders_the_run(
        self, traced_cluster_run, capsys
    ):
        from repro.cli import main

        # client spans live in memory; give the CLI only the files plus
        # a temp file holding the client root
        import tempfile

        with tempfile.NamedTemporaryFile(
            "w", suffix=".jsonl", delete=False
        ) as handle:
            for span in traced_cluster_run["spans"]:
                if span.service == "client":
                    handle.write(span.to_json_line() + "\n")
        code = main(
            ["trace", handle.name, *traced_cluster_run["files"], "--slow", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "per-stage latency" in out
        assert "critical path: client /plan_batch > coordinator /plan_batch" in out
        assert "(0 incomplete)" in out
