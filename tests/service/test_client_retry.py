"""ServiceClient retry semantics against a scripted stub server.

Two retry families exist and must not blur together:

* transport errors (refused/reset/timeout) — linear backoff, exhausting
  the budget raises :class:`PlanServiceUnavailable`;
* ``429`` admission refusals — the server's ``Retry-After`` hint is
  honoured (clamped by ``retry_after_cap``) within the same bounded
  attempt budget, exhausting raises :class:`PlanServiceError` with
  ``code == 429``.

Everything else (400, 500, ...) surfaces immediately, no retry.
"""

import email.utils
import json
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import wire
from repro.service.client import (
    PlanServiceError,
    PlanServiceUnavailable,
    ServiceClient,
)


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Answers POSTs from a canned script; GET /healthz is always real."""

    protocol_version = "HTTP/1.0"  # one connection per request: a
    # dropped connection only loses the attempt it was scripted to lose

    def log_message(self, *args):  # noqa: D102 - silence test output
        pass

    def do_GET(self):
        if self.path != "/healthz":
            self.send_error(404)
            return
        body = json.dumps(
            {"status": "ok", "wire_profiles": list(wire.PROFILES)}
        ).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        self.server.attempts.append(time.monotonic())
        step = self.server.script.pop(0) if self.server.script else {"status": 200}
        if step.get("hang_up"):
            # slam the connection: the client sees a transport error
            self.connection.close()
            return
        status = step["status"]
        if status == 200:
            body = wire.pack_as(step.get("payload", "pong"), wire.PROFILE_BINARY)
            content_type = wire.CONTENT_TYPE
        else:
            body = json.dumps(
                {"error": step.get("error", "scripted failure")}
            ).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in step.get("headers", {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


@pytest.fixture()
def stub():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = []
    server.attempts = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _client(stub, **kwargs):
    host, port = stub.server_address
    kwargs.setdefault("wire_profile", wire.PROFILE_BINARY)
    kwargs.setdefault("timeout", 5.0)
    return ServiceClient(f"{host}:{port}", **kwargs)


class Test429Path:
    def test_retry_after_hint_then_success(self, stub):
        stub.script = [
            {"status": 429, "error": "over capacity", "headers": {"Retry-After": "0.15"}},
            {"status": 200, "payload": "recovered"},
        ]
        client = _client(stub, retries=2, retry_wait=10.0)  # hint, not retry_wait
        started = time.monotonic()
        assert client.post("/plan", "req") == "recovered"
        elapsed = time.monotonic() - started
        assert len(stub.attempts) == 2
        assert elapsed >= 0.15
        assert elapsed < 5.0  # retry_wait=10 would have blown this

    def test_exhausted_budget_raises_with_code(self, stub):
        stub.script = [
            {"status": 429, "error": "over capacity", "headers": {"Retry-After": "0.02"}}
        ] * 10
        client = _client(stub, retries=2)
        with pytest.raises(PlanServiceError) as err:
            client.post("/plan", "req")
        assert err.value.code == 429
        assert "over capacity" in str(err.value)
        assert not isinstance(err.value, PlanServiceUnavailable)
        assert len(stub.attempts) == 3  # bounded: retries + 1, no more

    def test_retries_zero_fails_immediately(self, stub):
        stub.script = [
            {"status": 429, "headers": {"Retry-After": "30"}},
            {"status": 200},
        ]
        client = _client(stub, retries=0)
        started = time.monotonic()
        with pytest.raises(PlanServiceError) as err:
            client.post("/plan", "req")
        assert err.value.code == 429
        assert time.monotonic() - started < 1.0  # never slept the hint
        assert len(stub.attempts) == 1

    def test_retry_after_capped(self, stub):
        stub.script = [
            {"status": 429, "headers": {"Retry-After": "3600"}},
            {"status": 200, "payload": "ok"},
        ]
        client = _client(stub, retries=1, retry_after_cap=0.1)
        started = time.monotonic()
        assert client.post("/plan", "req") == "ok"
        assert time.monotonic() - started < 2.0  # hour-long hint clamped

    def test_garbage_retry_after_falls_back_to_retry_wait(self, stub):
        stub.script = [
            {"status": 429, "headers": {"Retry-After": "soon-ish"}},
            {"status": 200, "payload": "ok"},
        ]
        client = _client(stub, retries=1, retry_wait=0.05)
        assert client.post("/plan", "req") == "ok"
        assert len(stub.attempts) == 2

    def test_http_date_retry_after_is_honoured(self, stub):
        """Regression: only the numeric Retry-After form was parsed;
        the RFC 7231 HTTP-date form silently fell back to retry_wait,
        defeating the server's hint under sustained 429s."""
        when = email.utils.formatdate(time.time() + 0.9, usegmt=True)
        stub.script = [
            {"status": 429, "headers": {"Retry-After": when}},
            {"status": 200, "payload": "recovered"},
        ]
        # retry_wait tiny: pre-fix, the fallback retries almost
        # immediately and the elapsed floor below fails
        client = _client(stub, retries=1, retry_wait=0.001)
        started = time.monotonic()
        assert client.post("/plan", "req") == "recovered"
        elapsed = time.monotonic() - started
        # formatdate has whole-second resolution, so the 0.9s hint may
        # round down as far as ~0s from the second boundary; anything
        # clearly above the 0.001s fallback proves the date was parsed
        assert elapsed >= 0.2
        assert len(stub.attempts) == 2

    def test_http_date_retry_after_capped(self, stub):
        when = email.utils.formatdate(time.time() + 3600, usegmt=True)
        stub.script = [
            {"status": 429, "headers": {"Retry-After": when}},
            {"status": 200, "payload": "ok"},
        ]
        client = _client(stub, retries=1, retry_after_cap=0.1)
        started = time.monotonic()
        assert client.post("/plan", "req") == "ok"
        assert time.monotonic() - started < 2.0  # hour-away date clamped

    def test_http_date_in_the_past_retries_immediately(self, stub):
        when = email.utils.formatdate(time.time() - 300, usegmt=True)
        stub.script = [
            {"status": 429, "headers": {"Retry-After": when}},
            {"status": 200, "payload": "ok"},
        ]
        client = _client(stub, retries=1, retry_wait=30.0)
        started = time.monotonic()
        assert client.post("/plan", "req") == "ok"
        # "retry at a past instant" means now — not the 30s fallback
        assert time.monotonic() - started < 2.0


class TestNoRetryStatuses:
    @pytest.mark.parametrize("status", [400, 500, 503])
    def test_answered_errors_surface_immediately(self, stub, status):
        stub.script = [{"status": status, "error": "nope"}, {"status": 200}]
        client = _client(stub, retries=3)
        with pytest.raises(PlanServiceError) as err:
            client.post("/plan", "req")
        assert err.value.code == status
        assert "nope" in str(err.value)
        assert not isinstance(err.value, PlanServiceUnavailable)
        assert len(stub.attempts) == 1  # the 200 was never consumed


class TestTransportPath:
    def test_dropped_connection_retries_then_succeeds(self, stub):
        stub.script = [{"hang_up": True}, {"status": 200, "payload": "back"}]
        client = _client(stub, retries=2, retry_wait=0.02)
        assert client.post("/plan", "req") == "back"
        assert len(stub.attempts) == 2

    def test_exhausted_transport_raises_unavailable(self, stub):
        stub.script = [{"hang_up": True}] * 10
        client = _client(stub, retries=2, retry_wait=0.02)
        with pytest.raises(PlanServiceUnavailable):
            client.post("/plan", "req")
        assert len(stub.attempts) == 3

    def test_unreachable_port_raises_unavailable(self):
        # grab a port and close it so nothing listens there
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            f"127.0.0.1:{port}",
            retries=1,
            retry_wait=0.02,
            wire_profile=wire.PROFILE_BINARY,
        )
        with pytest.raises(PlanServiceUnavailable) as err:
            client.post("/plan", "req")
        assert err.value.code is None

    def test_linear_backoff_between_transport_attempts(self, stub):
        stub.script = [{"hang_up": True}, {"hang_up": True}, {"status": 200}]
        client = _client(stub, retries=2, retry_wait=0.1)
        started = time.monotonic()
        client.post("/plan", "req")
        # sleeps: 0.1 * 1 + 0.1 * 2
        assert time.monotonic() - started >= 0.3


class TestValidation:
    def test_retry_after_cap_must_be_positive(self, stub):
        with pytest.raises(ValueError):
            _client(stub, retry_after_cap=0)

    def test_negative_retries_rejected(self, stub):
        with pytest.raises(ValueError):
            _client(stub, retries=-1)
