"""repro.service — the planning service layer (client/server, stdlib-only).

Turns the planner into a network service on top of the PR-2 session
seam and the PR-4 plan-store protocol:

* :mod:`repro.service.wire` — the versioned envelope every binary
  payload travels in (magic header before any unpickling).
* :mod:`repro.service.server` — :class:`PlanServer` / ``repro serve``:
  a :class:`~repro.core.session.PlannerSession` behind a stdlib
  threading HTTP server (``/plan``, ``/plan_batch``, ``/cache/*``,
  ``/healthz``).
* :mod:`repro.service.client` — :class:`RemoteBackend` (``backend``
  kind, spec ``remote:HOST:PORT``) ships planning items to a server;
  :class:`HTTPPlanCache` (``cache`` kind, spec ``http://HOST:PORT``)
  makes the server's store a shared cache tier for many client
  processes.
* :mod:`repro.service.asyncio_backend` — :class:`AsyncioBackend`
  (``backend`` kind, name ``asyncio``): bounded event-loop fan-out,
  awaitable inside servers.

The remote components register under the ordinary ``backend`` /
``cache`` kinds, so every existing planning path — sessions, the
Figure-4 / ρ experiments, the CLI — offloads by switching a spec
string, and the service contract is the session contract: results are
bit-identical to local planning (the vectorise suite's ``rtol=1e-12``
envelope), cache entries are interchangeable with every other store.
"""

from repro.service.asyncio_backend import AsyncioBackend
from repro.service.client import (
    HTTPPlanCache,
    PlanServiceError,
    RemoteBackend,
    ServiceClient,
)
from repro.service.server import PlanServer
from repro.service.wire import WIRE_FORMAT, WIRE_VERSION, WireError

__all__ = [
    "AsyncioBackend",
    "HTTPPlanCache",
    "PlanServer",
    "PlanServiceError",
    "RemoteBackend",
    "ServiceClient",
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "WireError",
]
