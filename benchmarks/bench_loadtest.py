"""Benchmark for the load-test driver: sustained RPS against one server.

The operability tentpole's number: how much open-loop traffic the
stack (driver + wire + server + session) sustains on this host with a
clean verdict.  The target rate is set well above what one container
CPU serves comfortably, so ``achieved_rps`` measures the pipeline, not
the scheduler's politeness — if planning, the wire, or the driver
regress, fewer requests complete per wall-clock second and the metric
drops.

The run must also be *clean*: zero answered errors, zero transport
failures, and the client/server request-count cross-check matching
exactly — a loadtest that miscounts its own traffic measures nothing.

Emits a ``BENCH {...}`` line; ``scripts/check_bench.py`` diffs it
against ``BENCH_loadtest.json``.
"""

import json
import os

from repro.loadtest import run_loadtest
from repro.service.server import PlanServer

TARGET_RPS = 240.0
DURATION_S = 2.0
THREADS = 8
SEED = 20130521


def test_loadtest_sustained_throughput():
    with PlanServer(backend="threaded", jobs=2) as server:
        report = run_loadtest(
            server.url,
            rps=TARGET_RPS,
            duration=DURATION_S,
            threads=THREADS,
            seed=SEED,
        )

    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "loadtest_throughput",
                "cpu_count": os.cpu_count() or 1,
                "target_rps": TARGET_RPS,
                "sent": report.sent,
                "achieved_rps": round(report.achieved_rps, 1),
                "p50_ms": report.p50_ms,
                "p99_ms": report.p99_ms,
                "schedule_lag_p99_ms": round(report.schedule_lag_p99_ms, 1),
                "wire": report.wire_profile,
            }
        )
    )

    # a dirty run measures nothing: the throughput number only counts
    # when every request succeeded and the books balance
    assert report.errors == 0, report.render()
    assert report.unavailable == 0, report.render()
    assert report.refused_429 == 0, report.render()
    assert report.server_check_ok, report.render()
    assert report.achieved_rps > 0
