"""Tests for repro.blocks.refined — the Comm_hom/k loop."""

import pytest

from repro.blocks.refined import RefinedHomogeneousStrategy
from repro.blocks.homogeneous import HomogeneousBlocksStrategy
from repro.platform.star import StarPlatform


class TestRefinement:
    def test_homogeneous_stops_at_k1(self):
        """Figure 4a text: hom/k does not increase the chunk count."""
        plat = StarPlatform.homogeneous(16)
        plan = RefinedHomogeneousStrategy().plan(plat, 1600.0)
        assert plan.detail["subdivision"] == 1
        assert plan.detail["converged"]
        assert plan.ratio_to_lower_bound == pytest.approx(1.0)

    def test_meets_imbalance_target(self):
        plat = StarPlatform.from_speeds([1.0, 1.7, 3.3, 9.1])
        plan = RefinedHomogeneousStrategy(imbalance_target=0.01).plan(plat, 5000.0)
        assert plan.detail["converged"]
        assert plan.imbalance <= 0.01

    def test_costs_more_than_plain_hom(self):
        plat = StarPlatform.from_speeds([1.0, 1.7, 3.3, 9.1])
        hom = HomogeneousBlocksStrategy().plan(plat, 5000.0)
        homk = RefinedHomogeneousStrategy().plan(plat, 5000.0)
        if homk.detail["subdivision"] > 1:
            assert homk.comm_volume > hom.comm_volume

    def test_looser_target_needs_smaller_k(self):
        plat = StarPlatform.from_speeds([1.0, 2.3, 4.9, 11.0])
        tight = RefinedHomogeneousStrategy(imbalance_target=0.005).plan(plat, 4000.0)
        loose = RefinedHomogeneousStrategy(imbalance_target=0.2).plan(plat, 4000.0)
        assert loose.detail["subdivision"] <= tight.detail["subdivision"]

    def test_unconvergeable_returns_best_seen(self):
        # speed ratio 2.7: no k in 1..3 gives an exactly balanced split
        plat = StarPlatform.from_speeds([1.0, 2.7])
        plan = RefinedHomogeneousStrategy(
            imbalance_target=1e-12, max_subdivision=3
        ).plan(plat, 1000.0)
        assert not plan.detail["converged"]
        assert plan.comm_volume > 0

    def test_strategy_label(self):
        plat = StarPlatform.homogeneous(4)
        assert RefinedHomogeneousStrategy().plan(plat, 100.0).strategy == "hom/k"

    def test_validation(self):
        with pytest.raises(ValueError):
            RefinedHomogeneousStrategy(imbalance_target=0.0)
        with pytest.raises(ValueError):
            RefinedHomogeneousStrategy(max_subdivision=0)
