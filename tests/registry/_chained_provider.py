"""A provider declared by another provider while the kind is loading."""

from tests.registry import _hooks

_hooks.TARGET.add("strategy", "chained-strategy", lambda: "chained")
