"""Column-based PERI-MAX partitioning (the other 2002 objective).

PERI-MAX minimises the *largest* half-perimeter — the communication
volume of the most-loaded link rather than the total.  The paper's
strategy uses PERI-SUM (total volume); PERI-MAX ships as an extension
so the two objectives can be compared on the same platforms.

Within a column of width :math:`w` holding areas
:math:`a_{i_1} \\dots a_{i_k}`, the largest half-perimeter is
:math:`w + \\max_r a_{i_r}/w`.  We run the analogous :math:`O(p^2)` DP
over contiguous groups of the sorted areas, minimising the max over
columns.  (Sorted-contiguous grouping is a standard heuristic here; for
PERI-MAX it is not provably optimal among all column-based layouts, so
this is labelled a heuristic and tests only check feasibility and
domination over the trivial strip layout.)

Ties between transition costs are broken by the first index attaining
the minimum — the same ``argmin`` convention as the PERI-SUM DP — which
lets the scalar and batch paths share one stacked NumPy kernel.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.partition.column_based import (
    assemble_columns,
    batch_partitions,
    _backtrack_groups,
)
from repro.partition.rectangle import Partition
from repro.registry import register
from repro.util.validation import check_probability_vector


def _perimax_groups_stacked(A: np.ndarray) -> List[List[List[int]]]:
    """The PERI-MAX DP over every row of ``A`` in one stacked pass.

    ``A`` is a ``(B, p)`` matrix of area vectors.  State
    ``f(k) = min over groupings of the max column cost`` with transition
    ``f(k) = min_j max(f(j), w_jk + a_max/w_jk)`` where
    ``w_jk = S_k - S_j`` and ``a_max`` is the largest area of the sorted
    group ``j..k-1`` (i.e. ``sorted_a[k-1]``).  Zero-width transitions
    (possible when the smallest areas are exactly 0) are masked to
    +inf, matching the scalar skip.  Every transition is one elementwise
    expression over all rows, so row ``b`` is bit-identical to running
    the DP on ``A[b]`` alone.
    """
    B, p = A.shape
    order = np.argsort(A, axis=1, kind="stable")
    sorted_A = np.take_along_axis(A, order, axis=1)
    prefix = np.concatenate(
        [np.zeros((B, 1)), np.cumsum(sorted_A, axis=1)], axis=1
    )
    INF = float("inf")
    f = np.full((B, p + 1), INF)
    f[:, 0] = 0.0
    choice = np.zeros((B, p + 1), dtype=int)
    rows = np.arange(B)
    for k in range(1, p + 1):
        width = prefix[:, k : k + 1] - prefix[:, :k]  # (B, k)
        ok = width > 0
        safe = np.where(ok, width, 1.0)
        # Largest area in the (sorted) group j..k-1 is sorted_a[k-1].
        col_cost = width + sorted_A[:, k - 1 : k] / safe
        cand = np.maximum(f[:, :k], np.where(ok, col_cost, INF))
        best = np.argmin(cand, axis=1)
        f[:, k] = cand[rows, best]
        choice[:, k] = best
    return [_backtrack_groups(order[b], choice[b], p) for b in range(B)]


@register(
    "partitioner",
    "peri-max",
    summary="Column-based heuristic minimising the max half-perimeter",
)
def peri_max_partition(areas: Sequence[float]) -> Partition:
    """Column-based partition minimising the max half-perimeter (heuristic)."""
    a = check_probability_vector(areas, "areas")
    return assemble_columns(a, _perimax_groups_stacked(a[None, :])[0])


def peri_max_partition_batch(
    areas_batch: Sequence[Sequence[float]],
) -> List[Partition]:
    """Batch kernel: PERI-MAX partitions for many area vectors at once.

    Vectorised objective: amortise the :math:`O(p^2)` max-cost column DP
    across the batch — each transition evaluates for all distinct
    same-length vectors in one stacked NumPy expression rather than a
    Python double loop per request.  Output ``i`` is bit-identical to
    ``peri_max_partition(areas_batch[i])`` (shared DP core, shared
    geometry assembly), so cache entries from either path are
    interchangeable.
    """
    return batch_partitions(areas_batch, _perimax_groups_stacked)


# Batch-kernel seam, mirroring peri_sum_partition.partition_batch.
peri_max_partition.partition_batch = peri_max_partition_batch
