"""Ablation: the oversampling ratio ``s`` in sample sort (§3.1).

The paper picks ``s = log²N`` so that Step 1 (`sp log sp`) stays cheap
while Theorem B.4 keeps the largest bucket near ``N/p``.  This bench
sweeps ``s`` across the trade-off: tiny ``s`` → bad balance; huge ``s``
→ Step-1 cost erodes the speedup.
"""

import numpy as np
import pytest

from repro.core.almost_linear import recommended_oversampling
from repro.platform.star import StarPlatform
from repro.sorting.sample_sort import sample_sort
from repro.util.tables import format_table


def test_oversampling_tradeoff(benchmark):
    N, p = 200_000, 16
    keys = np.random.default_rng(0).random(N)
    plat = StarPlatform.homogeneous(p)
    s_paper = recommended_oversampling(N)

    def run():
        rows = []
        for s in (1, 4, 16, s_paper, 16 * s_paper):
            res = sample_sort(keys, plat, s=s, rng=1)
            rows.append(
                [
                    s,
                    res.max_bucket / (N / p),
                    res.step1_time,
                    res.makespan,
                    res.speedup(),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["s", "MaxSize/(N/p)", "step1 cost", "makespan", "speedup"],
            rows,
            title=(
                f"Ablation: oversampling ratio (N={N}, p={p}; "
                f"paper's s = log^2 N = {s_paper}):"
            ),
        )
    )
    by_s = {r[0]: r for r in rows}
    # tiny s: noticeably imbalanced buckets
    assert by_s[1][1] > by_s[s_paper][1]
    # the paper's s keeps the max bucket within ~20% of N/p here
    assert by_s[s_paper][1] < 1.20
    # over-oversampling inflates step-1 cost
    assert by_s[16 * s_paper][2] > by_s[s_paper][2]
    # and the paper's choice is at least as fast end-to-end as 16x more
    assert by_s[s_paper][3] <= by_s[16 * s_paper][3] * 1.05


def test_heterogeneous_splitters_ablation(benchmark):
    """§3.2 splitters on vs off, same platform: the speed-aware variant
    wins on makespan."""
    keys = np.random.default_rng(2).random(300_000)
    plat = StarPlatform.from_speeds([1.0, 1.0, 4.0, 10.0])

    def run():
        aware = sample_sort(keys, plat, rng=3, heterogeneous=True)
        naive = sample_sort(keys, plat, rng=3, heterogeneous=False)
        return aware, naive

    aware, naive = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\nspeed-aware makespan={aware.makespan:,.0f} vs "
        f"equal-buckets makespan={naive.makespan:,.0f} "
        f"({naive.makespan / aware.makespan:.2f}x slower)"
    )
    assert aware.makespan < naive.makespan
    assert np.array_equal(aware.sorted_keys, naive.sorted_keys)
