"""Benchmarks for the planning service layer (server + remote clients).

Two questions the service tentpole must answer with numbers:

* **remote batch throughput** — how many requests/second does a remote
  session push through a plan server, against the in-process serial
  baseline?  (The wire adds latency; the server's backend and store
  amortise it — the point is that the overhead is bounded and the
  results identical.)
* **warm shared-cache speedup** — two *separate client processes*
  planning the same batch against one server: the first fills the
  shared store, the second must be served from it and finish faster
  having planned nothing.

A third question joined with the binary wire profile:

* **wire profile throughput** — the same batch shipped pickle-v1 vs
  binary-v2 against one server; the binary leg must beat the
  *committed* pickle-era baseline in ``BENCH_service.json`` by ≥5×
  (the acceptance bar for the zero-copy wire + batched kernels).

All emit ``BENCH {...}`` JSON lines for CI trend tracking, like the
batch-planning and plan-store benchmarks; ``scripts/check_bench.py``
diffs them against the committed ``BENCH_service.json`` trendline.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.platform.star import StarPlatform
from repro.service.server import PlanServer

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")
BENCH_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def _pickle_era_baseline() -> float:
    """The committed pickle-v1 remote throughput (req/s) this PR must beat."""
    trend = json.loads(BENCH_BASELINE.read_text())
    history = trend["benchmarks"]["service_remote_batch_throughput"]["history"]
    return float(history[0]["remote_req_per_s"])


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _requests(count=48, p=48, seed=11):
    """Distinct heterogeneous instances, heavy enough to time planning."""
    rng = np.random.default_rng(seed)
    return [
        PlanRequest(
            platform=StarPlatform.from_speeds(
                rng.uniform(1.0, 10.0, size=p).tolist()
            ),
            N=2000.0,
            strategy="het",
        )
        for _ in range(count)
    ]


def test_remote_batch_throughput():
    """Remote planning must return the serial baseline's plans exactly;
    report both paths' requests/second."""
    requests = _requests()

    with PlannerSession(cache=False) as local:
        baseline = local.plan_batch(requests)
        serial_s = min(
            _timed(lambda: local.plan_batch(requests)) for _ in range(3)
        )

    with PlanServer(port=0, backend="serial", cache=False) as server:
        with PlannerSession(
            backend=f"remote:{server.host}:{server.port}", cache=False
        ) as remote:
            shipped = remote.plan_batch(requests)
            remote_s = min(
                _timed(lambda: remote.plan_batch(requests)) for _ in range(3)
            )

    for a, b in zip(baseline, shipped):
        assert np.isclose(a.comm_volume, b.comm_volume, rtol=1e-12)

    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "service_remote_batch_throughput",
                "requests": len(requests),
                "serial_s": round(serial_s, 4),
                "remote_s": round(remote_s, 4),
                "serial_req_per_s": round(len(requests) / serial_s, 1),
                "remote_req_per_s": round(len(requests) / remote_s, 1),
                "overhead_x": round(remote_s / serial_s, 2),
            }
        )
    )
    # the wire may cost, but not catastrophically: same order of magnitude
    assert remote_s < serial_s * 10, (
        f"remote planning {remote_s / serial_s:.1f}x slower than serial"
    )


def test_wire_profile_throughput():
    """The raw-speed acceptance bar for the binary wire + batched kernels.

    Leg A ships individual scalar requests over the pickle profile (the
    shape of every pre-binary client); leg B ships one vector group
    over binary-v2.  Both must return identical plans, and leg B's
    throughput must clear 5x the pickle-v1-era remote throughput
    committed in ``BENCH_service.json`` — the 281 req/s the service
    managed before this pass (the gain compounds the zero-copy wire,
    the batched partition kernels, and lazy partitions, so a same-run
    A/B alone cannot reproduce the old code's cost).
    """
    from repro.core.pipeline import plan_request
    from repro.core.vectorize import VectorGroup, plan_work_item
    from repro.service import wire
    from repro.service.client import RemoteBackend

    requests = _requests()
    group = VectorGroup(strategy="het", requests=tuple(requests))
    with PlanServer(port=0, backend="serial", cache=False) as server:
        pickled = RemoteBackend(server.url, wire_profile=wire.PROFILE_PICKLE)
        v1_results = pickled.map(plan_request, requests)
        v1_s = min(
            _timed(lambda: pickled.map(plan_request, requests))
            for _ in range(3)
        )
        binary = RemoteBackend(server.url, wire_profile=wire.PROFILE_BINARY)
        (v2_results,) = binary.map(plan_work_item, [group])
        v2_s = min(
            _timed(lambda: binary.map(plan_work_item, [group]))
            for _ in range(3)
        )

    for a, b in zip(v1_results, v2_results):
        assert a.request == b.request
        assert np.isclose(a.comm_volume, b.comm_volume, rtol=1e-12)
        np.testing.assert_array_equal(
            a.plan.finish_times, b.plan.finish_times
        )

    committed = _pickle_era_baseline()
    v2_req_per_s = len(requests) / v2_s
    gain = v2_req_per_s / committed
    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "service_wire_profile_throughput",
                "requests": len(requests),
                "pickle_scalar_s": round(v1_s, 4),
                "binary_batched_s": round(v2_s, 4),
                "pickle_scalar_req_per_s": round(len(requests) / v1_s, 1),
                "v2_req_per_s": round(v2_req_per_s, 1),
                "v2_vs_committed_pickle_x": round(gain, 2),
            }
        )
    )
    assert gain >= 5.0, (
        f"binary-v2 batched throughput {v2_req_per_s:.0f} req/s is only "
        f"{gain:.1f}x the committed pickle-v1 baseline ({committed:.0f} "
        "req/s); the raw-speed pass requires 5x"
    )


_CLIENT_SNIPPET = """\
import json, sys, time
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
import numpy as np
from repro.platform.star import StarPlatform

url = sys.argv[1]
rng = np.random.default_rng(11)
requests = [
    PlanRequest(
        platform=StarPlatform.from_speeds(rng.uniform(1.0, 10.0, size=48).tolist()),
        N=2000.0,
        strategy="het",
    )
    for _ in range(48)
]
session = PlannerSession(cache=url)
start = time.perf_counter()
results = session.plan_batch(requests)
elapsed = time.perf_counter() - start
cached = sum(1 for r in results if r.cached)
session.close()
print(json.dumps({"elapsed_s": elapsed, "cached": cached, "n": len(results)}))
"""


def _run_client(url: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CLIENT_SNIPPET, url],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=300,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_warm_shared_cache_across_processes():
    """Client process 2 must be served from the store client process 1
    warmed — zero planning, faster wall-clock."""
    with PlanServer(port=0, cache="memory") as server:
        url = f"http://{server.host}:{server.port}"
        cold = _run_client(url)
        warm = _run_client(url)

    assert cold["cached"] == 0 and cold["n"] == 48
    assert warm["cached"] == 48, f"warm run replanned: {warm}"

    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "service_warm_shared_cache",
                "requests": cold["n"],
                "cold_s": round(cold["elapsed_s"], 4),
                "warm_s": round(warm["elapsed_s"], 4),
                "speedup": round(cold["elapsed_s"] / warm["elapsed_s"], 2),
            }
        )
    )
    assert warm["elapsed_s"] < cold["elapsed_s"], (
        "shared-store hits were slower than planning"
    )
