"""2.5D matrix-multiplication communication volumes (§4.2's exception).

§4.2 notes that all classical implementations are outer-product based
"at the notable exception of recently introduced 2.5D schemes [42]"
(Solomonik & Demmel, Euro-Par 2011).  For completeness the library
models the 2.5D volume so the comparison the paper gestures at can be
made concrete.

Setup: ``p`` homogeneous processors arranged as a
:math:`\\sqrt{p/c} \\times \\sqrt{p/c} \\times c` grid, keeping ``c``
replicated copies of the input.  Per-processor communication (words
moved) is :math:`O(N^2 / \\sqrt{c\\,p})`, a :math:`\\sqrt{c}` factor
below the 2D (outer-product) algorithm's :math:`O(N^2/\\sqrt{p})`, at
the price of :math:`c\\times` the memory.  We use the standard leading-
order constants (Solomonik–Demmel Table 1): 2D moves
:math:`2N^2/\\sqrt{p}` words per processor, 2.5D moves
:math:`2N^2/\\sqrt{c\\,p}`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_integer


def max_replication(p: int) -> int:
    """Largest meaningful replication factor, :math:`c \\le p^{1/3}`.

    Beyond :math:`c = p^{1/3}` the 2.5D algorithm degenerates to 3D and
    extra copies stop helping.
    """
    check_integer(p, "p", minimum=1)
    return max(1, int(np.floor(np.cbrt(p) + 1e-9)))


@dataclass(frozen=True)
class TwoFiveDVolume:
    """Communication account of one (p, c, N) configuration."""

    N: int
    p: int
    c: int
    #: total words moved across all processors
    total_volume: float
    #: per-processor words moved
    per_processor: float
    #: memory per processor, in matrix-element units (inputs only)
    memory_per_processor: float

    @property
    def speeddown_vs_2d(self) -> float:
        """Volume ratio vs the c=1 (pure 2D outer-product) run: 1/√c."""
        return 1.0 / np.sqrt(self.c)


def two_five_d_volume(N: int, p: int, c: int = 1) -> TwoFiveDVolume:
    """Leading-order 2.5D communication volume.

    ``c = 1`` reproduces the 2D/outer-product volume
    (:math:`2N^2\\sqrt{p}` total — the §4.3 lower bound for homogeneous
    platforms), letting tests tie the two models together.
    """
    check_integer(N, "N", minimum=1)
    check_integer(p, "p", minimum=1)
    check_integer(c, "c", minimum=1)
    if c > p:
        raise ValueError(f"replication c={c} cannot exceed p={p}")
    per_proc = 2.0 * N * N / np.sqrt(c * p)
    return TwoFiveDVolume(
        N=N,
        p=p,
        c=c,
        total_volume=float(per_proc * p),
        per_processor=float(per_proc),
        memory_per_processor=float(c * 2.0 * N * N / p),
    )


def volume_vs_replication(N: int, p: int) -> list[TwoFiveDVolume]:
    """Sweep c from 1 to :func:`max_replication` — the classic trade-off
    curve (volume falls as 1/√c, memory rises as c)."""
    return [two_five_d_volume(N, p, c) for c in range(1, max_replication(p) + 1)]


def crossover_with_heterogeneous_partitioning(
    N: int, speeds, c: int
) -> dict:
    """Compare homogeneous 2.5D against heterogeneous 2D partitioning.

    2.5D assumes homogeneous processors; on a heterogeneous platform it
    must either leave slow processors idle or run at the slowest's pace.
    We model the charitable variant — 2.5D over the ``p`` *equal-speed
    equivalent* processors (same aggregate speed) — and report both
    volumes so experiments can locate the ``c`` needed for 2.5D's
    replication to beat heterogeneity-aware 2D partitioning.
    """
    speeds = np.asarray(speeds, dtype=float)
    p = speeds.size
    from repro.matmul.mapreduce_layouts import partitioned_volume

    het_2d = partitioned_volume(N, speeds)
    hom_25d = two_five_d_volume(N, p, c).total_volume
    return {
        "het_2d_volume": het_2d,
        "hom_25d_volume": hom_25d,
        "ratio": het_2d / hom_25d,
        "replication": c,
    }
