"""Tests for repro.blocks.metrics."""

import numpy as np
import pytest

from repro.blocks.metrics import StrategyResult, load_imbalance


class TestLoadImbalance:
    def test_balanced(self):
        assert load_imbalance(np.array([2.0, 2.0, 2.0])) == 0.0

    def test_formula(self):
        assert load_imbalance(np.array([1.0, 3.0])) == pytest.approx(2.0)

    def test_starved_worker_inf(self):
        assert load_imbalance(np.array([0.0, 1.0])) == float("inf")

    def test_all_idle_zero(self):
        assert load_imbalance(np.array([0.0, 0.0])) == 0.0

    def test_single_worker_zero(self):
        assert load_imbalance(np.array([5.0])) == 0.0


class TestStrategyResult:
    def _result(self):
        return StrategyResult(
            strategy="test",
            N=100.0,
            speeds=np.array([1.0, 1.0, 1.0, 1.0]),
            comm_volume=500.0,
            finish_times=np.array([1.0, 1.0, 1.0, 1.1]),
            imbalance=0.1,
        )

    def test_lower_bound_and_ratio(self):
        res = self._result()
        # LB = 2*100*4*sqrt(1/4) = 400
        assert res.lower_bound == pytest.approx(400.0)
        assert res.ratio_to_lower_bound == pytest.approx(1.25)

    def test_makespan(self):
        assert self._result().makespan == pytest.approx(1.1)

    def test_summary_contains_key_numbers(self):
        text = self._result().summary()
        assert "test" in text and "1.25" in text
