"""Reproducible load testing for the planning service (``repro loadtest``).

The package splits along the natural seams:

* :mod:`repro.loadtest.stream` — deterministic seeded request streams
  (the *what*): same seed, same operations, whatever machine replays
  them.
* :mod:`repro.loadtest.driver` — the open-loop multi-threaded replay
  engine (the *how fast*), one HTTP request per operation so counts
  reconcile exactly.
* :mod:`repro.loadtest.report` — client-side stats, the server
  ``/metrics`` cross-check, and the pass/fail verdict (the *so what*).
* :mod:`repro.loadtest.slo` — the latency-under-SLO capacity search
  (``--slo-p99-ms`` / ``--find-max-rps``): ramp-and-bisect to the
  highest rate whose p99 stays under the SLO (the *how much*).
"""

from repro.loadtest.driver import STATUS_UNREACHABLE, run_loadtest
from repro.loadtest.report import (
    CHECKED_ENDPOINTS,
    EndpointCheck,
    LoadtestReport,
    cross_check,
    frontdoor_metrics,
)
from repro.loadtest.slo import SloProbe, SloSearchResult, find_max_rps
from repro.loadtest.stream import (
    DEFAULT_MIX,
    ENDPOINT_BY_KIND,
    OP_KINDS,
    Op,
    parse_mix,
    request_stream,
    stream_fingerprint,
)

__all__ = [
    "CHECKED_ENDPOINTS",
    "DEFAULT_MIX",
    "ENDPOINT_BY_KIND",
    "EndpointCheck",
    "LoadtestReport",
    "OP_KINDS",
    "Op",
    "STATUS_UNREACHABLE",
    "SloProbe",
    "SloSearchResult",
    "cross_check",
    "find_max_rps",
    "frontdoor_metrics",
    "parse_mix",
    "request_stream",
    "run_loadtest",
    "stream_fingerprint",
]
