"""An event-loop execution backend for services (registry name ``asyncio``).

The ``serial`` / ``threaded`` / ``process`` backends all assume they own
the calling thread.  A *service* does not: an asyncio server wants to
await planning work from inside its event loop without blocking it, and
it wants a hard bound on how many planning calls run at once so one fat
``/plan_batch`` cannot starve every other connection.

:class:`AsyncioBackend` provides both faces of that coin:

* :meth:`AsyncioBackend.amap` — the native coroutine: awaitable from a
  running event loop, fanning items out to a private thread pool under
  an ``asyncio.Semaphore`` (``jobs`` permits, so concurrency is bounded
  even when the item list is huge).  NumPy releases the GIL inside its
  kernels, so planning really overlaps.
* :meth:`AsyncioBackend.map` — the ordinary synchronous
  :class:`~repro.core.backends.Backend` contract, implemented as
  ``asyncio.run(self.amap(...))``.  This is what makes
  ``PlannerSession(backend="asyncio")`` a drop-in: sweeps and batches
  behave exactly like every other backend (order-preserving, identical
  results), they just fan out through an event loop.

Like the pooled backends, the worker pool persists across calls and is
released by ``shutdown()`` / ``session.close()``.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, TypeVar

from repro.core.backends import Backend
from repro.registry import register

T = TypeVar("T")
R = TypeVar("R")


@register(
    "backend",
    "asyncio",
    summary="Event-loop fan-out with bounded concurrency (for services)",
)
class AsyncioBackend(Backend):
    """Bounded event-loop ``map``: awaitable inside servers, sync outside.

    ``jobs`` caps both the thread pool and the semaphore, so at most
    ``jobs`` planning calls are in flight however many items a batch
    carries (default: the ``threaded`` backend's ``min(32, cpus + 4)``).
    """

    name = "asyncio"

    def __init__(self, jobs: int | None = None) -> None:
        super().__init__(jobs)
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    @property
    def limit(self) -> int:
        """The concurrency bound ``amap`` enforces."""
        return self.jobs or min(32, (os.cpu_count() or 1) + 4)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.limit,
                    thread_name_prefix="repro-aplan",
                )
            return self._executor

    async def amap(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> List[R]:
        """Await ``fn`` over ``items`` with at most ``limit`` in flight.

        Order-preserving like every backend ``map``; usable directly
        from server coroutines (``await backend.amap(plan_request,
        requests)``) while other connections keep being served.
        """
        loop = asyncio.get_running_loop()
        semaphore = asyncio.Semaphore(self.limit)
        executor = self._ensure_executor()

        async def run_one(item: T) -> R:
            async with semaphore:
                return await loop.run_in_executor(executor, fn, item)

        return list(await asyncio.gather(*(run_one(item) for item in items)))

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            # nothing to overlap; skip loop + pool spin-up
            return [fn(item) for item in items]
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(self.amap(fn, items))
        raise RuntimeError(
            "AsyncioBackend.map() called from a running event loop; "
            "await AsyncioBackend.amap(fn, items) instead"
        )

    def shutdown(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
