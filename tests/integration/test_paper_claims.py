"""Integration tests: each of the paper's four claims, end to end.

These tests cross module boundaries on purpose — they are the library's
statement that the reproduction actually reproduces.
"""

import numpy as np
import pytest

from repro.blocks.heterogeneous import HeterogeneousBlocksStrategy
from repro.blocks.refined import RefinedHomogeneousStrategy
from repro.core.almost_linear import sorting_residual_fraction
from repro.core.bounds import lower_bound_comm
from repro.core.nonlinear import residual_fraction
from repro.dlt.nonlinear_solver import solve_nonlinear_parallel
from repro.platform.generators import make_speeds, uniform_speeds
from repro.platform.star import StarPlatform
from repro.sorting.sample_sort import sample_sort


class TestClaim1NoFreeLunch:
    """§2: DLT cannot be applied to N^alpha, alpha > 1 workloads."""

    def test_optimal_round_covers_vanishing_fraction(self):
        """Even the *exactly optimal* single-round allocation (the best
        that [31]-[35] could ever achieve) covers 1/P^(alpha-1)."""
        N = 10_000.0
        for P in (10, 100, 1000):
            plat = StarPlatform.homogeneous(P)
            alloc = solve_nonlinear_parallel(plat, N, alpha=2.0)
            assert alloc.covered_fraction == pytest.approx(1.0 / P, rel=1e-4)
            assert alloc.residual_fraction == pytest.approx(
                residual_fraction(P, 2.0), rel=1e-4
            )

    def test_heterogeneous_sophistication_does_not_help(self):
        """The difficult optimisation of [33]-[35] changes constants,
        never the exponent: coverage stays Θ(1/P)."""
        rng = np.random.default_rng(0)
        coverages = []
        for P in (20, 80, 320):
            plat = StarPlatform.from_speeds(rng.uniform(1, 100, P))
            alloc = solve_nonlinear_parallel(plat, 1000.0, alpha=2.0)
            coverages.append(alloc.covered_fraction * P)
        # P * coverage roughly constant across scales
        assert max(coverages) / min(coverages) < 5.0

    def test_linear_load_has_no_such_problem(self):
        from repro.dlt.single_round import solve_linear_parallel

        plat = StarPlatform.homogeneous(100)
        alloc = solve_linear_parallel(plat, 10_000.0)
        # the round processes everything, with perfect speedup on compute
        assert alloc.total == pytest.approx(10_000.0)


class TestClaim2SortingIsAlmostDivisible:
    """§3: sorting residue vanishes; sample sort is the fix-up."""

    def test_residue_contrast(self):
        """Same p: sorting residue → 0 in N; quadratic residue → 1 in P."""
        assert sorting_residual_fraction(2**26, 64) < 0.25
        assert residual_fraction(64, 2.0) > 0.98

    def test_sample_sort_end_to_end_heterogeneous(self):
        """§3.2's full pipeline: heterogeneous platform, real keys,
        speed-proportional buckets, correct output, balanced step 3."""
        rng = np.random.default_rng(1)
        speeds = np.array([1.0, 2.0, 4.0, 8.0])
        plat = StarPlatform.from_speeds(speeds)
        keys = rng.random(400_000)
        res = sample_sort(keys, plat, rng=rng)
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        # step-3 local sort times balanced across workers up to sampling
        # noise (the w.h.p. guarantee is asymptotic; 25% covers the
        # 2-sigma splitter noise at this N)
        t = res.local_sort_times
        assert (t.max() - t.min()) / t.max() < 0.25


class TestClaim3HeterogeneousPartitioning:
    """§4.1–4.2: PERI-SUM blocks ~ lower bound; hom blocks pay dearly."""

    def test_volume_sandwich_realistic_platform(self):
        rng = np.random.default_rng(2)
        speeds = uniform_speeds(64, rng=rng)
        plat = StarPlatform.from_speeds(speeds)
        N = 50_000.0
        het = HeterogeneousBlocksStrategy().plan(plat, N)
        lb = lower_bound_comm(N, speeds)
        assert lb <= het.comm_volume <= 1.03 * lb  # §4.3's "within 2%"

    def test_rho_lower_bound_holds_on_random_platforms(self):
        """Measured Comm_hom / Comm_het >= the 4/7 analytic bound."""
        from repro.blocks.homogeneous import HomogeneousBlocksStrategy
        from repro.core.bounds import rho_lower_bound

        rng = np.random.default_rng(3)
        for _ in range(5):
            speeds = uniform_speeds(24, rng=rng)
            plat = StarPlatform.from_speeds(speeds)
            hom = HomogeneousBlocksStrategy().plan(plat, 10_000.0)
            het = HeterogeneousBlocksStrategy().plan(plat, 10_000.0)
            measured = hom.comm_volume / het.comm_volume
            assert measured >= rho_lower_bound(speeds) - 1e-9


class TestClaim4Figure4:
    """§4.3: the evaluation's two headline numbers."""

    def test_hom_k_pays_an_order_of_magnitude(self):
        """15–30x at p=100 in the paper; we assert > 8x to be robust
        across seeds while still catching any regression to ~1x."""
        rng = np.random.default_rng(4)
        speeds = make_speeds("uniform", 100, rng)
        plat = StarPlatform.from_speeds(speeds)
        plan = RefinedHomogeneousStrategy().plan(plat, 10_000.0)
        assert plan.imbalance <= 0.01
        assert plan.ratio_to_lower_bound > 8.0

    def test_het_stays_within_two_percent(self):
        rng = np.random.default_rng(5)
        for model in ("uniform", "lognormal"):
            speeds = make_speeds(model, 100, rng)
            plat = StarPlatform.from_speeds(speeds)
            plan = HeterogeneousBlocksStrategy().plan(plat, 10_000.0)
            assert plan.ratio_to_lower_bound < 1.02, model
