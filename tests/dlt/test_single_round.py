"""Tests for repro.dlt.single_round — the classical closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlt.single_round import (
    equal_split,
    solve_linear_one_port,
    solve_linear_parallel,
)
from repro.platform.star import StarPlatform

platform_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=50.0),  # speed
        st.floats(min_value=0.1, max_value=50.0),  # bandwidth
    ),
    min_size=1,
    max_size=10,
).map(
    lambda rows: StarPlatform.from_speeds(
        [r[0] for r in rows], [r[1] for r in rows]
    )
)


class TestParallelLinks:
    def test_closed_form_makespan(self):
        plat = StarPlatform.from_speeds([1.0, 1.0], bandwidths=[1.0, 1.0])
        alloc = solve_linear_parallel(plat, 100.0)
        # c=w=1 ⇒ T = N / (p / 2) = 100
        assert alloc.makespan == pytest.approx(100.0)
        assert np.allclose(alloc.amounts, [50.0, 50.0])

    @given(platform=platform_strategy, N=st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_simultaneous_finish(self, platform, N):
        alloc = solve_linear_parallel(platform, N)
        assert alloc.total == pytest.approx(N, rel=1e-9)
        # optimality structure for linear loads: all finish together
        assert np.allclose(alloc.finish, alloc.makespan, rtol=1e-9)
        assert np.allclose(alloc.idle_times, 0.0, atol=1e-6 * alloc.makespan)

    def test_faster_worker_gets_more(self):
        plat = StarPlatform.from_speeds([1.0, 9.0])
        alloc = solve_linear_parallel(plat, 100.0)
        assert alloc.amounts[1] > alloc.amounts[0]

    def test_bad_N(self):
        with pytest.raises(ValueError):
            solve_linear_parallel(StarPlatform.homogeneous(2), 0.0)


class TestOnePort:
    def test_closed_form_two_workers(self):
        """Hand-checked instance: c=[1,1], w=[1,1], N=3.

        Recurrence: raw1 = 1/2, raw2 = raw1 * 1/2 = 1/4 → amounts (2, 1),
        T = 1*2 + 1*2 = 4? worker1: recv ends 2, compute ends 4;
        worker2: recv ends 3, compute ends 4. Makespan 4.
        """
        plat = StarPlatform.from_speeds([1.0, 1.0])
        alloc = solve_linear_one_port(plat, 3.0)
        assert np.allclose(alloc.amounts, [2.0, 1.0])
        assert alloc.makespan == pytest.approx(4.0)
        assert np.allclose(alloc.finish, 4.0)

    @given(platform=platform_strategy, N=st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, platform, N):
        alloc = solve_linear_one_port(platform, N)
        assert alloc.total == pytest.approx(N, rel=1e-9)
        assert np.allclose(alloc.finish, alloc.makespan, rtol=1e-9)
        # receive ends are non-decreasing along the service order
        order = list(alloc.order)
        recv = alloc.receive_end[order]
        assert np.all(np.diff(recv) >= -1e-12)

    def test_one_port_never_beats_parallel(self, heterogeneous_platform):
        """Serialised communications can only hurt."""
        N = 500.0
        par = solve_linear_parallel(heterogeneous_platform, N)
        onep = solve_linear_one_port(heterogeneous_platform, N)
        assert onep.makespan >= par.makespan - 1e-9

    def test_invalid_order_rejected(self):
        plat = StarPlatform.homogeneous(3)
        with pytest.raises(ValueError, match="permutation"):
            solve_linear_one_port(plat, 10.0, order=[0, 1, 1])


class TestEqualSplit:
    def test_optimal_on_homogeneous(self):
        plat = StarPlatform.homogeneous(4)
        eq = equal_split(plat, 100.0)
        opt = solve_linear_parallel(plat, 100.0)
        assert eq.makespan == pytest.approx(opt.makespan)

    def test_suboptimal_on_heterogeneous(self, heterogeneous_platform):
        eq = equal_split(heterogeneous_platform, 100.0)
        opt = solve_linear_parallel(heterogeneous_platform, 100.0)
        assert eq.makespan > opt.makespan

    def test_efficiency_metric(self):
        plat = StarPlatform.homogeneous(4, speed=1.0, bandwidth=1e9)
        alloc = solve_linear_parallel(plat, 100.0)
        # with negligible comm, efficiency vs sequential time (= N*w) ≈ 1
        assert alloc.efficiency(100.0) == pytest.approx(1.0, rel=1e-6)
