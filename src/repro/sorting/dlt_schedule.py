"""One-port bucket distribution for sample sort — §3's closing remark.

§3.1 ends: "in the case of sorting, optimizing the data distribution
phase to slave processors under more complicated communication models
than the one considered in this paper, is meaningful."  This module does
that optimisation for the one-port model: after Steps 1–2 the master
holds ``p`` buckets and must ship them *sequentially*; worker *i* then
sorts locally.  The makespan of the phase is

.. math:: T(\\sigma) = \\max_j \\Big( \\sum_{j' \\le j}
          c_{\\sigma(j')} n_{\\sigma(j')}
          + w_{\\sigma(j)}\\, n_{\\sigma(j)} \\log_2 n_{\\sigma(j)} \\Big).

This is 1 machine-scheduling with delivery times (1 | | Lmax in reverse):
serving buckets in **non-increasing local-sort time** is optimal — the
classical Largest-Delivery-Time rule, proved by the standard exchange
argument (swapping two adjacent buckets where the smaller-delivery one
goes first never increases the max).  Tests certify the rule against
brute force on random instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Sequence

import numpy as np

from repro.core.almost_linear import sorting_work
from repro.platform.star import StarPlatform


@dataclass(frozen=True)
class BucketSchedule:
    """A one-port bucket-shipping schedule and its timeline."""

    order: tuple[int, ...]
    send_start: np.ndarray
    send_end: np.ndarray
    finish: np.ndarray
    makespan: float


def evaluate_order(
    platform: StarPlatform, bucket_sizes: Sequence[int], order: Sequence[int]
) -> BucketSchedule:
    """Timeline of shipping buckets in ``order`` then sorting locally."""
    sizes = np.asarray(bucket_sizes, dtype=float)
    p = platform.size
    if sizes.shape != (p,):
        raise ValueError(f"need {p} bucket sizes, got {sizes.shape}")
    if np.any(sizes < 0):
        raise ValueError("bucket sizes must be non-negative")
    order = np.asarray(order, dtype=int)
    if sorted(order.tolist()) != list(range(p)):
        raise ValueError(f"order must be a permutation of 0..{p - 1}")
    c = platform.comm_times
    w = platform.cycle_times
    send_start = np.zeros(p)
    send_end = np.zeros(p)
    finish = np.zeros(p)
    t = 0.0
    for idx in order:
        send_start[idx] = t
        t += c[idx] * sizes[idx]
        send_end[idx] = t
        local = w[idx] * (sorting_work(sizes[idx]) if sizes[idx] > 1 else 0.0)
        finish[idx] = t + local
    return BucketSchedule(
        order=tuple(int(i) for i in order),
        send_start=send_start,
        send_end=send_end,
        finish=finish,
        makespan=float(finish.max()) if p else 0.0,
    )


def largest_delivery_first(
    platform: StarPlatform, bucket_sizes: Sequence[int]
) -> BucketSchedule:
    """Optimal one-port order: non-increasing local-sort ("delivery") time.

    Classical LDT rule for single-machine scheduling with delivery
    times; optimal here because send times are order-independent in
    their prefix sums and only the delivery tail differs.
    """
    sizes = np.asarray(bucket_sizes, dtype=float)
    w = platform.cycle_times
    delivery = np.array(
        [w[i] * (sorting_work(s) if s > 1 else 0.0) for i, s in enumerate(sizes)]
    )
    order = np.argsort(-delivery, kind="stable")
    return evaluate_order(platform, bucket_sizes, order)


def brute_force_best_order(
    platform: StarPlatform, bucket_sizes: Sequence[int]
) -> BucketSchedule:
    """Exhaustive optimum over all ``p!`` orders (tests only)."""
    p = platform.size
    if p > 8:
        raise ValueError("brute force limited to p <= 8")
    best: BucketSchedule | None = None
    for order in permutations(range(p)):
        sched = evaluate_order(platform, bucket_sizes, order)
        if best is None or sched.makespan < best.makespan - 1e-15:
            best = sched
    assert best is not None
    return best


def one_port_penalty(
    platform: StarPlatform, bucket_sizes: Sequence[int]
) -> float:
    """Relative makespan increase of one-port over parallel links.

    Parallel links: every bucket ships at time 0 → makespan
    ``max(c_i n_i + delivery_i)``.  Returns ``(T_1port − T_par) / T_par``
    with the optimal one-port order — quantifying how much the §1.2
    simplification hides for the sorting workload.
    """
    sizes = np.asarray(bucket_sizes, dtype=float)
    c = platform.comm_times
    w = platform.cycle_times
    delivery = np.array(
        [w[i] * (sorting_work(s) if s > 1 else 0.0) for i, s in enumerate(sizes)]
    )
    t_par = float(np.max(c * sizes + delivery))
    t_one = largest_delivery_first(platform, sizes).makespan
    if t_par == 0:
        return 0.0
    return (t_one - t_par) / t_par
