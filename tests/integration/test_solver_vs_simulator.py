"""Cross-validation: closed forms vs the discrete-event simulator.

The library's defence against "the formula is wrong" and "the simulator
is wrong" simultaneously: they are implemented independently and must
agree on every random instance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_models import NLogNCost, PowerLawCost
from repro.dlt.multi_round import solve_multi_round
from repro.dlt.nonlinear_solver import solve_nonlinear_parallel
from repro.dlt.single_round import solve_linear_one_port, solve_linear_parallel
from repro.platform.comm_models import OnePort
from repro.platform.star import StarPlatform
from repro.simulate.master_worker import simulate_allocation

platforms = st.lists(
    st.tuples(
        st.floats(min_value=0.2, max_value=20.0),
        st.floats(min_value=0.2, max_value=20.0),
    ),
    min_size=1,
    max_size=8,
).map(
    lambda rows: StarPlatform.from_speeds(
        [r[0] for r in rows], [r[1] for r in rows]
    )
)


class TestLinearAgreement:
    @given(platform=platforms, N=st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_parallel_links(self, platform, N):
        alloc = solve_linear_parallel(platform, N)
        _, _, makespan = simulate_allocation(platform, alloc.amounts)
        assert makespan == pytest.approx(alloc.makespan, rel=1e-9)

    @given(platform=platforms, N=st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_one_port(self, platform, N):
        platform = platform.with_comm_model(OnePort())
        alloc = solve_linear_one_port(platform, N)
        _, _, makespan = simulate_allocation(
            platform, alloc.amounts, order=alloc.order
        )
        assert makespan == pytest.approx(alloc.makespan, rel=1e-9)


class TestNonlinearAgreement:
    @given(
        platform=platforms,
        alpha=st.floats(min_value=1.2, max_value=3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_nonlinear(self, platform, alpha):
        alloc = solve_nonlinear_parallel(platform, 100.0, alpha=alpha)
        _, _, makespan = simulate_allocation(
            platform, alloc.amounts, cost_model=PowerLawCost(alpha=alpha)
        )
        assert makespan == pytest.approx(alloc.makespan, rel=1e-6)


class TestMultiRoundAgreement:
    def test_round_totals_match_single_round_slices(self):
        plat = StarPlatform.from_speeds([1.0, 2.0, 3.0])
        sched = solve_multi_round(plat, 300.0, rounds=3)
        single = solve_linear_parallel(plat, 100.0)
        for r in range(3):
            assert np.allclose(sched.amounts[:, r], single.amounts)

    def test_sorting_cost_model_through_simulator(self):
        """NLogN compute times flow through the replay correctly."""
        plat = StarPlatform.homogeneous(2)
        amounts = [8.0, 8.0]
        timelines, _, makespan = simulate_allocation(
            plat, amounts, cost_model=NLogNCost()
        )
        # recv 8 units at c=1 → t=8; compute 8*log2(8)=24 at w=1 → t=32
        assert makespan == pytest.approx(32.0)
