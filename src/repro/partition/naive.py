"""Baseline partitioners: strips and square-ish grids.

These are the layouts the column-based algorithm must beat:

* :func:`strip_partition` — one column, ``p`` full-width strips; cost
  :math:`p \\cdot 1 + 1 = p + 1` regardless of areas (the worst
  reasonable layout, and the proof that any partitioner claiming
  quality must do better than trivial);
* :func:`grid_partition` — an :math:`r \\times c` grid of equal cells
  for homogeneous platforms (the natural optimum when all areas are
  equal and :math:`p` is a perfect square).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.partition.rectangle import Partition, Rectangle, stack_column
from repro.registry import register
from repro.util.validation import check_integer, check_probability_vector


@register(
    "partitioner",
    "strip",
    summary="Trivial full-width strips (cost p + 1 baseline)",
)
def strip_partition(areas: Sequence[float]) -> Partition:
    """Full-width horizontal strips, heights = areas.

    Sum of half-perimeters is exactly :math:`p + 1` on the unit square
    (each strip has width 1; heights sum to 1).
    """
    a = check_probability_vector(areas, "areas")
    rects = stack_column(0.0, 1.0, list(a), list(range(a.size)))
    part = Partition(tuple(rects), side=1.0)
    part.validate(expected_areas=a)
    return part


@register(
    "partitioner",
    "grid",
    summary="Near-square grid of equal cells (homogeneous baseline)",
    input="count",  # takes a processor count, not an area vector
)
def grid_partition(p: int) -> Partition:
    """Near-square ``r × c`` grid of ``p`` equal cells (``r*c == p``).

    Picks the factorisation with ``r`` closest to :math:`\\sqrt p`.
    For prime ``p`` this degenerates to a ``1 × p`` strip — exactly the
    pathology that motivates non-grid partitioners.
    """
    check_integer(p, "p", minimum=1)
    r = int(np.floor(np.sqrt(p)))
    while p % r != 0:
        r -= 1
    c = p // r
    rects = []
    cell_w, cell_h = 1.0 / c, 1.0 / r
    owner = 0
    for i in range(r):
        for j in range(c):
            rects.append(
                Rectangle(x=j * cell_w, y=i * cell_h, w=cell_w, h=cell_h, owner=owner)
            )
            owner += 1
    part = Partition(tuple(rects), side=1.0)
    part.validate(expected_areas=np.full(p, 1.0 / p))
    return part
