#!/usr/bin/env python3
"""Session tour: backend-routed, cached, batched planning.

Walks the `PlannerSession` API end to end in a few seconds:

1. one session, one request — `plan()`;
2. a full strategy sweep — `sweep()` — and the same sweep again,
   served entirely from the plan cache;
3. a batch of requests fanned out on the `threaded` backend (and the
   guarantee that every backend returns identical plans);
4. cache statistics, ignored-parameter sharing and invalidation;
5. where the old free functions went (removed in 2.0).

Run: ``python examples/session_tour.py``
"""

from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.platform.star import StarPlatform


def main() -> None:
    platform = StarPlatform.from_speeds([1, 2, 4, 8])
    print(platform.describe())
    print(f"fingerprint: {platform.fingerprint()}   (the cache key's anchor)")
    print()

    # --- 1. one session, one request ----------------------------------
    session = PlannerSession()  # backend="serial", caching on
    result = session.plan(
        PlanRequest(platform=platform, N=10_000.0, strategy="het")
    )
    print("single plan:", result.summary())
    print()

    # --- 2. sweep twice: the second is pure cache ---------------------
    sweep = session.sweep(platform, N=10_000.0, imbalance_target=0.01)
    print(sweep.render())
    print()
    again = session.sweep(platform, N=10_000.0, imbalance_target=0.01)
    print(again.render())  # note the * rows and "3 hit(s)"
    print()

    # --- 3. batched planning on a concurrent backend ------------------
    # Backends change where planning runs, never what it computes:
    # 'serial', 'threaded' and 'process' return identical plans.
    requests = [
        PlanRequest(platform=platform, N=float(n), strategy=name)
        for n in (1_000, 2_000, 4_000)
        for name in ("hom", "het")
    ]
    with PlannerSession(backend="threaded", jobs=4) as threaded:
        batch = threaded.plan_batch(requests)
        for res in batch:
            print(
                f"  N={res.request.N:>6g}  {res.strategy:<4} "
                f"comm={res.comm_volume:>10.1f}  "
                f"ratio={res.ratio_to_lower_bound:.3f}"
            )
    print()

    # --- 4. cache behaviour -------------------------------------------
    # 'het' ignores imbalance_target, so these two requests share one
    # cache entry (params are filtered per strategy before keying):
    session.plan(
        PlanRequest(
            platform=platform,
            N=500.0,
            strategy="het",
            params={"imbalance_target": 0.01},
        )
    )
    shared = session.plan(
        PlanRequest(
            platform=platform,
            N=500.0,
            strategy="het",
            params={"imbalance_target": 0.9},
        )
    )
    print(f"ignored-param request cached: {shared.cached}")
    print(session.cache_stats().render())
    session.clear_cache()
    print(f"after clear_cache(): {len(session.cache)} entries")
    print()

    # --- 5. the old free functions ------------------------------------
    print(
        "repro.core.pipeline.execute/execute_all were removed in repro\n"
        "2.0 as their DeprecationWarning announced — use\n"
        "PlannerSession.plan/.sweep (or pass session=... to the\n"
        "plan_outer_product / compare_strategies façade).  See the\n"
        "README's migration notes, examples/batch_planning.py for the\n"
        "vectorised batch path, and examples/remote_planning.py for\n"
        "offloading to a plan server."
    )


if __name__ == "__main__":
    main()
