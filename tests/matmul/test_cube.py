"""Tests for repro.matmul.cube."""

import pytest

from repro.matmul.cube import Brick, ComputationCube


class TestBrick:
    def test_volumes(self):
        b = Brick(0, 2, 0, 3, 0, 4)
        assert b.work == 24
        assert b.a_volume == 6
        assert b.b_volume == 12
        assert b.c_volume == 8
        assert b.input_volume == 18

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Brick(2, 1, 0, 1, 0, 1)

    def test_empty_brick_zero_work(self):
        assert Brick(0, 0, 0, 5, 0, 5).work == 0


class TestCube:
    def test_global_volumes(self):
        cube = ComputationCube(10)
        assert cube.work == 1000
        assert cube.input_size == 200
        assert cube.output_size == 100

    def test_full_brick_matches(self):
        cube = ComputationCube(5)
        assert cube.full_brick().work == cube.work

    def test_alpha_is_three_halves_in_data_terms(self):
        assert ComputationCube(64).nonlinearity_alpha == pytest.approx(1.5)

    def test_column_slab(self):
        cube = ComputationCube(8)
        slab = cube.column_slab(2, 4)
        assert slab.work == 8 * 2 * 8
        assert slab.a_volume == 16

    def test_slab_bounds_checked(self):
        with pytest.raises(ValueError):
            ComputationCube(4).column_slab(3, 6)

    def test_slabs_tile_the_cube(self):
        cube = ComputationCube(6)
        total = sum(cube.column_slab(k, k + 1).work for k in range(6))
        assert total == cube.work
