"""Tests for repro.blocks.one_port."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.one_port import (
    brute_force_one_port_plan,
    plan_het_one_port,
)
from repro.platform.star import StarPlatform


class TestPlanHetOnePort:
    def test_sends_serialised(self, heterogeneous_platform):
        plan = plan_het_one_port(heterogeneous_platform, 1000.0)
        ends = np.sort(plan.send_end)
        assert np.all(np.diff(ends) >= -1e-12)

    def test_jackson_order_largest_compute_first(self):
        plat = StarPlatform.from_speeds([1.0, 1.0, 8.0])
        plan = plan_het_one_port(plat, 900.0)
        # the fastest worker owns the biggest rectangle → most compute?
        # compute_i = area_i * w_i = x_i*N^2/s_i = N^2/(Σs) — equal!
        # With equal computes Jackson's order is degenerate; just check
        # it is a valid permutation.
        assert sorted(plan.order) == [0, 1, 2]

    @given(
        speeds=st.lists(
            st.floats(min_value=0.5, max_value=20.0), min_size=2, max_size=6
        ),
        bandwidths=st.lists(
            st.floats(min_value=0.5, max_value=20.0), min_size=2, max_size=6
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_jackson_matches_brute_force(self, speeds, bandwidths):
        p = min(len(speeds), len(bandwidths))
        plat = StarPlatform.from_speeds(speeds[:p], bandwidths[:p])
        jackson = plan_het_one_port(plat, 500.0, order="jackson")
        best = brute_force_one_port_plan(plat, 500.0)
        assert jackson.makespan == pytest.approx(best.makespan, rel=1e-9)

    def test_smallest_first_no_better(self, heterogeneous_platform):
        good = plan_het_one_port(heterogeneous_platform, 1000.0, order="jackson")
        bad = plan_het_one_port(
            heterogeneous_platform, 1000.0, order="smallest-first"
        )
        assert bad.makespan >= good.makespan - 1e-9

    def test_unknown_order_rejected(self, heterogeneous_platform):
        with pytest.raises(ValueError):
            plan_het_one_port(heterogeneous_platform, 100.0, order="rand")

    def test_one_port_never_beats_parallel_links(self, heterogeneous_platform):
        plan = plan_het_one_port(heterogeneous_platform, 1000.0)
        assert plan.makespan >= plan.parallel_links_makespan - 1e-9

    def test_note_equal_compute_property(self):
        """Perfect balance means every worker computes x_i N² / s_i =
        N²/Σs — identical; the one-port ordering question is then purely
        about send sizes.  Verified here because it is the §4.1
        load-balancing constraint in disguise."""
        plat = StarPlatform.from_speeds([1.0, 2.0, 5.0])
        plan = plan_het_one_port(plat, 600.0)
        compute = plan.finish - plan.send_end
        assert np.allclose(compute, compute[0], rtol=1e-9)
