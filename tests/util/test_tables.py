"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import format_mean_std, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, sep, two rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_none_renders_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_floatfmt_applied(self):
        out = format_table(["x"], [[3.14159]], floatfmt=".2f")
        assert "3.14" in out and "3.1416" not in out

    def test_bool_rendered(self):
        out = format_table(["ok"], [[True]])
        assert "True" in out

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_structure(self):
        out = format_series("p", [10, 20], {"het": [1.0, 1.1], "hom": [2.0, 3.0]})
        lines = out.splitlines()
        assert lines[0].split() == ["p", "het", "hom"]
        assert len(lines) == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            format_series("p", [1, 2], {"s": [1.0]})


def test_format_mean_std():
    assert format_mean_std(1.2345, 0.5) == "1.234±0.500"
