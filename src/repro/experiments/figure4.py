"""Figure 4 (§4.3): ratio of communication volume to the lower bound.

Protocol, as in the paper: for p = 10…100 processors and each of three
speed-generation policies (homogeneous / uniform[1,100] /
lognormal(0,1)), run 100 random trials; in each trial compute the
communication volume of ``Comm_het``, ``Comm_hom`` and ``Comm_hom/k``
(stop at load-imbalance e ≤ 1%) for a large outer product, and plot the
ratio to :math:`LB = 2N\\sum\\sqrt{x_i}` with mean and standard
deviation.

Expected shapes (what the benchmarks assert):

* homogeneous — all three strategies sit at ratio ≈ 1 (het within
  ~1%, Figure 4a);
* uniform / lognormal — ``Comm_het`` stays within a few percent of the
  bound while ``Comm_hom/k`` climbs past 10–30× at p = 100 (Figures
  4b–c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.core.cache import PlanStore

import numpy as np

from repro import registry
from repro.core.session import PlannerSession, default_session
from repro.platform.generators import make_speeds
from repro.platform.star import StarPlatform
from repro.util.rng import SeedLike, spawn_rngs
from repro.util.tables import format_table

#: matrix/vector size used by the sweeps; ratios are N-independent for
#: the closed-form strategies and nearly so for the simulated ones, so
#: any large N reproduces the figure.
DEFAULT_N = 10_000.0


def strategy_names() -> tuple[str, ...]:
    """Every registered outer-product strategy — the sweep's columns.

    Registered plugins join the Figure-4 protocol automatically; the
    paper's three built-ins are always present.
    """
    return registry.available("strategy")


@dataclass(frozen=True)
class Figure4Point:
    """Ratios of all strategies for one (p, trial) instance."""

    p: int
    ratios: dict[str, float]
    hom_k: int
    imbalances: dict[str, float]


@dataclass(frozen=True)
class Figure4Result:
    """One full panel of Figure 4 (one speed policy)."""

    speed_model: str
    processors: tuple[int, ...]
    trials: int
    #: mean ratio per strategy: {name: array over processors}
    means: dict[str, np.ndarray]
    stds: dict[str, np.ndarray]

    def render(self) -> str:
        headers = ["p"]
        for name in self.means:
            headers += [f"{name} mean", f"{name} std"]
        rows = []
        for i, p in enumerate(self.processors):
            row: list = [p]
            for name in self.means:
                row += [self.means[name][i], self.stds[name][i]]
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                f"Figure 4 ({self.speed_model} speeds): ratio of comm "
                f"volume to the lower bound, {self.trials} trials/point"
            ),
        )

    def final_ratio(self, strategy: str) -> float:
        """Mean ratio at the largest processor count (headline number)."""
        return float(self.means[strategy][-1])

    def ci_half_width(self, strategy: str, confidence: float = 0.95) -> np.ndarray:
        """Student-t half-width of the mean's CI at each point.

        Uses the stored per-point std (population) and the trial count;
        for the paper's 100 trials the small-sample correction is
        negligible but included for the reduced protocols.
        """
        from scipy import stats as sps

        n = self.trials
        if n < 2:
            return np.zeros(len(self.processors))
        t = sps.t.ppf(0.5 + confidence / 2, df=n - 1)
        sample_std = self.stds[strategy] * np.sqrt(n / (n - 1))
        return t * sample_std / np.sqrt(n)


def run_figure4_point(
    p: int,
    speed_model: str,
    rng: np.random.Generator,
    N: float = DEFAULT_N,
    imbalance_target: float = 0.01,
    session: PlannerSession | None = None,
) -> Figure4Point:
    """One random trial at one processor count (one dot of the cloud).

    Sweeps every registered strategy through ``session`` (default: the
    process-wide one), so the point's ``ratios``/``imbalances`` dicts
    grow with the registry and the sweep fans out on whatever backend
    the session routes to.
    """
    speeds = make_speeds(speed_model, p, rng)
    platform = StarPlatform.from_speeds(speeds)

    sweep = (session or default_session()).sweep(
        platform, N, imbalance_target=imbalance_target
    )
    plans = {name: res.plan for name, res in sweep.results.items()}

    hom_k = 1
    if "hom/k" in plans:
        hom_k = int(plans["hom/k"].detail.get("subdivision", 1))
    return Figure4Point(
        p=p,
        ratios={
            name: plan.ratio_to_lower_bound for name, plan in plans.items()
        },
        hom_k=hom_k,
        imbalances={name: plan.imbalance for name, plan in plans.items()},
    )


def run_figure4(
    speed_model: str,
    processors: Sequence[int] = (10, 20, 40, 60, 80, 100),
    trials: int = 100,
    seed: SeedLike = 2013,
    N: float = DEFAULT_N,
    imbalance_target: float = 0.01,
    session: PlannerSession | None = None,
    backend: str = "serial",
    jobs: int | None = None,
    cache: "bool | str | PlanStore" = True,
    vectorize: bool = True,
) -> Figure4Result:
    """Reproduce one panel of Figure 4.

    ``speed_model`` ∈ {"homogeneous", "uniform", "lognormal"} selects
    4(a), 4(b) or 4(c).  Defaults mirror the paper (10–100 processors,
    100 trials, e ≤ 1%).  Trials plan through ``session`` when given;
    otherwise a fresh one on ``backend`` (``serial`` / ``threaded`` /
    ``process``, ``jobs`` workers) is used for the whole panel, so the
    100-trial protocol fans out and repeated instances (notably the
    homogeneous panel, where every trial is content-identical) hit the
    plan cache instead of re-planning — pass ``cache=False`` to plan
    every trial anew (e.g. to measure real per-trial planning time).

    ``cache`` also accepts a spec string or any
    :class:`~repro.core.cache.PlanStore`, which makes the sweep
    *resumable*: trials draw their platforms from seed-derived RNGs, so
    rerunning a killed sweep with ``cache="sqlite:plans.db"`` (same
    seed/protocol, same path) replays every already-planned point as a
    disk hit and only plans the remainder — the resumed panel is
    identical to an uninterrupted run.

    ``vectorize`` sets the fresh session's batched-kernel routing
    (:mod:`repro.core.vectorize`); either setting yields the same
    panel, per the vectorisation equivalence contract.
    """
    processors = tuple(int(p) for p in processors)
    names = strategy_names()
    rngs = spawn_rngs(seed, len(processors) * trials)
    means = {name: np.empty(len(processors)) for name in names}
    stds = {name: np.empty(len(processors)) for name in names}
    own_session = session is None
    session = session or PlannerSession(
        backend=backend, jobs=jobs, cache=cache, vectorize=vectorize
    )
    try:
        for i, p in enumerate(processors):
            samples = {name: np.empty(trials) for name in names}
            for t in range(trials):
                point = run_figure4_point(
                    p,
                    speed_model,
                    rngs[i * trials + t],
                    N=N,
                    imbalance_target=imbalance_target,
                    session=session,
                )
                for name in names:
                    samples[name][t] = point.ratios[name]
            for name in names:
                means[name][i] = samples[name].mean()
                stds[name][i] = samples[name].std(ddof=0)
    finally:
        if own_session:
            session.close()
    return Figure4Result(
        speed_model=speed_model,
        processors=processors,
        trials=trials,
        means=means,
        stds=stds,
    )
