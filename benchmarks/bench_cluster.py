"""Benchmark for cluster mode: 1 worker vs an N-worker pool.

The scale-out claim the cluster tentpole must answer with numbers:
planning throughput against ``repro cluster up -n 3`` vs a single
worker, same workload, same wire.  Three legs:

* **direct** — a remote session against one worker's own URL (no
  coordinator in the path): the single-server baseline;
* **proxy** — the same single worker behind a coordinator: what the
  front door itself costs;
* **cluster** — three workers behind a coordinator: the scale-out.

Workers run ``--no-vectorize`` and cacheless so each request costs
real, un-amortised planner CPU — that is the regime scale-out exists
for (the vectorised kernels are so fast post-PR-6 that wire latency
dominates and no pool can help).  All legs must return bit-identical
plans (rtol=1e-12).

Emits a ``BENCH {...}`` line; ``scripts/check_bench.py`` diffs it
against ``BENCH_cluster.json``.  The ≥2.5x acceptance floor only
binds where it can physically hold: with fewer than 3 CPUs the three
workers time-share one core and the assertion is reported but skipped.
"""

import json
import os
import time

import numpy as np

from repro.cluster.lifecycle import LocalCluster
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.platform.star import StarPlatform

#: the acceptance floor for cluster(3)/direct(1) throughput — only
#: asserted when the host has enough cores for 3 workers to run in
#: parallel at all
SPEEDUP_FLOOR = 2.5
MIN_CPUS_FOR_FLOOR = 3

N_REQUESTS = 240
P = 256


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _requests(count=N_REQUESTS, p=P, seed=20130521):
    """Heterogeneous scalar instances heavy enough to time planning."""
    rng = np.random.default_rng(seed)
    platform = StarPlatform.from_speeds(rng.uniform(1.0, 8.0, size=p))
    return [
        PlanRequest(platform=platform, N=40_000.0 + i, strategy="het")
        for i in range(count)
    ]


def _sweep(address, requests):
    """Best-of-3 wall-clock for one batch against one URL, plus plans."""
    with PlannerSession(backend=f"remote:{address}", cache=False) as remote:
        results = remote.plan_batch(requests)
        elapsed = min(
            _timed(lambda: remote.plan_batch(requests)) for _ in range(3)
        )
    return elapsed, results


def _address(url):
    return url[len("http://"):]


def test_cluster_scale_out_throughput(tmp_path):
    requests = _requests()
    cpu_count = os.cpu_count() or 1

    # legs 1+2: one scalar worker, bare and behind a coordinator
    with LocalCluster(
        n=1,
        cache=None,
        vectorize=False,
        state_path=str(tmp_path / "one.json"),
    ) as single:
        direct_s, direct_results = _sweep(
            _address(single.workers[0].url), requests
        )
        proxy_s, proxy_results = _sweep(_address(single.url), requests)

    # leg 3: three scalar workers behind a coordinator
    with LocalCluster(
        n=3,
        cache=None,
        vectorize=False,
        state_path=str(tmp_path / "three.json"),
    ) as pool:
        cluster_s, cluster_results = _sweep(_address(pool.url), requests)
        snapshot = pool.coordinator.pool.snapshot()

    # every worker carried load — the batch really sharded
    assert all(w["dispatched"] > 0 for w in snapshot["workers"])

    # all legs bit-identical
    for leg in (proxy_results, cluster_results):
        assert len(leg) == len(direct_results)
        for a, b in zip(leg, direct_results):
            np.testing.assert_allclose(
                a.plan.finish_times, b.plan.finish_times, rtol=1e-12
            )
            np.testing.assert_allclose(
                a.plan.makespan, b.plan.makespan, rtol=1e-12
            )

    speedup = direct_s / cluster_s
    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "cluster_scale_out_throughput",
                "requests": len(requests),
                "workers": 3,
                "cpu_count": cpu_count,
                "direct_s": round(direct_s, 4),
                "proxy_s": round(proxy_s, 4),
                "cluster_s": round(cluster_s, 4),
                "direct_req_per_s": round(len(requests) / direct_s, 1),
                "cluster_req_per_s": round(len(requests) / cluster_s, 1),
                "proxy_overhead_x": round(proxy_s / direct_s, 2),
                "speedup": round(speedup, 2),
            }
        )
    )

    # the coordinator must never cost more than the wire already does
    assert proxy_s < direct_s * 3, (
        f"coordinator proxying {proxy_s / direct_s:.1f}x slower than the "
        "bare worker"
    )
    if cpu_count >= MIN_CPUS_FOR_FLOOR:
        assert speedup >= SPEEDUP_FLOOR, (
            f"3-worker cluster at {speedup:.2f}x a single worker; "
            f"acceptance requires >= {SPEEDUP_FLOOR}x on a "
            f"{cpu_count}-CPU host"
        )
    else:
        print(
            f"NOTE: {cpu_count} CPU(s) — 3 workers time-share cores, the "
            f">= {SPEEDUP_FLOOR}x floor cannot bind and is not asserted "
            f"(speedup observed: {speedup:.2f}x)"
        )
