"""Classical Divisible Load Theory solvers (the substrate the paper builds on).

* :mod:`repro.dlt.single_round` — closed-form optimal single-installment
  allocations for *linear* loads, under parallel links (the paper's
  model) and the classical one-port model.
* :mod:`repro.dlt.ordering` — activation-order optimisation for the
  one-port model (sort by bandwidth; brute-force checker).
* :mod:`repro.dlt.nonlinear_solver` — the *criticized* approach
  ([31]–[35]): equal-finish-time allocation of an :math:`N^\\alpha` load,
  solved numerically.  Exists so §2's futility result can be measured
  against the genuine optimum of that formulation.
* :mod:`repro.dlt.multi_round` — multi-installment scheduling for linear
  loads (extension; return messages stay out of scope per §1.2).
"""

from repro.dlt.single_round import (
    Allocation,
    solve_linear_parallel,
    solve_linear_one_port,
    equal_split,
)
from repro.dlt.nonlinear_solver import (
    solve_nonlinear_parallel,
    solve_nonlinear_one_port,
    NonlinearAllocation,
)
from repro.dlt.ordering import (
    best_one_port_order,
    brute_force_one_port_order,
    bandwidth_order,
)
from repro.dlt.multi_round import MultiRoundSchedule, solve_multi_round
from repro.dlt.tree_solver import TreeAllocation, solve_tree, equivalent_rate

__all__ = [
    "TreeAllocation",
    "solve_tree",
    "equivalent_rate",
    "Allocation",
    "solve_linear_parallel",
    "solve_linear_one_port",
    "equal_split",
    "solve_nonlinear_parallel",
    "solve_nonlinear_one_port",
    "NonlinearAllocation",
    "best_one_port_order",
    "brute_force_one_port_order",
    "bandwidth_order",
    "MultiRoundSchedule",
    "solve_multi_round",
]
