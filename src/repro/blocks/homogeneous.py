"""The Homogeneous Blocks strategy (``Comm_hom``, §4.1.1).

The computational domain (``N × N`` products :math:`a_i b_j`) is cut
into identical square chunks of side :math:`D = \\sqrt{x_1} N`, sized so
the *slowest* worker processes exactly one.  Chunks are assigned demand-
driven (workers pull a chunk when free).  MapReduce ships each chunk's
input independently, so the communication volume counts :math:`2D` per
chunk with **no reuse** even when a worker's chunks share rows/columns
— that redundancy is precisely the §4 critique.

Idealised accounting (all counts integral):

.. math:: \\#\\text{blocks} = 1/x_1, \\qquad
          Comm_{hom} = \\frac{2N}{\\sqrt{x_1}}
                     = 2N\\sqrt{\\sum_i s_i / s_1}.

The executable strategy rounds the block count to an integer and really
runs the greedy demand-driven schedule, so the load imbalance ``e`` that
§4.3 measures is produced by simulation rather than assumed away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocks.metrics import StrategyResult, load_imbalance
from repro.core.bounds import comm_hom_ideal
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.simulate.demand_driven import (
    Task,
    identical_task_schedule,
    run_demand_driven,
)
from repro.util.validation import check_positive


@register(
    "strategy",
    "hom",
    summary="Homogeneous Blocks: identical chunks, demand-driven (§4.1.1)",
    section="§4.1.1",
)
@dataclass(frozen=True)
class HomogeneousBlocksStrategy:
    """Plan an outer product with MapReduce-style homogeneous chunks.

    Parameters
    ----------
    subdivision:
        Divide the natural block side ``D`` by this integer ``k >= 1``
        (``k = 1`` is plain ``Comm_hom``; the refinement loop of
        :class:`repro.blocks.RefinedHomogeneousStrategy` sweeps ``k``).
    """

    subdivision: int = 1

    def __post_init__(self) -> None:
        if self.subdivision < 1:
            raise ValueError(
                f"subdivision must be >= 1, got {self.subdivision}"
            )

    def block_side(self, platform: StarPlatform, N: float) -> float:
        """Side :math:`D/k` with :math:`D = \\sqrt{x_1}\\,N`."""
        check_positive(N, "N")
        x1 = float(platform.normalized_speeds.min())
        return float(np.sqrt(x1) * N / self.subdivision)

    def n_blocks(self, platform: StarPlatform, N: float) -> int:
        """Number of chunks: domain area over chunk area, rounded **up**.

        ``ceil(N² / side²) = ceil(k² / x_1)`` — rounding up keeps the
        chunks covering the whole domain (rounding to nearest could drop
        a fractional block and under-count communication below the lower
        bound).  A small tolerance absorbs float noise so exact integer
        ratios (homogeneous platforms) stay exact.  At least one block
        per worker is *not* forced — if rounding starves a worker the
        imbalance metric reports ``inf`` and the refinement loop reacts.
        """
        side = self.block_side(platform, N)
        return max(1, int(np.ceil((N / side) ** 2 - 1e-9)))

    #: above this many chunks, use the O(p log) closed form of the
    #: greedy schedule instead of the heap (identical results — the
    #: equivalence is property-tested)
    _FAST_PATH_THRESHOLD = 4096

    def plan(self, platform: StarPlatform, N: float) -> StrategyResult:
        """Run the demand-driven schedule and account communications."""
        check_positive(N, "N")
        side = self.block_side(platform, N)
        B = self.n_blocks(platform, N)
        work = side * side  # elementary products per chunk
        if B > self._FAST_PATH_THRESHOLD:
            counts, finish_times = identical_task_schedule(platform, B, work)
        else:
            tasks = [Task(work=work, data=2.0 * side, tag=b) for b in range(B)]
            result = run_demand_driven(platform, tasks)
            counts, finish_times = result.counts, result.finish_times
        comm = B * 2.0 * side
        return StrategyResult(
            strategy=f"hom/k={self.subdivision}" if self.subdivision > 1 else "hom",
            N=float(N),
            speeds=platform.speeds,
            comm_volume=float(comm),
            finish_times=finish_times,
            imbalance=load_imbalance(finish_times),
            detail={
                "block_side": side,
                "n_blocks": B,
                "subdivision": self.subdivision,
                "counts": counts,
            },
        )

    @staticmethod
    def ideal_volume(platform: StarPlatform, N: float) -> float:
        """Closed-form :math:`2N\\sqrt{\\sum s_i/s_1}` (§4.1.1)."""
        return comm_hom_ideal(N, platform.speeds)
