"""Tests for the versioned service wire format."""

import json
import pickle

import numpy as np
import pytest

from repro.service import wire


class TestEnvelope:
    def test_roundtrip(self):
        payload = {"anything": [1, 2.5, "three"], "nested": (None, True)}
        assert wire.unpack(wire.pack(payload)) == payload

    def test_magic_prefix_present(self):
        assert wire.pack(1).startswith(wire.WIRE_MAGIC)

    def test_rejects_arbitrary_bytes_without_unpickling(self):
        # a pickle bomb without the magic header must fail on the header
        # check alone — Bomb.__reduce__ would raise if it ever ran
        class Bomb:
            def __reduce__(self):
                return (pytest.fail, ("unpickled a non-envelope body!",))

        with pytest.raises(wire.WireError, match="missing"):
            wire.unpack(pickle.dumps(Bomb()))

    def test_rejects_truncated_envelope(self):
        data = wire.pack(["payload"])
        with pytest.raises(wire.WireError, match="undecodable"):
            wire.unpack(data[: len(wire.WIRE_MAGIC) + 4])

    def test_rejects_wrong_format_field(self):
        body = wire.WIRE_MAGIC + pickle.dumps(
            {"format": "something-else", "version": wire.WIRE_VERSION,
             "payload": 1}
        )
        with pytest.raises(wire.WireError, match="bad format"):
            wire.unpack(body)

    def test_rejects_version_mismatch_both_directions(self):
        for version in (wire.WIRE_VERSION - 1, wire.WIRE_VERSION + 1):
            body = wire.WIRE_MAGIC + pickle.dumps(
                {"format": wire.WIRE_FORMAT, "version": version, "payload": 1}
            )
            with pytest.raises(wire.WireError, match="version mismatch"):
                wire.unpack(body)

    def test_rejects_missing_payload(self):
        body = wire.WIRE_MAGIC + pickle.dumps(
            {"format": wire.WIRE_FORMAT, "version": wire.WIRE_VERSION}
        )
        with pytest.raises(wire.WireError, match="no payload"):
            wire.unpack(body)

    def test_none_payload_is_legal(self):
        # /cache/get misses return an envelope whose payload is None
        assert wire.unpack(wire.pack(None)) is None


def _sample_platform():
    from repro.platform.star import StarPlatform

    return StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])


class TestBinaryEnvelope:
    """binary-v2: typed, pickle-free, zero-copy array frames."""

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            True,
            -3,
            2.5,
            float("inf"),
            "text",
            b"\x00raw\xff",
            [1, [2, "x"], None],
            (1, (2.5, "y"), b"z"),
            {"a": 1, 2: "b", ("t",): [3.0]},
            frozenset({1, "two"}),
            {"mixed", 3},
        ],
        ids=repr,
    )
    def test_scalar_and_container_roundtrip(self, payload):
        assert wire.unpack_v2(wire.pack_v2(payload)) == payload

    def test_nan_roundtrip(self):
        import math

        out = wire.unpack_v2(wire.pack_v2({"v": float("nan")}))
        assert math.isnan(out["v"])

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(6, dtype=np.float64),
            np.arange(6, dtype=np.int32).reshape(2, 3),
            np.array([], dtype=np.float32),
            np.array([[True, False], [False, True]]),
            np.asfortranarray(np.arange(12.0).reshape(3, 4)),
        ],
        ids=["f64", "i32-2d", "empty", "bool", "fortran"],
    )
    def test_ndarray_roundtrip(self, arr):
        out = wire.unpack_v2(wire.pack_v2(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        np.testing.assert_array_equal(out, arr)

    def test_decoded_arrays_are_zero_copy_views(self):
        data = wire.pack_v2(np.arange(100.0))
        out = wire.unpack_v2(data)
        # frombuffer over the received body: a read-only view, no copy
        assert out.base is not None
        assert not out.flags.writeable

    def test_cache_key_roundtrip_preserves_hash(self):
        key = (
            ("fingerprint", b"\x01\x02", 4),
            1000.0,
            "het",
            ("origin", "repro.blocks.strategies"),
            (("alpha", 2.0), ("flag", True), ("n", None)),
        )
        out = wire.unpack_v2(wire.pack_v2(key))
        assert out == key
        assert hash(out) == hash(key)

    def test_plan_result_roundtrip(self):
        from repro.core.pipeline import PlanRequest, plan_request

        request = PlanRequest(
            platform=_sample_platform(), N=1000.0, strategy="het"
        )
        result = plan_request(request)
        out = wire.unpack_v2(wire.pack_v2(result))
        assert out.request == request
        assert out.plan.strategy == result.plan.strategy
        assert out.plan.comm_volume == result.plan.comm_volume
        np.testing.assert_array_equal(
            out.plan.finish_times, result.plan.finish_times
        )
        assert out.plan.detail["partition"] == result.plan.detail["partition"]

    def test_vector_group_roundtrip(self):
        from repro.core.pipeline import PlanRequest
        from repro.core.vectorize import VectorGroup

        platform = _sample_platform()
        group = VectorGroup(
            strategy="hom",
            requests=tuple(
                PlanRequest(platform=platform, N=float(n), strategy="hom")
                for n in (100, 200)
            ),
        )
        out = wire.unpack_v2(wire.pack_v2(group))
        assert out == group

    def test_platform_fingerprint_survives(self):
        from repro.platform.comm_models import BoundedMultiport
        from repro.platform.star import StarPlatform

        platform = StarPlatform.from_speeds(
            [3.0, 1.0], comm_model=BoundedMultiport(master_bandwidth=7.5)
        )
        out = wire.unpack_v2(wire.pack_v2(platform))
        assert out == platform
        assert out.fingerprint() == platform.fingerprint()
        assert out.comm_model.master_bandwidth == 7.5

    def test_v2_not_larger_than_pickle_for_plans(self):
        from repro.core.pipeline import PlanRequest, plan_request

        results = [
            plan_request(
                PlanRequest(
                    platform=_sample_platform(), N=float(n), strategy=s
                )
            )
            for n in (500, 1000)
            for s in ("hom", "het")
        ]
        assert len(wire.pack_v2(results)) < len(wire.pack(results))


class TestBinaryRejection:
    """Truncated / garbled / hostile v2 bytes fail with WireError only."""

    def test_rejects_pickle_bomb_without_unpickling(self):
        class Bomb:
            def __reduce__(self):
                return (pytest.fail, ("unpickled a binary-v2 body!",))

        with pytest.raises(wire.WireError, match="missing"):
            wire.unpack_v2(pickle.dumps(Bomb()))

    def test_truncation_at_every_prefix_is_clean(self):
        data = wire.pack_v2(
            {"arrays": [np.arange(10.0), np.arange(5)], "n": 3}
        )
        for cut in range(0, len(data) - 1, 7):
            with pytest.raises(wire.WireError):
                wire.unpack_v2(data[:cut])

    def test_byte_flips_never_escape_wireerror(self):
        payload = {"xs": np.arange(8.0), "tag": ["t", 1, "two"]}
        data = bytearray(wire.pack_v2(payload))
        rng = np.random.default_rng(2013)
        for _ in range(200):
            pos = int(rng.integers(len(wire.WIRE_V2_MAGIC), len(data)))
            flipped = bytearray(data)
            flipped[pos] ^= int(rng.integers(1, 256))
            try:
                wire.unpack_v2(bytes(flipped))
            except wire.WireError:
                pass  # rejected cleanly — the only acceptable failure

    def test_rejects_garbled_header_json(self):
        header = b'{"format": nonsense'
        body = (
            wire.WIRE_V2_MAGIC + len(header).to_bytes(8, "big") + header
        )
        with pytest.raises(wire.WireError, match="undecodable"):
            wire.unpack_v2(body)

    def _envelope(self, header_dict):
        header = json.dumps(header_dict).encode()
        return wire.WIRE_V2_MAGIC + len(header).to_bytes(8, "big") + header

    def test_rejects_wrong_format_field(self):
        with pytest.raises(wire.WireError, match="bad format"):
            wire.unpack_v2(
                self._envelope(
                    {"format": "nope", "version": 2, "payload": 1}
                )
            )

    def test_rejects_version_mismatch(self):
        for version in (1, 3):
            with pytest.raises(wire.WireError, match="version mismatch"):
                wire.unpack_v2(
                    self._envelope(
                        {
                            "format": wire.WIRE_FORMAT,
                            "version": version,
                            "payload": 1,
                        }
                    )
                )

    def test_rejects_frame_geometry_lies(self):
        # header claims 100 floats but supplies none
        bad = self._envelope(
            {
                "format": wire.WIRE_FORMAT,
                "version": 2,
                "payload": ["nd", 0],
                "frames": [["<f8", [100], 0, 800]],
            }
        )
        with pytest.raises(wire.WireError, match="cut short"):
            wire.unpack_v2(bad)
        # ... and a shape/nbytes contradiction
        bad = self._envelope(
            {
                "format": wire.WIRE_FORMAT,
                "version": 2,
                "payload": ["nd", 0],
                "frames": [["<f8", [3], 0, 16]],
            }
        )
        with pytest.raises(wire.WireError, match="geometry"):
            wire.unpack_v2(bad)

    def test_rejects_object_dtype_frames(self):
        bad = self._envelope(
            {
                "format": wire.WIRE_FORMAT,
                "version": 2,
                "payload": ["nd", 0],
                "frames": [["|O", [1], 0, 8]],
            }
        )
        with pytest.raises(wire.WireError, match="object dtypes"):
            wire.unpack_v2(bad)

    def test_rejects_unknown_tag(self):
        with pytest.raises(wire.WireError, match="unknown binary-v2 node"):
            wire.unpack_v2(
                self._envelope(
                    {
                        "format": wire.WIRE_FORMAT,
                        "version": 2,
                        "payload": ["exec", "rm -rf /"],
                    }
                )
            )

    def test_encode_refuses_object_arrays(self):
        with pytest.raises(wire.WireError, match="object arrays"):
            wire.pack_v2(np.array([object()], dtype=object))

    def test_encode_refuses_unknown_types_naming_the_escape_hatch(self):
        class Opaque:
            pass

        with pytest.raises(wire.WireError, match="pickle-v1"):
            wire.pack_v2(Opaque())


class TestProfileNegotiationHelpers:
    def test_detect_profile(self):
        assert wire.detect_profile(wire.pack(1)) == wire.PROFILE_PICKLE
        assert wire.detect_profile(wire.pack_v2(1)) == wire.PROFILE_BINARY
        with pytest.raises(wire.WireError, match="unrecognised"):
            wire.detect_profile(b"GET / HTTP/1.1")

    @pytest.mark.parametrize("profile", wire.PROFILES)
    def test_pack_as_roundtrips_through_unpack_any(self, profile):
        payload = {"xs": (1, 2.5), "s": "ok"}
        data = wire.pack_as(payload, profile)
        assert wire.detect_profile(data) == profile
        assert wire.unpack_any(data) == payload

    def test_pack_as_rejects_unknown_profile(self):
        with pytest.raises(wire.WireError, match="unknown wire profile"):
            wire.pack_as(1, "msgpack-v9")

    def test_unpack_any_refuses_disallowed_profile_before_unpickling(self):
        class Bomb:
            def __reduce__(self):
                return (pytest.fail, ("safe mode unpickled anyway!",))

        data = wire.WIRE_MAGIC + pickle.dumps(Bomb())
        with pytest.raises(wire.WireError, match="refused"):
            wire.unpack_any(data, allowed=(wire.PROFILE_BINARY,))

    def test_unpack_any_allows_listed_profiles(self):
        data = wire.pack_v2([1, 2])
        assert wire.unpack_any(data, allowed=(wire.PROFILE_BINARY,)) == [1, 2]

    def test_profiles_prefer_binary(self):
        assert wire.PROFILES[0] == wire.PROFILE_BINARY
