"""Benchmarks for the MapReduce volume story: experiment E14 (§1.1, §4).

Executable comparison of the three matmul-over-MapReduce formulations
on the metered engine: the naive all-pairs job shuffles N³ records, the
HAMA block job ships 2qN², the paper's partitioned outer product ships
the half-perimeter volume.
"""

import numpy as np
import pytest

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.jobs import (
    block_matmul_job,
    naive_matmul_job,
    outer_product_job,
    word_count_job,
)
from repro.matmul.mapreduce_layouts import (
    hama_block_volume,
    naive_mapreduce_volume,
)
from repro.partition.column_based import peri_sum_partition
from repro.util.tables import format_table


def test_matmul_shuffle_volumes(benchmark):
    def run():
        rng = np.random.default_rng(0)
        n, q = 12, 3
        A, B = rng.normal(size=(n, n)), rng.normal(size=(n, n))
        engine = MapReduceEngine()

        job, inputs = naive_matmul_job(A, B)
        _, m_naive = engine.run_with_metrics(job, inputs)

        job, inputs = block_matmul_job(A, B, q)
        _, m_block = engine.run_with_metrics(job, inputs)
        return n, q, m_naive, m_block

    n, q, m_naive, m_block = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["formulation", "shuffle records", "shuffle volume", "closed form"],
            [
                ["naive all-pairs", m_naive.shuffle_records,
                 m_naive.shuffle_volume, float(n**3)],
                [f"HAMA q={q}", m_block.shuffle_records,
                 m_block.shuffle_volume, hama_block_volume(n, q)],
            ],
            title=f"MapReduce matmul shuffle volumes (N={n})",
        )
    )
    assert m_naive.shuffle_records == n**3
    assert m_block.shuffle_volume == pytest.approx(hama_block_volume(n, q))
    # the §1.1 point: the prepared-dataset input alone is 2N³
    assert naive_mapreduce_volume(n) == 2 * n**3
    assert m_block.shuffle_volume < m_naive.shuffle_volume


def test_outer_product_shuffle_matches_half_perimeters(benchmark):
    def run():
        rng = np.random.default_rng(1)
        n = 40
        a, b = rng.normal(size=n), rng.normal(size=n)
        speeds = np.array([1.0, 2.0, 4.0, 8.0])
        part = peri_sum_partition(speeds / speeds.sum())
        job, inputs = outer_product_job(a, b, part)
        out, m = MapReduceEngine().run_with_metrics(job, inputs)
        return n, part, out, m, a, b

    n, part, out, m, a, b = benchmark.pedantic(run, iterations=1, rounds=1)
    expected = part.scaled(n).sum_half_perimeters
    print(
        f"\nshuffle volume={m.shuffle_volume:.0f}, "
        f"scaled half-perimeter sum={expected:.0f}"
    )
    assert m.shuffle_volume == pytest.approx(expected, rel=0.15)
    # numeric correctness of the distributed product
    full = np.full((n, n), np.nan)
    for owner, (rows, cols, block) in out.items():
        full[np.ix_(rows, cols)] = block
    assert np.allclose(full, np.outer(a, b))


def test_two_pass_matmul_option_ii(benchmark):
    """§2 option (ii): sequencing MapReduce jobs ([25]) moves the cubic
    shuffle from the prepared input into the intermediate stage."""
    from repro.mapreduce.chained import two_pass_matmul

    rng = np.random.default_rng(2)
    n = 10
    A, B = rng.normal(size=(n, n)), rng.normal(size=(n, n))
    C, chain = benchmark.pedantic(
        two_pass_matmul, args=(A, B), iterations=1, rounds=1
    )
    m1, m2 = chain.metrics
    print(
        f"\npass-1 shuffle={m1.shuffle_records} records (2N²={2 * n * n}), "
        f"pass-2 shuffle={m2.shuffle_records} records (N³={n**3})"
    )
    assert np.allclose(C, A @ B)
    assert m1.shuffle_records == 2 * n * n
    assert m2.shuffle_records == n**3


def test_word_count_throughput(benchmark):
    """Linear baseline: shuffle is O(input) — MapReduce's home turf."""
    lines = ["lorem ipsum dolor sit amet"] * 2000
    job, make_inputs = word_count_job(n_reducers=8)
    engine = MapReduceEngine()
    out = benchmark(engine.run, job, make_inputs(lines))
    assert out["lorem"] == 2000
