"""Failure injection and speculative re-execution (§1.1's Hadoop traits).

The paper credits MapReduce with "its inherent capability of handling
hardware failures and processing capabilities heterogeneity ... relying
on on-demand allocations and a detection of nodes that perform poorly
(in order to re-assign tasks that slow down the process)".  This module
adds both mechanisms to the demand-driven scheduler so the library can
measure their cost:

* **fail-stop workers** — a worker dies at a given time; tasks it had
  completed survive (results were shipped back), its in-flight task is
  re-queued, and it takes no further tasks;
* **stragglers + speculation** — a worker may run a task at a slowdown
  factor; when all pending tasks are assigned and a task's expected
  completion lags, a free worker launches a speculative duplicate
  (Hadoop's backup tasks [23]); the earlier finisher wins.

Both are deterministic given the injected schedule, so tests can assert
exact outcomes; randomised injection uses the library's seeded RNG.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.platform.star import StarPlatform
from repro.simulate.demand_driven import Task
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_nonnegative


@dataclass(frozen=True)
class FailureEvent:
    """Worker ``worker`` fail-stops at time ``time``."""

    worker: int
    time: float

    def __post_init__(self) -> None:
        check_nonnegative(self.time, "time")


@dataclass
class FaultyRunResult:
    """Outcome of a demand-driven run under failures/speculation."""

    #: per-task index of the worker whose copy completed first
    completed_by: List[int]
    #: completion time of each task
    completion_times: np.ndarray
    #: per-worker count of executions (including lost + speculative)
    executions: np.ndarray
    #: tasks whose first execution was lost to a failure
    reexecuted: List[int]
    #: tasks that were speculatively duplicated
    speculated: List[int]
    makespan: float
    #: per-worker data shipped, counting every (re-)execution's input
    data_shipped: np.ndarray

    @property
    def wasted_executions(self) -> int:
        """Executions that did not produce the winning result."""
        return int(self.executions.sum()) - len(self.completed_by)


def run_with_failures(
    platform: StarPlatform,
    tasks: Sequence[Task],
    failures: Sequence[FailureEvent] = (),
    slowdown: Sequence[float] | None = None,
    speculate: bool = False,
    speculation_threshold: float = 1.5,
) -> FaultyRunResult:
    """Demand-driven execution with fail-stop workers and speculation.

    Parameters
    ----------
    failures:
        Fail-stop events.  A worker's in-flight task at death is lost
        and re-queued; completed tasks stand.
    slowdown:
        Per-worker multiplicative slowdown on task durations (≥ 1;
        models the "nodes that perform poorly" of §1.1).  Default: none.
    speculate:
        Enable backup tasks: once the queue is empty, any free worker
        duplicates the running task whose remaining time is largest,
        provided the backup is expected to finish
        ``speculation_threshold``× sooner than the original.

    Notes
    -----
    Time advances event-by-event (task completions and failures); the
    scheduler is the same greedy earliest-free-worker rule as
    :func:`repro.simulate.demand_driven.run_demand_driven`, so with no
    failures and no slowdown the outcome matches it exactly (tested).
    """
    p = platform.size
    w = platform.cycle_times.copy()
    if slowdown is not None:
        slowdown = np.asarray(slowdown, dtype=float)
        if slowdown.shape != (p,):
            raise ValueError(f"need {p} slowdown factors")
        if np.any(slowdown < 1.0):
            raise ValueError("slowdown factors must be >= 1")
        w = w * slowdown

    death: Dict[int, float] = {}
    for ev in failures:
        if not 0 <= ev.worker < p:
            raise ValueError(f"failure for unknown worker {ev.worker}")
        death[ev.worker] = min(ev.time, death.get(ev.worker, np.inf))

    n_tasks = len(tasks)
    completed_by: List[Optional[int]] = [None] * n_tasks
    completion = np.full(n_tasks, np.inf)
    executions = np.zeros(p, dtype=int)
    data_shipped = np.zeros(p)
    reexecuted: List[int] = []
    speculated: List[int] = []

    queue: List[int] = list(range(n_tasks))
    #: worker -> (task, start, end) of the in-flight execution
    running: Dict[int, tuple[int, float, float]] = {}
    free: List[int] = list(range(p))
    now = 0.0

    def duration(i: int, t_idx: int) -> float:
        return tasks[t_idx].work * w[i]

    def assign(i: int, t_idx: int, start: float) -> None:
        executions[i] += 1
        data_shipped[i] += tasks[t_idx].data
        running[i] = (t_idx, start, start + duration(i, t_idx))

    # Event loop: next event = earliest task end or worker death.
    while True:
        # hand out queued work to free, alive workers
        free.sort()
        still_free = []
        for i in free:
            if death.get(i, np.inf) <= now:
                continue
            if queue:
                assign(i, queue.pop(0), now)
            elif speculate:
                candidate = _pick_speculation(
                    running, completed_by, now, w, tasks, i,
                    speculation_threshold,
                )
                if candidate is not None:
                    if candidate not in speculated:
                        speculated.append(candidate)
                    assign(i, candidate, now)
                else:
                    still_free.append(i)
            else:
                still_free.append(i)
        free = still_free

        if not running:
            break

        # Next event: the earliest task completion, or the earliest
        # death that interrupts a running task before it completes.
        next_end = min(end for (_, _, end) in running.values())
        next_death = min(
            (
                death[i]
                for i, (_, _, end) in running.items()
                if i in death and now <= death[i] < end
            ),
            default=np.inf,
        )
        now = min(next_end, next_death)

        finished_workers = []
        for i, (t_idx, _start, end) in list(running.items()):
            dies_now = i in death and death[i] <= now and death[i] < end
            if dies_now:
                # worker dies mid-task: requeue unless the task is done
                # elsewhere, already queued, or another copy is running
                del running[i]
                if (
                    completed_by[t_idx] is None
                    and t_idx not in queue
                    and not any(r[0] == t_idx for r in running.values())
                ):
                    queue.insert(0, t_idx)
                    reexecuted.append(t_idx)
                continue
            if end <= now + 1e-15:
                del running[i]
                finished_workers.append(i)
                if completed_by[t_idx] is None:
                    completed_by[t_idx] = i
                    completion[t_idx] = end
        free.extend(finished_workers)

    unfinished = [t for t, owner in enumerate(completed_by) if owner is None]
    if unfinished:
        raise RuntimeError(
            f"platform died before completing tasks {unfinished[:5]}..."
            if len(unfinished) > 5
            else f"platform died before completing tasks {unfinished}"
        )
    return FaultyRunResult(
        completed_by=[int(i) for i in completed_by],  # type: ignore[arg-type]
        completion_times=completion,
        executions=executions,
        reexecuted=reexecuted,
        speculated=speculated,
        makespan=float(completion.max()) if n_tasks else 0.0,
        data_shipped=data_shipped,
    )


def _pick_speculation(
    running: Dict[int, tuple[int, float, float]],
    completed_by: List[Optional[int]],
    now: float,
    w: np.ndarray,
    tasks: Sequence[Task],
    candidate_worker: int,
    threshold: float,
) -> Optional[int]:
    """Choose the running task worth duplicating on ``candidate_worker``.

    Pick the unfinished task with the latest expected end; duplicate it
    only if the backup would finish ``threshold``× sooner than waiting.
    """
    copies: Dict[int, int] = {}
    for (t_idx, _s, _e) in running.values():
        copies[t_idx] = copies.get(t_idx, 0) + 1
    best_t, best_end = None, -np.inf
    for (t_idx, _start, end) in running.values():
        # one backup per task, like Hadoop's speculative execution
        if copies[t_idx] > 1:
            continue
        if completed_by[t_idx] is None and end > best_end:
            best_t, best_end = t_idx, end
    if best_t is None:
        return None
    backup_end = now + tasks[best_t].work * w[candidate_worker]
    remaining = best_end - now
    if remaining <= 0:
        return None
    if (best_end - now) >= threshold * (backup_end - now):
        return best_t
    return None


def random_failures(
    platform: StarPlatform,
    horizon: float,
    rate: float,
    rng: SeedLike = None,
) -> List[FailureEvent]:
    """Sample fail-stop events: each worker dies before ``horizon`` with
    probability ``rate``, at a uniform time."""
    if not 0 <= rate <= 1:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    check_nonnegative(horizon, "horizon")
    gen = make_rng(rng)
    events = []
    for i in range(platform.size):
        if gen.random() < rate:
            events.append(FailureEvent(worker=i, time=float(gen.uniform(0, horizon))))
    return events
