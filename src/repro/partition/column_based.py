"""Optimal column-based PERI-SUM partitioning (§4.1.2).

Column-based partitions split the unit square into vertical columns of
full height; each column is then sliced horizontally, one rectangle per
processor assigned to it.  If column ``c`` has width :math:`w_c` (equal
to the sum of its rectangles' areas) and holds :math:`k_c` rectangles,
its rectangles have half-perimeters :math:`w_c + h_r` with
:math:`\\sum_r h_r = 1`, so the column contributes
:math:`k_c w_c + 1` and the total is

.. math:: \\hat C = \\sum_c (k_c w_c) + \\#\\text{columns}.

Beaumont–Boudet–Rastello–Robert (2002) prove that assigning the areas
*sorted* to *contiguous* groups is optimal among column-based layouts
and give a guaranteed heuristic; here we run the exact :math:`O(p^2)`
dynamic program over contiguous groups of the sorted areas, which is
therefore at least as good as the published heuristic and inherits its
guarantee

.. math:: \\hat C \\le 1 + \\frac{5}{4} LB \\le \\frac{7}{4} LB,
          \\qquad LB = 2\\sum_i \\sqrt{a_i}.

(Why sorted-contiguous is optimal: swapping two rectangles between a
wide and a narrow column so that the larger area lands in the wider
column never increases :math:`\\sum k_c w_c`; iterating yields a sorted
contiguous arrangement.)
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.partition.rectangle import Partition, Rectangle, stack_column
from repro.registry import register
from repro.util.validation import check_probability_vector


def column_groups(areas: Sequence[float]) -> List[List[int]]:
    """Optimal contiguous grouping of the (sorted) areas into columns.

    Returns groups of *original* indices, sorted by ascending area
    within the DP's non-decreasing order.  The DP state is
    ``f(k) = min cost of packing the k smallest areas``, with
    transition over the size of the last column:

    ``f(k) = min_{0 <= j < k}  f(j) + (k - j) * (S_k - S_j) + 1``

    where ``S`` are prefix sums of the sorted areas.  ``O(p^2)`` time.
    """
    a = check_probability_vector(areas, "areas")
    p = a.size
    order = np.argsort(a, kind="stable")
    sorted_a = a[order]
    prefix = np.concatenate([[0.0], np.cumsum(sorted_a)])

    INF = float("inf")
    f = np.full(p + 1, INF)
    f[0] = 0.0
    choice = np.zeros(p + 1, dtype=int)
    for k in range(1, p + 1):
        # vectorised transition over j = 0..k-1
        j = np.arange(k)
        cand = f[j] + (k - j) * (prefix[k] - prefix[j]) + 1.0
        best = int(np.argmin(cand))
        f[k] = float(cand[best])
        choice[k] = best

    groups: List[List[int]] = []
    k = p
    while k > 0:
        j = int(choice[k])
        groups.append([int(order[t]) for t in range(j, k)])
        k = j
    groups.reverse()
    return groups


@register(
    "partitioner",
    "peri-sum",
    summary="Column-based DP minimising the sum of half-perimeters (§4.1.2)",
    section="§4.1.2",
)
def peri_sum_partition(areas: Sequence[float]) -> Partition:
    """Partition the unit square into rectangles of the given ``areas``.

    ``areas`` must sum to 1 (normalized speeds).  Returns a validated
    :class:`Partition` whose rectangle ``owner`` fields point back to
    the input indices, so ``partition.by_owner()[i]`` is processor *i*'s
    chunk.
    """
    a = check_probability_vector(areas, "areas")
    groups = column_groups(a)
    rects: List[Rectangle] = []
    x = 0.0
    for g_idx, group in enumerate(groups):
        width = float(sum(a[i] for i in group))
        # Snap the final column to the right edge to kill float drift.
        if g_idx == len(groups) - 1:
            width = 1.0 - x
        rects.extend(
            stack_column(x, width, [a[i] for i in group], group)
        )
        x += width
    part = Partition(tuple(rects), side=1.0)
    part.validate(expected_areas=a)
    return part


def peri_sum_cost(areas: Sequence[float]) -> float:
    """The optimal column-based PERI-SUM objective, without geometry.

    Equals ``peri_sum_partition(areas).sum_half_perimeters`` (tested),
    but runs the DP only — used inside the figure-4 sweeps where the
    geometry itself is not needed.
    """
    a = check_probability_vector(areas, "areas")
    p = a.size
    sorted_a = np.sort(a)
    prefix = np.concatenate([[0.0], np.cumsum(sorted_a)])
    INF = float("inf")
    f = np.full(p + 1, INF)
    f[0] = 0.0
    for k in range(1, p + 1):
        j = np.arange(k)
        cand = f[j] + (k - j) * (prefix[k] - prefix[j]) + 1.0
        f[k] = float(cand.min())
    return float(f[p])
