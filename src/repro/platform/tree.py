"""Multi-level tree platforms — the generalisation of the star.

The non-linear DLT literature the paper critiques works on "single
level tree networks" ([33], [34]); a star is exactly that.  This module
provides the general rooted tree: every node carries a processor
(compute speed) and a link to its parent (bandwidth); the master sits
at the root and also computes unless given speed ``None``.

The companion solver (:mod:`repro.dlt.tree_solver`) schedules divisible
loads on these trees with store-and-forward relaying, and the tests
confirm that a depth-1 tree reproduces the star results exactly — the
library's internal consistency check between the two platform models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.util.validation import check_positive


@dataclass
class TreeNode:
    """One node of the tree platform.

    ``speed`` in work units/time; ``bandwidth`` is the incoming link
    from the parent (ignored for the root).  Children are added via
    :meth:`add_child` so parent pointers stay consistent.
    """

    speed: float
    bandwidth: float = 1.0
    name: str = "node"
    children: List["TreeNode"] = field(default_factory=list)
    parent: Optional["TreeNode"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.speed, "speed")
        check_positive(self.bandwidth, "bandwidth")

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.speed

    @property
    def comm_time(self) -> float:
        """Seconds per data unit on the link from the parent."""
        return 1.0 / self.bandwidth

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def add_child(
        self, speed: float, bandwidth: float = 1.0, name: str | None = None
    ) -> "TreeNode":
        """Attach and return a new child node."""
        child = TreeNode(
            speed=speed,
            bandwidth=bandwidth,
            name=name or f"{self.name}.{len(self.children) + 1}",
        )
        child.parent = self
        self.children.append(child)
        return child

    def iter_subtree(self) -> Iterator["TreeNode"]:
        """Pre-order traversal of this node's subtree."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    @property
    def subtree_size(self) -> int:
        return sum(1 for _ in self.iter_subtree())

    @property
    def depth(self) -> int:
        """Edges from the root to this node."""
        d, node = 0, self
        while node.parent is not None:
            d += 1
            node = node.parent
        return d

    @property
    def height(self) -> int:
        """Edges on the longest downward path from this node."""
        if self.is_leaf:
            return 0
        return 1 + max(c.height for c in self.children)

    @property
    def total_speed(self) -> float:
        """Aggregate compute speed of the subtree."""
        return sum(n.speed for n in self.iter_subtree())


class TreePlatform:
    """A rooted tree of processors with per-link bandwidths."""

    def __init__(self, root: TreeNode) -> None:
        if root.parent is not None:
            raise ValueError("the platform root must have no parent")
        self.root = root

    @classmethod
    def star(
        cls,
        speeds: Sequence[float],
        bandwidths: Sequence[float] | float = 1.0,
        master_speed: float = 1e-12,
    ) -> "TreePlatform":
        """A depth-1 tree ≡ the paper's star (master barely computes).

        ``master_speed`` defaults to negligible so comparisons against
        :class:`repro.platform.star.StarPlatform` (whose master does not
        compute) line up; pass a real speed for a computing master.
        """
        root = TreeNode(speed=master_speed, name="master")
        if not hasattr(bandwidths, "__len__"):
            bandwidths = [float(bandwidths)] * len(speeds)
        if len(bandwidths) != len(speeds):
            raise ValueError("speeds and bandwidths must have equal length")
        for i, (s, b) in enumerate(zip(speeds, bandwidths)):
            root.add_child(speed=float(s), bandwidth=float(b), name=f"P{i + 1}")
        return cls(root)

    @classmethod
    def balanced(
        cls,
        depth: int,
        fanout: int,
        speed: float = 1.0,
        bandwidth: float = 1.0,
    ) -> "TreePlatform":
        """A homogeneous complete ``fanout``-ary tree of given depth."""
        if depth < 0 or fanout < 1:
            raise ValueError("need depth >= 0 and fanout >= 1")
        root = TreeNode(speed=speed, bandwidth=bandwidth, name="n")

        def grow(node: TreeNode, remaining: int) -> None:
            if remaining == 0:
                return
            for _ in range(fanout):
                grow(node.add_child(speed=speed, bandwidth=bandwidth), remaining - 1)

        grow(root, depth)
        return cls(root)

    @property
    def size(self) -> int:
        return self.root.subtree_size

    @property
    def height(self) -> int:
        return self.root.height

    def nodes(self) -> List[TreeNode]:
        return list(self.root.iter_subtree())

    def leaves(self) -> List[TreeNode]:
        return [n for n in self.nodes() if n.is_leaf]

    @property
    def total_speed(self) -> float:
        return self.root.total_speed

    def describe(self) -> str:
        lines = [f"TreePlatform(size={self.size}, height={self.height})"]
        for node in self.root.iter_subtree():
            pad = "  " * (node.depth + 1)
            link = "" if node.is_root else f", link bw={node.bandwidth:.3g}"
            lines.append(f"{pad}{node.name}: speed={node.speed:.3g}{link}")
        return "\n".join(lines)
