"""Chained MapReduce jobs — the paper's §2 option (ii).

§2 offers two escapes for non-linear workloads: (i) inflate the data
(replication, the route this paper analyses) or (ii) "decompose the
overall operation using a long sequence of MapReduce operations, such
as proposed in [25]" (Berlińska & Drozdowski).  This module implements
the sequencing machinery — the output of one job feeds the next job's
map — plus the canonical two-pass matrix multiplication:

* **pass 1 (join)**: records of A keyed by ``k`` meet records of B
  keyed by ``k``; the reducer emits one partial product per compatible
  ``(i, j)`` pair — shuffle is only :math:`2N^2` *input* values, but
  the pass *outputs* :math:`N^3` partials;
* **pass 2 (aggregate)**: partial products shuffle by ``(i, j)`` and
  sum — an :math:`N^3`-record shuffle.

The lesson, measurable on the metered engine: sequencing moves the
cubic blow-up from the *input preparation* (§1.1's prepared dataset)
into an *intermediate shuffle* — the volume does not disappear, exactly
as the no-free-lunch analysis predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, List, Sequence

import numpy as np

from repro.mapreduce.engine import (
    KV,
    MapReduceEngine,
    MapReduceJob,
    MapReduceMetrics,
)


@dataclass(frozen=True)
class ChainResult:
    """Outputs and metrics of a job chain."""

    outputs: tuple
    metrics: tuple[MapReduceMetrics, ...]

    @property
    def total_shuffle_volume(self) -> float:
        return float(sum(m.shuffle_volume for m in self.metrics))

    @property
    def final_output(self):
        return self.outputs[-1]


def run_chain(
    jobs: Sequence[MapReduceJob],
    first_inputs: Sequence[Any],
    adapters: Sequence | None = None,
) -> ChainResult:
    """Run jobs in sequence; each stage's output feeds the next map.

    ``adapters[i]`` converts stage *i*'s output dict into the record
    list for stage *i+1* (default: ``list(output.items())``).
    """
    if not jobs:
        raise ValueError("need at least one job")
    if adapters is None:
        adapters = [None] * (len(jobs) - 1)
    if len(adapters) != len(jobs) - 1:
        raise ValueError(
            f"need {len(jobs) - 1} adapters for {len(jobs)} jobs"
        )
    engine = MapReduceEngine()
    outputs = []
    metrics = []
    records: Sequence[Any] = first_inputs
    for stage, job in enumerate(jobs):
        out, m = engine.run_with_metrics(job, records)
        outputs.append(out)
        metrics.append(m)
        if stage < len(jobs) - 1:
            adapter = adapters[stage]
            records = (
                list(out.items()) if adapter is None else adapter(out)
            )
    return ChainResult(outputs=tuple(outputs), metrics=tuple(metrics))


def two_pass_matmul_jobs(A: np.ndarray, B: np.ndarray):
    """The [25]-style two-pass matrix product.

    Returns ``(jobs, inputs, adapters)`` for :func:`run_chain`; the
    final output maps ``(i, j)`` to :math:`c_{ij}`.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n):
        raise ValueError("square matrices of equal order required")

    # pass-1 input: one record per matrix entry
    inputs: List[tuple] = [
        ("A", i, k, float(A[i, k])) for i in range(n) for k in range(n)
    ] + [("B", k, j, float(B[k, j])) for k in range(n) for j in range(n)]

    def map1(rec) -> Iterable[KV]:
        which, r, c, v = rec
        if which == "A":
            yield c, ("A", r, v)  # key by k
        else:
            yield r, ("B", c, v)

    def reduce1(key: Hashable, values: List[Any]) -> Iterable[KV]:
        a_vals = [(i, v) for which, i, v in values if which == "A"]
        b_vals = [(j, v) for which, j, v in values if which == "B"]
        partials = [
            ((i, j), av * bv) for i, av in a_vals for j, bv in b_vals
        ]
        yield ("partials", key), partials

    job1 = MapReduceJob(
        map_fn=map1,
        reduce_fn=reduce1,
        n_reducers=max(1, n),
        name="matmul-pass1-join",
    )

    def adapter(out: dict) -> List[tuple]:
        # flatten every k-group's partial list into pass-2 records
        records = []
        for (_tag, _k), partials in out.items():
            records.extend(partials)
        return records

    def map2(rec) -> Iterable[KV]:
        (i, j), v = rec
        yield (i, j), v

    def reduce2(key: Hashable, values: List[float]) -> Iterable[KV]:
        yield key, float(np.sum(values))

    job2 = MapReduceJob(
        map_fn=map2,
        reduce_fn=reduce2,
        n_reducers=max(1, n),
        name="matmul-pass2-sum",
    )
    return [job1, job2], inputs, [adapter]


def two_pass_matmul(A: np.ndarray, B: np.ndarray) -> tuple[np.ndarray, ChainResult]:
    """Run the two-pass product; returns ``(C, chain_result)``."""
    jobs, inputs, adapters = two_pass_matmul_jobs(A, B)
    chain = run_chain(jobs, inputs, adapters)
    n = int(np.sqrt(len(chain.final_output)))
    C = np.empty((n, n))
    for (i, j), v in chain.final_output.items():
        C[i, j] = v
    return C, chain
