"""Tests for repro.experiments.stats."""

import numpy as np
import pytest

from repro.experiments.stats import (
    paired_speedup_summary,
    significantly_greater,
    summarize,
)


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.ci_low < 2.0 < s.ci_high

    def test_ci_contains_truth_usually(self):
        """Coverage sanity: ~95% of CIs contain the true mean."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 200
        for _ in range(trials):
            sample = rng.normal(5.0, 2.0, size=30)
            s = summarize(sample, confidence=0.95)
            if s.ci_low <= 5.0 <= s.ci_high:
                hits += 1
        assert hits / trials > 0.88

    def test_single_observation_zero_width(self):
        s = summarize([4.2])
        assert s.half_width == 0.0
        assert s.mean == 4.2

    def test_constant_sample_zero_width(self):
        s = summarize([3.0, 3.0, 3.0])
        assert s.half_width == 0.0

    def test_narrows_with_n(self):
        rng = np.random.default_rng(1)
        small = summarize(rng.normal(size=10))
        large = summarize(rng.normal(size=1000))
        assert large.half_width < small.half_width

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)


class TestSignificance:
    def test_clear_separation_detected(self):
        rng = np.random.default_rng(2)
        a = rng.normal(10.0, 1.0, 50)
        b = rng.normal(1.0, 1.0, 50)
        sig, p = significantly_greater(a, b)
        assert sig
        assert p < 1e-6

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0.0, 1.0, 50)
        b = rng.normal(0.0, 1.0, 50)
        sig, p = significantly_greater(a, b)
        assert not sig

    def test_wrong_direction_not_significant(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0.0, 1.0, 50)
        b = rng.normal(5.0, 1.0, 50)
        sig, p = significantly_greater(a, b)
        assert not sig
        assert p > 0.5

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            significantly_greater([1.0], [1.0, 2.0])


class TestPairedSpeedup:
    def test_ratio_summary(self):
        base = np.array([10.0, 12.0, 8.0])
        improved = np.array([5.0, 6.0, 4.0])
        s = paired_speedup_summary(base, improved)
        assert s.mean == pytest.approx(2.0)

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            paired_speedup_summary([1.0, 2.0], [1.0])

    def test_positive_denominator_required(self):
        with pytest.raises(ValueError):
            paired_speedup_summary([1.0], [0.0])

    def test_figure4_ordering_is_significant(self):
        """The het < hom/k ordering at p=40 is not seed luck."""
        from repro.experiments.figure4 import run_figure4_point
        from repro.util.rng import spawn_rngs

        rngs = spawn_rngs(7, 12)
        het, homk = [], []
        for rng in rngs:
            point = run_figure4_point(40, "uniform", rng)
            het.append(point.ratios["het"])
            homk.append(point.ratios["hom/k"])
        sig, p = significantly_greater(homk, het)
        assert sig and p < 1e-6
