"""Vectorised batch planning: miss → group → kernel → result.

The Figure-4 / ρ-sweep protocols replan the *same* closed-form
strategies across hundreds of (platform, N) points.  Planning each
request alone wastes the structure a batch carries: requests that share
a strategy (and its effective parameters) can be planned together by a
single NumPy pass — one partitioner run per distinct speed vector, one
demand-driven schedule per distinct platform, stacked cycle-time and
finish-time arrays for everything else.

This module is the routing layer between
:meth:`repro.core.session.PlannerSession.plan_batch` and the
strategies' optional batched kernels:

1. **group** — cache misses are grouped by ``(strategy, effective
   params)``; the effective params are the request params filtered to
   what the strategy accepts (:func:`~repro.core.pipeline.supported_kwargs`)
   and frozen with the same machinery the plan cache uses, so two
   requests that would share a cache entry also share a group;
2. **kernel** — groups of two or more requests whose strategy class
   implements the optional batched protocol::

       def plan_batch(self, platforms, Ns) -> list[StrategyResult]

   travel through one :func:`plan_request_group` call (one backend
   item, one strategy instance, one vectorised pass);
3. **fallback** — singleton groups and strategies without a batched
   kernel fall back to the scalar :func:`~repro.core.pipeline.plan_request`,
   so plugins never have to implement ``plan_batch`` to participate in
   batches.

Equivalence contract: a batched kernel must return plans equal to the
scalar path — bit-identical where the kernels share the scalar op
order (the ``het`` finish times and communication volumes, the ``hom``
closed-form path), and within ``rtol = 1e-12`` otherwise (the shared
demand-driven schedule, whose task *counts* are scale-invariant but
recomputed float sums may differ in the last ulp).  Cached entries
produced by either path are therefore interchangeable; the tier-1
equivalence suite (``tests/core/test_vectorize.py``) enforces this for
every built-in strategy and backend.

The contract extends to *plan storage*: the session writes every
batch-planned result through its :class:`~repro.core.cache.PlanStore`
under the same content key the scalar path uses (grouping reuses the
cache's :func:`~repro.core.cache.frozen_effective_params`), so a
tiered or sqlite-backed store filled by a vectorised sweep replays
identically into a scalar one and vice versa — batched fills
write through every tier exactly like scalar fills do.

:func:`plan_request_group` is module-level and its :class:`VectorGroup`
argument carries only picklable :class:`~repro.core.pipeline.PlanRequest`
objects, so the ``process`` backend can ship whole groups to workers
exactly like it ships scalar requests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Sequence, Tuple

from repro import registry
from repro.core.cache import frozen_effective_params
from repro.core.pipeline import (
    PlanRequest,
    PlanResult,
    plan_request,
    supported_kwargs,
)


def batch_capable(factory: Callable[..., Any]) -> bool:
    """True when ``factory`` (a strategy class) offers ``plan_batch``.

    The batched protocol is detected on the factory itself — for the
    dataclass strategies that means the unbound method — so grouping
    never has to instantiate a strategy just to probe it.  Function
    factories (whose product may or may not have a kernel) report
    ``False`` and plan scalar, which is always correct.
    """
    return callable(getattr(factory, "plan_batch", None))


def solve_dlt_batch(
    solver: str,
    platforms: Sequence[Any],
    Ns: Sequence[float],
    **params: Any,
) -> List[Any]:
    """Route a batch of DLT instances through a solver's batch kernel.

    The DLT-solver counterpart of the strategy grouping seam: solvers
    registered under ``dlt_solver`` may attach a ``plan_batch`` function
    attribute (the §2 nonlinear solvers do), detected with the same
    :func:`batch_capable` probe.  Batches of two or more instances go
    through one stacked kernel call; singletons and plain solvers run
    the scalar factory per instance — always correct, never required to
    implement the kernel.  The vectorisation equivalence contract
    (rtol ``1e-12``) applies to results from either path.
    """
    if len(platforms) != len(Ns):
        raise ValueError(
            f"{len(platforms)} platforms but {len(Ns)} load sizes"
        )
    factory = registry.get("dlt_solver", solver)
    if len(platforms) > 1 and batch_capable(factory):
        return factory.plan_batch(platforms, Ns, **params)
    return [
        factory(platform, N, **params)
        for platform, N in zip(platforms, Ns)
    ]


def group_key(
    request: PlanRequest, factory: Callable[..., Any]
) -> Hashable:
    """The key under which a request joins a vector group.

    Strategy name × :func:`~repro.core.cache.frozen_effective_params` —
    literally the cache key's parameter component, so an ignored
    parameter (``imbalance_target`` on ``het``) never splits a group
    and requests that share a cache entry always share a group.
    """
    return (request.strategy, frozen_effective_params(request, factory))


@dataclass(frozen=True)
class VectorGroup:
    """A batch slice that one strategy instance plans in one pass.

    Every request shares ``strategy`` and the same effective params, so
    a single ``factory(**kwargs)`` instance serves the whole group.
    Picklable (requests are), hence shippable to process workers.
    """

    strategy: str
    requests: Tuple[PlanRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)


def plan_request_group(group: VectorGroup) -> List[PlanResult]:
    """Plan one vector group through its strategy's batched kernel.

    One strategy instance, one ``plan_batch`` call; the group's
    wall-clock time is split evenly across its results' ``elapsed_s``
    (per-request timing is meaningless inside a fused kernel, but the
    *sum* over a batch stays comparable with the scalar path).
    """
    factory = registry.get("strategy", group.strategy)
    kwargs = supported_kwargs(factory, group.requests[0].params)
    start = time.perf_counter()
    strategy = factory(**kwargs)
    plans = strategy.plan_batch(
        [req.platform for req in group.requests],
        [req.N for req in group.requests],
    )
    elapsed = time.perf_counter() - start
    if len(plans) != len(group.requests):
        raise RuntimeError(
            f"strategy {group.strategy!r} returned {len(plans)} plans "
            f"for a batch of {len(group.requests)} requests"
        )
    share = elapsed / len(group.requests)
    return [
        PlanResult(request=req, plan=plan, elapsed_s=share)
        for req, plan in zip(group.requests, plans)
    ]


def plan_work_item(
    item: "VectorGroup | PlanRequest",
) -> "List[PlanResult] | PlanResult":
    """Plan one backend item — a vector group or a scalar request.

    The single dispatch function :func:`plan_batch_requests` maps over
    a mixed item list, so concurrent backends interleave scalar
    fallbacks with vector groups instead of waiting on a per-kind
    barrier.  Module-level and picklable, like both item types.
    """
    if isinstance(item, VectorGroup):
        return plan_request_group(item)
    return plan_request(item)


def plan_batch_requests(
    requests: Sequence[PlanRequest], backend: Any = None
) -> List[PlanResult]:
    """Plan a batch, vectorising where strategies allow it.

    Groups ``requests`` by :func:`group_key`, routes groups of two or
    more batch-capable requests through :func:`plan_request_group` and
    everything else through the scalar
    :func:`~repro.core.pipeline.plan_request`.  Both kinds of work
    travel through one ``backend.map`` call over a mixed item list
    when a backend is given (each vector group is a single item), so
    vectorisation composes with ``serial`` / ``threaded`` / ``process``
    routing instead of replacing it — and scalar fallbacks overlap
    with kernel work on concurrent backends.  Results align with
    ``requests`` by index.
    """
    results: List[PlanResult | None] = [None] * len(requests)
    grouped: dict[Hashable, List[int]] = {}
    scalar_idx: List[int] = []
    for i, req in enumerate(requests):
        factory = registry.get("strategy", req.strategy)
        if batch_capable(factory):
            grouped.setdefault(group_key(req, factory), []).append(i)
        else:
            scalar_idx.append(i)

    vector_groups: List[Tuple[List[int], VectorGroup]] = []
    for idxs in grouped.values():
        if len(idxs) < 2:
            # a group of one gains nothing from a kernel; the scalar
            # path keeps single plans on the exact historical codepath
            scalar_idx.extend(idxs)
            continue
        vector_groups.append(
            (
                idxs,
                VectorGroup(
                    strategy=requests[idxs[0]].strategy,
                    requests=tuple(requests[i] for i in idxs),
                ),
            )
        )
    scalar_idx.sort()

    items: List[Any] = [group for _, group in vector_groups]
    items += [requests[i] for i in scalar_idx]
    if backend is not None:
        outputs = backend.map(plan_work_item, items)
    else:
        outputs = [plan_work_item(item) for item in items]

    for (idxs, _), group_results in zip(vector_groups, outputs):
        for i, result in zip(idxs, group_results):
            results[i] = result
    for i, result in zip(scalar_idx, outputs[len(vector_groups):]):
        results[i] = result
    return results  # type: ignore[return-value]
