"""Section 3 — sorting as an *almost* divisible load.

Sorting ``N`` keys costs :math:`W = N \\log N`.  Splitting into ``p``
lists of :math:`N/p` and sorting them in parallel performs

.. math:: W_\\text{partial} = p \\frac{N}{p} \\log\\frac{N}{p}
          = N\\log N - N \\log p,

so the residue is :math:`\\log p / \\log N`, which vanishes for large
``N`` — unlike the :math:`1 - 1/P^{\\alpha-1}` residue of §2.  The catch:
independent partial sorts don't compose into a sorted whole, so a
*preprocessing* phase (sample sort, §3.1) must first split the keys into
range-disjoint buckets.  These functions give the cost accounting; the
executable algorithm lives in :mod:`repro.sorting`.

All logarithms are base 2 (comparison sorts); the residue ratio is
base-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_integer, check_positive


def sorting_work(N: float) -> float:
    """Comparison-sort work :math:`N \\log_2 N` (0 for ``N <= 1``)."""
    check_positive(N, "N")
    if N <= 1:
        return 0.0
    return float(N * np.log2(N))


def sorting_partial_work(N: float, p: int) -> float:
    """Work done by ``p`` independent sorts of ``N/p`` keys each."""
    check_positive(N, "N")
    check_integer(p, "p", minimum=1)
    chunk = N / p
    return float(p * sorting_work(chunk)) if chunk > 1 else 0.0


def sorting_residual_fraction(N: float, p: int) -> float:
    """The §3.1 residue :math:`\\log p / \\log N`.

    The fraction of the total sorting work that cannot be delegated to
    the embarrassingly parallel phase.  Tends to 0 as ``N`` grows with
    ``p`` fixed — sorting is *amenable* to DLT.
    """
    check_positive(N, "N")
    check_integer(p, "p", minimum=1)
    if N <= 1:
        return 0.0
    return float(np.log2(p) / np.log2(N))


def recommended_oversampling(N: float) -> int:
    """The paper's oversampling ratio :math:`s = (\\log_2 N)^2` (§3.1).

    With this choice the Step-1 sample sort (:math:`sp\\log(sp)`) stays
    dominated by Step 2's :math:`N \\log p` and the max-bucket bound of
    Theorem B.4 holds with high probability.
    """
    check_positive(N, "N")
    if N <= 2:
        return 1
    return max(1, int(round(np.log2(N) ** 2)))


@dataclass(frozen=True)
class SampleSortCosts:
    """Cost breakdown of the three sample-sort phases (§3.1).

    Times are in abstract work units on a unit-speed machine; the master
    executes Steps 1–2, workers execute Step 3 in parallel.
    """

    N: int
    p: int
    s: int
    #: Step 1: sort the sample of ``s*p`` keys on the master
    step1_sample_sort: float
    #: Step 2: bucket each key by binary search over ``p-1`` splitters
    step2_bucketing: float
    #: Step 3 (per worker, expected): sort ``N/p`` keys
    step3_expected_local_sort: float
    #: Step 3 bound with the Theorem-B.4 max bucket size
    step3_whp_bound: float
    #: parallel makespan estimate: steps 1+2 on master, then max step 3
    makespan_estimate: float
    #: total work of a sequential sort, for speedup computation
    sequential_work: float

    @property
    def speedup_estimate(self) -> float:
        """Sequential work over estimated parallel makespan."""
        if self.makespan_estimate == 0:
            return 1.0
        return self.sequential_work / self.makespan_estimate

    @property
    def preprocessing_fraction(self) -> float:
        """Share of the makespan spent in the sequential Steps 1–2."""
        pre = self.step1_sample_sort + self.step2_bucketing
        return pre / self.makespan_estimate if self.makespan_estimate else 0.0


def theorem_b4_epsilon(N: float) -> float:
    """The relative overflow :math:`(1/\\log N)^{1/3}` of Theorem B.4.

    With oversampling :math:`s = \\log^2 N`, the largest bucket satisfies
    :math:`\\text{MaxSize} \\le (N/p)(1 + \\epsilon)` with probability at
    least :math:`1 - N^{-1/3}` (Blelloch et al. [40], as invoked in §3.1).
    Natural log, following the source's statement.
    """
    check_positive(N, "N")
    if N <= np.e:
        return 1.0
    return float((1.0 / np.log(N)) ** (1.0 / 3.0))


def theorem_b4_max_bucket_bound(N: int, p: int) -> float:
    """High-probability bound on the largest bucket: ``(N/p)(1+eps)``."""
    check_integer(N, "N", minimum=1)
    check_integer(p, "p", minimum=1)
    return (N / p) * (1.0 + theorem_b4_epsilon(N))


def sample_sort_cost_breakdown(
    N: int, p: int, s: int | None = None
) -> SampleSortCosts:
    """Analytic cost model of sample sort (§3.1), all three steps.

    ``s`` defaults to the paper's :math:`\\log^2 N`.  Step 3 uses both
    the expected bucket size ``N/p`` and the Theorem-B.4 w.h.p. bound;
    the makespan estimate uses the expected size (the paper's
    "optimal on p processors with high probability" statement).
    """
    check_integer(N, "N", minimum=2)
    check_integer(p, "p", minimum=1)
    if s is None:
        s = recommended_oversampling(N)
    s = check_integer(s, "s", minimum=1)
    sample = s * p
    step1 = sorting_work(sample) if sample > 1 else 0.0
    step2 = float(N * np.log2(max(p, 2))) if p > 1 else 0.0
    expected_bucket = N / p
    step3_exp = sorting_work(expected_bucket) if expected_bucket > 1 else 0.0
    whp_bucket = theorem_b4_max_bucket_bound(N, p)
    step3_whp = sorting_work(whp_bucket) if whp_bucket > 1 else 0.0
    makespan = step1 + step2 + step3_exp
    return SampleSortCosts(
        N=N,
        p=p,
        s=s,
        step1_sample_sort=step1,
        step2_bucketing=step2,
        step3_expected_local_sort=step3_exp,
        step3_whp_bound=step3_whp,
        makespan_estimate=makespan,
        sequential_work=sorting_work(N),
    )


def heterogeneous_bucket_fractions(speeds: np.ndarray) -> np.ndarray:
    """Target bucket-size fractions for heterogeneous workers (§3.2).

    Worker :math:`P_i` (cycle time :math:`w_i`) should receive a bucket
    proportional to its speed :math:`1/w_i`, i.e. fraction
    :math:`(1/w_i) / \\sum_k (1/w_k)`.  (For :math:`N\\log N` costs this
    equalises leading-order finish times; the :math:`\\log` factor's
    variation across buckets is second-order, as in the paper.)
    """
    speeds = np.asarray(speeds, dtype=float)
    if speeds.ndim != 1 or speeds.size == 0 or np.any(speeds <= 0):
        raise ValueError("speeds must be a non-empty positive 1-D array")
    return speeds / speeds.sum()
