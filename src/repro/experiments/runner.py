"""Generic sweep machinery shared by the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.util.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class SweepResult:
    """Per-point mean/std over independent trials."""

    x_values: tuple
    means: np.ndarray
    stds: np.ndarray
    trials: int

    def as_series(self) -> dict[str, np.ndarray]:
        return {"mean": self.means, "std": self.stds}


def sweep_mean_std(
    fn: Callable[[object, np.random.Generator], float],
    x_values: Sequence,
    trials: int,
    seed: SeedLike = 0,
) -> SweepResult:
    """Evaluate ``fn(x, rng)`` ``trials`` times per x; report mean ± std.

    Seeding: trial *t* at point *x_i* gets stream ``spawn(seed)[i*T+t]``,
    so results are independent of evaluation order and reproducible.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    x_values = tuple(x_values)
    rngs = spawn_rngs(seed, len(x_values) * trials)
    means = np.empty(len(x_values))
    stds = np.empty(len(x_values))
    for i, x in enumerate(x_values):
        vals = np.array(
            [fn(x, rngs[i * trials + t]) for t in range(trials)], dtype=float
        )
        means[i] = vals.mean()
        stds[i] = vals.std(ddof=0)
    return SweepResult(x_values=x_values, means=means, stds=stds, trials=trials)
