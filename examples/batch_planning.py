#!/usr/bin/env python3
"""Batch planning walkthrough: the vectorised miss → group → kernel path.

The companion to ``examples/session_tour.py``: where the tour shows the
session API surface, this walks what happens *inside* ``plan_batch``
when a sweep-shaped workload (few platforms × many problem sizes ×
closed-form strategies) hits the vectorised path:

1. build a ρ-sweep-style batch and plan it both ways — scalar and
   vectorised — through cacheless sessions, timing each;
2. verify the equivalence contract (plans agree to ``rtol = 1e-12``;
   here they are bit-identical);
3. show the grouping machinery itself (`repro.core.vectorize`);
4. show that the plan cache is path-agnostic: entries warmed by the
   vectorised path serve the scalar path, and vice versa.

Run: ``python examples/batch_planning.py``
"""

import time

import numpy as np

from repro.core.cache import PlanCache
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.core.vectorize import batch_capable, group_key, plan_batch_requests
from repro import registry
from repro.platform.generators import make_speeds
from repro.platform.star import StarPlatform


def build_batch(n_platforms=4, p=48, n_sizes=30, seed=42):
    """Few platforms × many N × both closed-form strategies."""
    rng = np.random.default_rng(seed)
    platforms = [
        StarPlatform.from_speeds(make_speeds("uniform", p, rng))
        for _ in range(n_platforms)
    ]
    sizes = [float(1_000 + 300 * i) for i in range(n_sizes)]
    return [
        PlanRequest(platform=platform, N=size, strategy=strategy)
        for platform in platforms
        for size in sizes
        for strategy in ("hom", "het")
    ]


def main() -> None:
    requests = build_batch()
    print(f"batch: {len(requests)} requests "
          f"(4 platforms x 30 sizes x hom/het)\n")

    # --- 1. scalar vs vectorised, timed ------------------------------
    with PlannerSession(cache=False, vectorize=False) as scalar:
        start = time.perf_counter()
        scalar_results = scalar.plan_batch(requests)
        scalar_s = time.perf_counter() - start
    with PlannerSession(cache=False, vectorize=True) as vectorised:
        start = time.perf_counter()
        vector_results = vectorised.plan_batch(requests)
        vector_s = time.perf_counter() - start
    print(f"scalar path:     {scalar_s * 1e3:8.1f} ms")
    print(f"vectorised path: {vector_s * 1e3:8.1f} ms "
          f"({scalar_s / vector_s:.1f}x faster)\n")

    # --- 2. the equivalence contract ---------------------------------
    identical = sum(
        a.comm_volume == b.comm_volume
        and np.array_equal(a.plan.finish_times, b.plan.finish_times)
        for a, b in zip(scalar_results, vector_results)
    )
    assert all(
        np.isclose(a.comm_volume, b.comm_volume, rtol=1e-12, atol=0)
        for a, b in zip(scalar_results, vector_results)
    )
    print(f"equivalence: {identical}/{len(requests)} plans bit-identical "
          "(contract: rtol <= 1e-12)\n")

    # --- 3. how grouping works ---------------------------------------
    # Misses group by (strategy, effective params); each group becomes
    # one kernel call.  'het' ignores imbalance_target, so these two
    # land in the SAME group (params are filtered before keying):
    factory = registry.get("strategy", "het")
    key_a = group_key(
        PlanRequest(platform=requests[0].platform, N=1_000.0, strategy="het",
                    params={"imbalance_target": 0.01}),
        factory,
    )
    key_b = group_key(
        PlanRequest(platform=requests[0].platform, N=2_000.0, strategy="het",
                    params={"imbalance_target": 0.75}),
        factory,
    )
    print(f"het is batch-capable: {batch_capable(factory)}")
    print(f"ignored params share a group: {key_a == key_b}")
    # plan_batch_requests is the session-free entry point (no cache):
    trio = plan_batch_requests(requests[:3])
    print(f"plan_batch_requests -> {[r.strategy for r in trio]}\n")

    # --- 4. the cache is path-agnostic -------------------------------
    shared = PlanCache()
    with PlannerSession(cache=shared, vectorize=True) as warm:
        warm.plan_batch(requests)
    with PlannerSession(cache=shared, vectorize=False) as reader:
        served = reader.plan_batch(requests)
    print(f"entries warmed vectorised, read scalar: "
          f"{sum(r.cached for r in served)}/{len(served)} hits")
    print(shared.stats.render())


if __name__ == "__main__":
    main()
