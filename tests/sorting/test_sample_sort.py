"""Tests for repro.sorting.sample_sort — the executable §3 pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.star import StarPlatform
from repro.sorting.sample_sort import sample_sort, sequential_sort_work


class TestCorrectness:
    def test_sorts_uniform_input(self, rng, homogeneous_platform):
        keys = rng.random(10_000)
        res = sample_sort(keys, homogeneous_platform, rng=rng)
        assert np.array_equal(res.sorted_keys, np.sort(keys))

    def test_sorts_with_duplicates(self, rng, homogeneous_platform):
        keys = rng.integers(0, 50, 5000).astype(float)
        res = sample_sort(keys, homogeneous_platform, rng=rng)
        assert np.array_equal(res.sorted_keys, np.sort(keys))

    def test_sorts_already_sorted(self, rng, homogeneous_platform):
        keys = np.arange(1000.0)
        res = sample_sort(keys, homogeneous_platform, rng=rng)
        assert np.array_equal(res.sorted_keys, keys)

    def test_sorts_reverse_sorted(self, rng, heterogeneous_platform):
        keys = np.arange(1000.0)[::-1].copy()
        res = sample_sort(keys, heterogeneous_platform, rng=rng)
        assert np.array_equal(res.sorted_keys, np.sort(keys))

    def test_empty_input(self, homogeneous_platform):
        res = sample_sort(np.array([]), homogeneous_platform, rng=0)
        assert res.sorted_keys.size == 0
        assert res.makespan == 0.0

    def test_single_worker(self, rng):
        plat = StarPlatform.homogeneous(1)
        keys = rng.random(500)
        res = sample_sort(keys, plat, rng=rng)
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.bucket_sizes.tolist() == [500]

    @given(
        data=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=0,
            max_size=300,
        ),
        p=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_sorts_anything(self, data, p):
        keys = np.asarray(data, dtype=float)
        plat = StarPlatform.homogeneous(p)
        res = sample_sort(keys, plat, rng=0)
        assert np.array_equal(res.sorted_keys, np.sort(keys))

    def test_rejects_2d(self, homogeneous_platform):
        with pytest.raises(ValueError):
            sample_sort(np.zeros((3, 3)), homogeneous_platform)


class TestAccounting:
    def test_bucket_sizes_sum_to_n(self, rng, homogeneous_platform):
        res = sample_sort(rng.random(4321), homogeneous_platform, rng=rng)
        assert res.bucket_sizes.sum() == 4321

    def test_makespan_decomposition(self, rng, homogeneous_platform):
        res = sample_sort(rng.random(2000), homogeneous_platform, rng=rng)
        expected = res.step1_time + res.step2_time + float(
            np.max(res.transfer_times + res.local_sort_times)
        )
        assert res.makespan == pytest.approx(expected)

    def test_oversampling_default_is_paper_value(self, rng, homogeneous_platform):
        N = 2**14
        res = sample_sort(rng.random(N), homogeneous_platform, rng=rng)
        assert res.oversampling == 14**2

    def test_speedup_above_one_for_large_n(self, rng):
        plat = StarPlatform.homogeneous(8)
        res = sample_sort(rng.random(300_000), plat, rng=rng)
        assert res.speedup() > 1.5

    def test_parallel_fraction_grows_with_n(self, rng):
        plat = StarPlatform.homogeneous(4)
        small = sample_sort(rng.random(2_000), plat, rng=rng)
        large = sample_sort(rng.random(200_000), plat, rng=rng)
        assert large.parallel_fraction > small.parallel_fraction

    def test_master_speed_scales_preprocessing(self, rng, homogeneous_platform):
        keys = rng.random(10_000)
        slow = sample_sort(keys, homogeneous_platform, rng=1, master_speed=1.0)
        fast = sample_sort(keys, homogeneous_platform, rng=1, master_speed=2.0)
        assert fast.preprocessing_time == pytest.approx(slow.preprocessing_time / 2)

    def test_bad_master_speed(self, homogeneous_platform):
        with pytest.raises(ValueError):
            sample_sort(np.array([1.0]), homogeneous_platform, master_speed=0.0)

    def test_sequential_work_helper(self):
        assert sequential_sort_work(8) == pytest.approx(24.0)


class TestHeterogeneous:
    def test_buckets_proportional_to_speeds(self, rng):
        """§3.2: worker i's bucket ≈ N x_i with high probability."""
        speeds = np.array([1.0, 3.0])
        plat = StarPlatform.from_speeds(speeds)
        keys = rng.random(100_000)
        res = sample_sort(keys, plat, rng=rng)
        fractions = res.bucket_sizes / keys.size
        assert fractions[1] == pytest.approx(0.75, abs=0.05)

    def test_balance_improves_vs_equal_buckets(self, rng):
        """Speed-aware splitters beat homogeneous splitters on makespan."""
        speeds = np.array([1.0, 1.0, 8.0, 8.0])
        plat = StarPlatform.from_speeds(speeds)
        keys = rng.random(200_000)
        aware = sample_sort(keys, plat, rng=1, heterogeneous=True)
        naive = sample_sort(keys, plat, rng=1, heterogeneous=False)
        assert aware.makespan < naive.makespan

    def test_heterogeneous_still_sorts(self, rng):
        plat = StarPlatform.from_speeds([1.0, 5.0, 25.0])
        keys = rng.normal(size=50_000)
        res = sample_sort(keys, plat, rng=rng)
        assert np.array_equal(res.sorted_keys, np.sort(keys))

    def test_auto_detection_of_heterogeneity(self, rng):
        """Default: speed-aware iff the platform is heterogeneous."""
        plat = StarPlatform.from_speeds([1.0, 9.0])
        keys = rng.random(50_000)
        auto = sample_sort(keys, plat, rng=2)
        forced = sample_sort(keys, plat, rng=2, heterogeneous=True)
        assert np.array_equal(auto.bucket_sizes, forced.bucket_sizes)
