"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure4_defaults(self):
        args = build_parser().parse_args(["figure4"])
        assert args.model == "uniform"
        assert args.trials == 100

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure4", "--model", "weird"])


class TestCommands:
    def test_plan(self, capsys):
        rc = main(["plan", "--speeds", "1", "2", "4", "--N", "1000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rho" in out and "het" in out

    def test_sort(self, capsys):
        rc = main(["sort", "--n", "20000", "--speeds", "1", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sorted=True" in out

    def test_figure4_small(self, capsys):
        rc = main(
            ["figure4", "--model", "homogeneous", "--processors", "10",
             "--trials", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 4" in out

    def test_section2(self, capsys):
        rc = main(["section2", "--processors", "4", "--alphas", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Section 2" in out

    def test_section3(self, capsys):
        rc = main(["section3", "--n", "10000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "residue" in out

    def test_rho(self, capsys):
        rc = main(["rho", "--k", "4", "--p", "10", "--N", "500"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rho" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "r.txt"
        rc = main(
            ["report", "--trials", "2", "--no-charts", "--output", str(out_file)]
        )
        assert rc == 0
        assert "written" in capsys.readouterr().out
        assert out_file.read_text().startswith("REPRODUCTION REPORT")

    def test_seed_threaded_through(self, capsys):
        main(["--seed", "7", "sort", "--n", "5000"])
        first = capsys.readouterr().out
        main(["--seed", "7", "sort", "--n", "5000"])
        second = capsys.readouterr().out
        assert first == second
