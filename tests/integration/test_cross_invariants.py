"""Cross-module property tests: invariants that span the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.heterogeneous import HeterogeneousBlocksStrategy
from repro.blocks.homogeneous import HomogeneousBlocksStrategy
from repro.core.bounds import lower_bound_comm
from repro.dlt.single_round import solve_linear_parallel
from repro.dlt.tree_solver import solve_tree
from repro.matmul.layouts import RectangleLayout
from repro.matmul.numeric import partitioned_matmul
from repro.matmul.outer_product_algo import simulate_outer_product_matmul
from repro.partition.column_based import peri_sum_partition
from repro.platform.star import StarPlatform
from repro.platform.tree import TreePlatform

speeds_lists = st.lists(
    st.floats(min_value=0.2, max_value=50.0), min_size=1, max_size=12
)


class TestVolumeChain:
    """LB <= het volume <= hom volume ordering across the stack."""

    @given(speeds=speeds_lists, N=st.floats(min_value=50.0, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_het_between_lb_and_hom(self, speeds, N):
        plat = StarPlatform.from_speeds(speeds)
        lb = lower_bound_comm(N, speeds)
        het = HeterogeneousBlocksStrategy().plan(plat, N).comm_volume
        hom = HomogeneousBlocksStrategy().plan(plat, N).comm_volume
        assert lb - 1e-6 <= het
        # hom can beat het only by rounding slack on near-homogeneous
        # platforms; never below the lower bound
        assert hom >= lb - 1e-6
        assert het <= 1.75 * lb + 1e-6

    @given(speeds=speeds_lists)
    @settings(max_examples=25, deadline=None)
    def test_partition_to_matmul_volume_consistency(self, speeds):
        """Partition geometry and the exact matmul accounting agree."""
        x = np.asarray(speeds) / np.sum(speeds)
        part = peri_sum_partition(x)
        n = 24
        layout = RectangleLayout(part, n=n)
        run = simulate_outer_product_matmul(layout)
        cells = sum(
            layout.rows_of(i).size + layout.cols_of(i).size
            for i in range(len(speeds))
        )
        assert run.total_no_reuse == pytest.approx(n * cells)
        # discretisation adds at most ~2 cells per rectangle side; it
        # can undercount arbitrarily for sliver rectangles thinner than
        # a cell (they own no cells), so only the upper bound is tight
        geo = part.scaled(n).sum_half_perimeters
        assert cells <= geo + 4 * len(speeds) + 1
        # every row and column is owned by someone
        assert cells >= 2 * n


class TestNumericBackbone:
    @given(speeds=speeds_lists, seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_any_speed_mix_multiplies_correctly(self, speeds, seed):
        """speeds → partition → distributed multiply == A @ B."""
        rng = np.random.default_rng(seed)
        x = np.asarray(speeds) / np.sum(speeds)
        part = peri_sum_partition(x)
        n = 12
        A, B = rng.normal(size=(n, n)), rng.normal(size=(n, n))
        assert np.allclose(partitioned_matmul(A, B, part), A @ B)


class TestPlatformModels:
    @given(
        speeds=st.lists(
            st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=6
        ),
        bandwidths=st.lists(
            st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_tree_and_star_solvers_agree_on_stars(self, speeds, bandwidths):
        """Two independently implemented solvers, one platform."""
        p = min(len(speeds), len(bandwidths))
        star = StarPlatform.from_speeds(speeds[:p], bandwidths[:p])
        tree = TreePlatform.star(speeds[:p], bandwidths[:p])
        t_star = solve_linear_parallel(star, 100.0).makespan
        t_tree = solve_tree(tree, 100.0).makespan
        assert t_tree == pytest.approx(t_star, rel=1e-5)

    @given(speeds=speeds_lists)
    @settings(max_examples=25, deadline=None)
    def test_adding_a_worker_never_hurts_linear_dlt(self, speeds):
        plat = StarPlatform.from_speeds(speeds)
        bigger = StarPlatform.from_speeds(list(speeds) + [1.0])
        t_small = solve_linear_parallel(plat, 100.0).makespan
        t_big = solve_linear_parallel(bigger, 100.0).makespan
        assert t_big <= t_small + 1e-9
