"""Property-based tests for plan-cache keying and sqlite round-trips.

The cache key machinery is the correctness spine of every plan store:
if ``freeze_value`` / ``plan_cache_key`` were order-sensitive the same
query would fragment into many entries; if they collided, a sweep
would silently serve the *wrong plan*.  Hypothesis drives both
directions, plus the durable round-trip: what goes into a
:class:`SQLitePlanCache` must come back content-equal.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cache import (
    SQLitePlanCache,
    encode_key,
    freeze_value,
    plan_cache_key,
)
from repro.core.pipeline import PlanRequest, plan_request
from repro.platform.star import StarPlatform

# -- draw strategies ---------------------------------------------------------

#: scalar parameter values whose repr/equality is exact (no NaN: it
#: breaks equality by design and can never reach a cache key usefully)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

#: nested parameter values: scalars, lists and string-keyed dicts
param_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)

#: parameter dicts as a request would carry them
param_dicts = st.dictionaries(
    st.text(min_size=1, max_size=8), param_values, max_size=5
)

#: small positive speed vectors (platform identity)
speed_lists = st.lists(
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=8,
)

#: a full key draw: (speeds, N, strategy name, params)
key_draws = st.tuples(
    speed_lists,
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    st.sampled_from(["het", "hom", "hom/k", "custom-x"]),
    param_dicts,
)


def accepts_everything(**params):
    """A factory with ``**kwargs``: every request param joins the key."""


def key_of(draw):
    speeds, n, strategy, params = draw
    request = PlanRequest(
        platform=StarPlatform.from_speeds(speeds),
        N=n,
        strategy=strategy,
        params=params,
    )
    return plan_cache_key(request, accepts_everything)


# -- freeze_value ------------------------------------------------------------


@given(value=param_values)
def test_freeze_value_deterministic(value):
    """Freezing the same content twice yields the same hashable."""
    frozen = freeze_value(value)
    assert frozen == freeze_value(value)
    hash(frozen)  # must actually be hashable


@given(params=st.dictionaries(st.text(max_size=6), scalars, max_size=6))
def test_freeze_value_dict_order_insensitive(params):
    """Two dicts with the same items freeze identically in any order."""
    backward = dict(reversed(list(params.items())))
    assert freeze_value(params) == freeze_value(backward)


@given(value=param_values)
def test_freeze_value_ndarray_content_keyed(value):
    arr = np.arange(6, dtype=float)
    frozen = freeze_value({"w": arr, "v": value})
    assert frozen == freeze_value({"v": value, "w": arr.copy()})
    assert frozen != freeze_value({"v": value, "w": arr + 1.0})


# -- plan_cache_key ----------------------------------------------------------


@given(draw=key_draws)
def test_plan_cache_key_deterministic(draw):
    """The same (platform, N, strategy, params) always keys the same."""
    assert key_of(draw) == key_of(draw)
    # and the durable digest is stable too
    assert encode_key(key_of(draw)) == encode_key(key_of(draw))


@given(draw=key_draws)
def test_plan_cache_key_param_order_insensitive(draw):
    speeds, n, strategy, params = draw
    reordered = dict(reversed(list(params.items())))
    assert key_of(draw) == key_of((speeds, n, strategy, reordered))


@given(a=key_draws, b=key_draws)
def test_plan_cache_key_collision_free(a, b):
    """Distinct (platform, N, strategy, params) draws never share a key.

    Two draws are content-equal only if every component is; otherwise
    their keys — and their sqlite digests — must differ.
    """
    same_content = (
        a[0] == b[0]
        and float(a[1]) == float(b[1])
        and a[2] == b[2]
        and freeze_value(a[3]) == freeze_value(b[3])
    )
    if same_content:
        assert key_of(a) == key_of(b)
    else:
        assert key_of(a) != key_of(b)
        assert encode_key(key_of(a)) != encode_key(key_of(b))


# -- sqlite round-trip -------------------------------------------------------


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    speeds=st.lists(
        st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
        min_size=2,
        max_size=6,
    ),
    n=st.floats(min_value=100.0, max_value=10_000.0, allow_nan=False),
    strategy=st.sampled_from(["het", "hom"]),
)
def test_sqlite_roundtrip_preserves_plan_result(tmp_path, speeds, n, strategy):
    """put → get through sqlite returns a content-equal PlanResult."""
    from repro import registry

    request = PlanRequest(
        platform=StarPlatform.from_speeds(speeds), N=n, strategy=strategy
    )
    factory = registry.get("strategy", strategy)
    key = plan_cache_key(request, factory)
    result = plan_request(request)

    store = SQLitePlanCache(tmp_path / "roundtrip.db")
    try:
        store.put(key, result)
        loaded = store.get(key)
    finally:
        store.close()

    assert loaded is not None
    assert loaded.request.strategy == result.request.strategy
    assert loaded.request.N == result.request.N
    assert loaded.plan.comm_volume == result.plan.comm_volume
    assert loaded.plan.imbalance == result.plan.imbalance
    assert np.array_equal(loaded.plan.speeds, result.plan.speeds)
    assert np.array_equal(loaded.plan.finish_times, result.plan.finish_times)
    # detail may hold ndarrays — compare via the freezing machinery
    assert freeze_value(loaded.plan.detail) == freeze_value(result.plan.detail)
    assert loaded.elapsed_s == result.elapsed_s
    # the reloaded plan answers the same content key
    assert plan_cache_key(loaded.request, factory) == key
