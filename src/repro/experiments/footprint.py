"""Experiment E12 (Figure 2): per-worker footprints, first-class.

Quantifies the redundancy gap of Homogeneous Blocks — shipped volume vs
the union footprint a data-aware runtime would need — and the affinity
scheduler's recovery of that gap (the paper's concluding proposal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.platform.star import StarPlatform
from repro.simulate.affinity import affinity_savings
from repro.util.tables import format_table


@dataclass(frozen=True)
class FootprintRow:
    p: int
    grid: int
    plain_shipped: float
    affinity_shipped: float
    union_footprint: float
    saved_fraction: float


@dataclass(frozen=True)
class FootprintResult:
    rows: tuple[FootprintRow, ...]

    def render(self) -> str:
        return format_table(
            [
                "p",
                "#chunks",
                "plain shipped",
                "affinity shipped",
                "union footprint",
                "affinity saves",
            ],
            [
                [
                    r.p,
                    r.grid * r.grid,
                    r.plain_shipped,
                    r.affinity_shipped,
                    r.union_footprint,
                    f"{100 * r.saved_fraction:.1f}%",
                ]
                for r in self.rows
            ],
            title=(
                "Figure 2 / conclusion: shipped volume under plain vs "
                "affinity demand-driven scheduling (unit blocks)"
            ),
        )


def run_footprint_experiment(
    configs: Sequence[tuple[Sequence[float], int]] = (
        ([1.0, 1.0, 2.0, 4.0, 12.0], 10),
        ([1.0, 2.0, 4.0, 8.0, 16.0, 32.0], 16),
        (tuple(float(s) for s in range(1, 13)), 24),
    ),
) -> FootprintResult:
    """For each (speeds, grid) configuration, measure both schedulers.

    The union footprint reported is the affinity run's lower bound —
    each worker must receive at least its distinct rows+cols — computed
    from the affinity assignment itself.
    """
    rows = []
    for speeds, grid in configs:
        platform = StarPlatform.from_speeds(list(speeds))
        out = affinity_savings(platform, grid=grid)
        aff = out["affinity"]
        union = 0.0
        for cells in aff.assignment:
            rows_set = {r for r, _ in cells}
            cols_set = {c for _, c in cells}
            union += (len(rows_set) + len(cols_set)) * aff.block_side
        rows.append(
            FootprintRow(
                p=platform.size,
                grid=grid,
                plain_shipped=out["plain"].total_shipped,
                affinity_shipped=aff.total_shipped,
                union_footprint=union,
                saved_fraction=out["saved_fraction"],
            )
        )
    return FootprintResult(rows=tuple(rows))
