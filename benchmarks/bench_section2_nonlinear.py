"""Benchmark regenerating the §2 table: experiments E1–E2.

The "no free lunch" numbers: the fraction of an :math:`N^\\alpha`
workload covered by one *optimal* DLT round, analytic vs the genuine
equal-finish-time solver, on homogeneous and heterogeneous stars; plus
the number of rounds a repeated-split scheme would need.
"""

import pytest

from repro.core.nonlinear import residual_fraction
from repro.experiments.section2 import run_section2


def test_section2_vanishing_fraction(benchmark):
    result = benchmark.pedantic(
        run_section2,
        kwargs={
            "processors": (2, 4, 8, 16, 32, 64, 128),
            "alphas": (1.5, 2.0, 3.0),
            "N": 1000.0,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())

    by_key = {(r.P, r.alpha): r for r in result.rows}
    # solver == closed form on homogeneous platforms
    for (P, alpha), row in by_key.items():
        assert row.solved_fraction_homogeneous == pytest.approx(
            row.analytic_fraction, rel=1e-5
        )
    # the paper's headline: at P=128, alpha=2, >99% of the work remains
    assert 1 - by_key[(128, 2.0)].analytic_fraction > 0.99
    assert residual_fraction(128, 3.0) > 0.9999
    # heterogeneity does not rescue the exponent
    assert by_key[(128, 2.0)].solved_fraction_heterogeneous < 0.1


def test_section2_solver_throughput(benchmark):
    """Microbenchmark: the nonlinear solver itself (p=64, alpha=2)."""
    from repro.dlt.nonlinear_solver import solve_nonlinear_parallel
    from repro.platform.star import StarPlatform

    plat = StarPlatform.from_speeds(
        [1.0 + 0.5 * i for i in range(64)]
    )
    alloc = benchmark(solve_nonlinear_parallel, plat, 1000.0, 2.0)
    assert alloc.total == pytest.approx(1000.0)
