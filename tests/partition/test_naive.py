"""Tests for repro.partition.naive."""

import numpy as np
import pytest

from repro.partition.naive import grid_partition, strip_partition


class TestStrip:
    def test_cost_is_p_plus_one(self):
        for p in (1, 3, 10):
            areas = np.full(p, 1.0 / p)
            assert strip_partition(areas).sum_half_perimeters == pytest.approx(
                p + 1.0
            )

    def test_areas_preserved_heterogeneous(self):
        areas = np.array([0.7, 0.2, 0.1])
        part = strip_partition(areas)
        part.validate(expected_areas=areas)

    def test_full_width(self):
        part = strip_partition([0.4, 0.6])
        assert all(r.w == pytest.approx(1.0) for r in part)


class TestGrid:
    def test_perfect_square(self):
        part = grid_partition(9)
        part.validate(expected_areas=np.full(9, 1.0 / 9))
        assert part.sum_half_perimeters == pytest.approx(6.0)

    def test_rectangular_factorisation(self):
        part = grid_partition(6)  # 2x3
        part.validate(expected_areas=np.full(6, 1.0 / 6))

    def test_prime_degenerates_to_strip(self):
        part = grid_partition(7)
        assert part.sum_half_perimeters == pytest.approx(8.0)

    def test_single(self):
        assert grid_partition(1).sum_half_perimeters == pytest.approx(2.0)

    def test_owners_unique(self):
        owners = [r.owner for r in grid_partition(12)]
        assert sorted(owners) == list(range(12))
