"""Demand-driven placement of map tasks on heterogeneous workers.

Hadoop's scheduler (§4: "the load-balancing is achieved by splitting the
workloads in many tasks, which are then scattered across the platform;
the fastest processor gets more chunks than the others") is exactly the
demand-driven model of :mod:`repro.simulate.demand_driven`; this module
adapts MapReduce task descriptions to it and reports the MapReduce-level
quantities (per-worker task counts, makespan, straggler gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.platform.star import StarPlatform
from repro.registry import register
from repro.simulate.demand_driven import Task, run_demand_driven


@dataclass(frozen=True)
class MapPhaseSchedule:
    """Outcome of scheduling one map phase."""

    counts: np.ndarray
    finish_times: np.ndarray
    makespan: float
    imbalance: float
    total_data: float

    @property
    def straggler_gap(self) -> float:
        """Absolute time between the first and last worker to finish."""
        return float(self.finish_times.max() - self.finish_times.min())


@register(
    "simulation",
    "mapreduce-map-phase",
    summary="Greedy demand-driven placement of MapReduce map tasks",
)
def schedule_map_tasks(
    platform: StarPlatform,
    task_works: Sequence[float],
    task_datas: Sequence[float] | None = None,
) -> MapPhaseSchedule:
    """Greedy demand-driven schedule of map tasks.

    ``task_works[i]`` is task *i*'s computation (work units);
    ``task_datas`` its input volume (defaults to equal to work, the
    linear-workload convention).
    """
    works = np.asarray(task_works, dtype=float)
    if task_datas is None:
        datas = works.copy()
    else:
        datas = np.asarray(task_datas, dtype=float)
        if datas.shape != works.shape:
            raise ValueError("task_datas must match task_works in length")
    tasks = [Task(work=float(w), data=float(d), tag=i)
             for i, (w, d) in enumerate(zip(works, datas))]
    result = run_demand_driven(platform, tasks)
    return MapPhaseSchedule(
        counts=result.counts,
        finish_times=result.finish_times,
        makespan=result.makespan,
        imbalance=result.load_imbalance,
        total_data=result.total_data,
    )
