"""The paper's primary contribution: analysis + strategy layer.

* :mod:`repro.core.cost_models` — workload cost functions (linear,
  power-law :math:`N^\\alpha`, :math:`N \\log N`, …).
* :mod:`repro.core.nonlinear` — §2: the vanishing-fraction theorem for
  super-linear divisible loads.
* :mod:`repro.core.almost_linear` — §3: sorting as an *almost* divisible
  load.
* :mod:`repro.core.bounds` — §4: communication lower bounds,
  closed-form volumes and the :math:`\\rho` heterogeneity-gain bound.
* :mod:`repro.core.strategies` — the user-facing façade tying the block
  strategies, the partitioner and the platform together.
* :mod:`repro.core.pipeline` — the uniform ``PlanRequest → PlanResult``
  pipeline every registered strategy is invoked, timed and compared
  through.
* :mod:`repro.core.session` — :class:`PlannerSession`, the
  backend-routed, cached, batched planning API (with
  :mod:`repro.core.backends` and :mod:`repro.core.cache` under it).
* :mod:`repro.core.vectorize` — the miss → group → kernel routing that
  lets sessions plan whole batches through the strategies' vectorised
  ``plan_batch`` kernels.
"""

from repro.core.cost_models import (
    CostModel,
    LinearCost,
    AffineCost,
    PowerLawCost,
    NLogNCost,
    CallableCost,
)
from repro.core.nonlinear import (
    total_work,
    partial_work,
    partial_work_fraction,
    residual_fraction,
    rounds_to_finish,
    dlt_phase_report,
)
from repro.core.almost_linear import (
    sorting_work,
    sorting_partial_work,
    sorting_residual_fraction,
    recommended_oversampling,
    sample_sort_cost_breakdown,
)
from repro.core.bounds import (
    lower_bound_comm,
    comm_hom_ideal,
    comm_het_upper_bound,
    rho_lower_bound,
    half_fast_rho_bound,
    PERI_SUM_GUARANTEE,
)
from repro.core.strategies import (
    OuterProductPlan,
    available_strategies,
    plan_outer_product,
    compare_strategies,
    work_coverage,
)
from repro.core.pipeline import (
    PlanRequest,
    PlanResult,
    PlanSweep,
    plan_request,
)
from repro.core.backends import backend_from_spec
from repro.core.cache import (
    CacheStats,
    MemoryPlanCache,
    PlanCache,
    PlanStore,
    SQLitePlanCache,
    ThreadSafePlanStore,
    TieredPlanCache,
    cache_from_spec,
)
from repro.core.vectorize import (
    VectorGroup,
    batch_capable,
    plan_batch_requests,
    plan_request_group,
)
from repro.core.session import (
    PlannerSession,
    default_session,
    reset_default_session,
)

__all__ = [
    "CostModel",
    "LinearCost",
    "AffineCost",
    "PowerLawCost",
    "NLogNCost",
    "CallableCost",
    "total_work",
    "partial_work",
    "partial_work_fraction",
    "residual_fraction",
    "rounds_to_finish",
    "dlt_phase_report",
    "sorting_work",
    "sorting_partial_work",
    "sorting_residual_fraction",
    "recommended_oversampling",
    "sample_sort_cost_breakdown",
    "lower_bound_comm",
    "comm_hom_ideal",
    "comm_het_upper_bound",
    "rho_lower_bound",
    "half_fast_rho_bound",
    "PERI_SUM_GUARANTEE",
    "OuterProductPlan",
    "available_strategies",
    "plan_outer_product",
    "compare_strategies",
    "work_coverage",
    "PlanRequest",
    "PlanResult",
    "PlanSweep",
    "plan_request",
    "backend_from_spec",
    "CacheStats",
    "PlanCache",
    "PlanStore",
    "MemoryPlanCache",
    "SQLitePlanCache",
    "ThreadSafePlanStore",
    "TieredPlanCache",
    "cache_from_spec",
    "VectorGroup",
    "batch_capable",
    "plan_batch_requests",
    "plan_request_group",
    "PlannerSession",
    "default_session",
    "reset_default_session",
]
