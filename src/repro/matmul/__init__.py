"""Matrix multiplication on heterogeneous platforms (§4.2).

The whole computation is a 3-D cube: element ``(i, k, j)`` is the basic
operation :math:`a_{i,k} b_{k,j}`.  Every classical implementation
(ScaLAPACK and the MapReduce ports the paper cites) runs ``N`` steps of
the §4.1 *outer product*, so the communication volume is proportional to
the sum of the half-perimeters of the processors' rectangles — the §4.1
ratios carry over verbatim.  This package provides:

* :mod:`repro.matmul.cube` — the computation-cube model and volumes;
* :mod:`repro.matmul.layouts` — rectangle and block-cyclic layouts;
* :mod:`repro.matmul.outer_product_algo` — the per-step broadcast
  simulation (Figure 3);
* :mod:`repro.matmul.numeric` — NumPy validation that a partitioned
  multiply computes exactly ``A @ B``;
* :mod:`repro.matmul.mapreduce_layouts` — shuffle volumes of the
  MapReduce formulations (naive n³ and HAMA-style block replication).
"""

from repro.matmul.cube import ComputationCube
from repro.matmul.layouts import RectangleLayout, BlockCyclicLayout
from repro.matmul.outer_product_algo import (
    OuterProductRun,
    simulate_outer_product_matmul,
)
from repro.matmul.numeric import (
    partitioned_matmul,
    outer_product_matmul,
    mapreduce_matmul_reference,
)
from repro.matmul.mapreduce_layouts import (
    naive_mapreduce_volume,
    hama_block_volume,
    partitioned_volume,
    best_hama_grid,
)
from repro.matmul.two_five_d import (
    TwoFiveDVolume,
    two_five_d_volume,
    volume_vs_replication,
    max_replication,
)

__all__ = [
    "TwoFiveDVolume",
    "two_five_d_volume",
    "volume_vs_replication",
    "max_replication",
    "ComputationCube",
    "RectangleLayout",
    "BlockCyclicLayout",
    "OuterProductRun",
    "simulate_outer_product_matmul",
    "partitioned_matmul",
    "outer_product_matmul",
    "mapreduce_matmul_reference",
    "naive_mapreduce_volume",
    "hama_block_volume",
    "partitioned_volume",
    "best_hama_grid",
]
