"""Property tests on the demand-driven scheduler family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.star import StarPlatform
from repro.simulate.demand_driven import Task, run_demand_driven
from repro.simulate.failures import FailureEvent, run_with_failures

speeds_strategy = st.lists(
    st.floats(min_value=0.5, max_value=20.0), min_size=1, max_size=6
)
works_strategy = st.lists(
    st.floats(min_value=0.1, max_value=10.0), min_size=0, max_size=40
)


class TestGreedyProperties:
    @given(speeds=speeds_strategy, works=works_strategy)
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, speeds, works):
        plat = StarPlatform.from_speeds(speeds)
        res = run_demand_driven(plat, [Task(work=w) for w in works])
        executed = sum(
            works[t] for worker in res.assignment for t in worker
        )
        assert executed == pytest.approx(sum(works))

    @given(speeds=speeds_strategy, works=works_strategy)
    @settings(max_examples=60, deadline=None)
    def test_makespan_lower_bound(self, speeds, works):
        """Makespan >= total work / total speed (work conservation)."""
        plat = StarPlatform.from_speeds(speeds)
        res = run_demand_driven(plat, [Task(work=w) for w in works])
        ideal = sum(works) / plat.total_speed
        assert res.makespan >= ideal - 1e-9

    @given(speeds=speeds_strategy, works=works_strategy)
    @settings(max_examples=60, deadline=None)
    def test_list_scheduling_guarantee(self, works, speeds):
        """Graham-style bound for heterogeneous list scheduling:
        T <= W/Σs + max task on the slowest machine."""
        plat = StarPlatform.from_speeds(speeds)
        res = run_demand_driven(plat, [Task(work=w) for w in works])
        if not works:
            assert res.makespan == 0.0
            return
        bound = sum(works) / plat.total_speed + max(works) / min(speeds)
        assert res.makespan <= bound + 1e-9

    @given(speeds=speeds_strategy, works=works_strategy)
    @settings(max_examples=40, deadline=None)
    def test_faulty_engine_matches_greedy_without_faults(self, speeds, works):
        plat = StarPlatform.from_speeds(speeds)
        tasks = [Task(work=w) for w in works]
        plain = run_demand_driven(plat, tasks)
        faulty = run_with_failures(plat, tasks)
        assert faulty.makespan == pytest.approx(plain.makespan, rel=1e-9)

    @given(
        p=st.integers(min_value=2, max_value=5),
        works=st.lists(
            st.floats(min_value=0.5, max_value=5.0), min_size=1, max_size=20
        ),
        death_time=st.floats(min_value=0.0, max_value=20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_failure_never_improves_makespan_homogeneous(
        self, p, works, death_time
    ):
        """On *homogeneous* platforms losing a worker can only hurt.

        (On heterogeneous platforms this is genuinely false: greedy's
        lowest-index tie-break can hand a task to a slow worker whose
        death then *improves* the makespan — a real property of list
        scheduling, documented here rather than asserted away.)
        """
        plat = StarPlatform.homogeneous(p)
        tasks = [Task(work=w) for w in works]
        healthy = run_with_failures(plat, tasks)
        wounded = run_with_failures(
            plat, tasks, failures=[FailureEvent(worker=0, time=death_time)]
        )
        assert wounded.makespan >= healthy.makespan - 1e-9
        # every task completed exactly once in the ledger
        assert len(wounded.completed_by) == len(tasks)

    def test_killing_a_slow_worker_can_help(self):
        """The heterogeneous counterexample, pinned as a regression test."""
        plat = StarPlatform.from_speeds([1.0, 2.0])
        tasks = [Task(work=1.0)]
        healthy = run_with_failures(plat, tasks)  # tie-break → slow worker
        wounded = run_with_failures(
            plat, tasks, failures=[FailureEvent(worker=0, time=0.0)]
        )
        assert healthy.makespan == pytest.approx(1.0)
        assert wounded.makespan == pytest.approx(0.5)
