"""Tests for repro.platform.comm_models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.comm_models import (
    BoundedMultiport,
    OnePort,
    ParallelLinks,
    makespan_of_order,
)


class TestParallelLinks:
    def test_independent_completion(self):
        ends = ParallelLinks().receive_end_times([1.0, 2.0], [3.0, 4.0])
        assert np.allclose(ends, [3.0, 8.0])

    def test_zero_amounts(self):
        ends = ParallelLinks().receive_end_times([1.0, 1.0], [0.0, 0.0])
        assert np.allclose(ends, 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ParallelLinks().receive_end_times([1.0], [1.0, 2.0])

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            ParallelLinks().receive_end_times([1.0], [-1.0])


class TestOnePort:
    def test_sequential_accumulation(self):
        ends = OnePort().receive_end_times([1.0, 1.0, 1.0], [2.0, 3.0, 4.0])
        assert np.allclose(ends, [2.0, 5.0, 9.0])

    def test_order_respected(self):
        ends = OnePort().receive_end_times(
            [1.0, 1.0], [2.0, 3.0], order=[1, 0]
        )
        # worker 1 served first: ends at 3; worker 0 after: 3 + 2 = 5
        assert np.allclose(ends, [5.0, 3.0])

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            OnePort().receive_end_times([1.0, 1.0], [1.0, 1.0], order=[0, 0])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=10),
                st.floats(min_value=0.0, max_value=10),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_total_time_is_order_invariant(self, pairs):
        """One-port: the last completion equals Σ c_i n_i whatever the order."""
        c = np.array([p[0] for p in pairs])
        n = np.array([p[1] for p in pairs])
        fwd = OnePort().receive_end_times(c, n)
        rev = OnePort().receive_end_times(c, n, order=list(range(len(pairs)))[::-1])
        assert fwd.max() == pytest.approx(rev.max())
        assert fwd.max() == pytest.approx(float(np.sum(c * n)))


class TestBoundedMultiport:
    def test_uncongested_equals_parallel(self):
        model = BoundedMultiport(master_bandwidth=100.0)
        ends = model.receive_end_times([1.0, 2.0], [3.0, 4.0])
        assert np.allclose(ends, [3.0, 8.0])

    def test_congestion_scales_uniformly(self):
        # two unit links (rate 1 each) sharing a master uplink of 1.0
        model = BoundedMultiport(master_bandwidth=1.0)
        ends = model.receive_end_times([1.0, 1.0], [1.0, 1.0])
        assert np.allclose(ends, [2.0, 2.0])

    def test_inactive_links_ignored(self):
        model = BoundedMultiport(master_bandwidth=1.0)
        ends = model.receive_end_times([1.0, 1.0], [1.0, 0.0])
        assert np.allclose(ends, [1.0, 0.0])

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            BoundedMultiport(master_bandwidth=0.0)


class TestMakespanOfOrder:
    def test_parallel(self):
        m = makespan_of_order(
            np.array([1.0, 1.0]),
            np.array([5.0, 1.0]),
            np.array([1.0, 1.0]),
            ParallelLinks(),
        )
        assert m == pytest.approx(6.0)

    def test_compute_shape_mismatch(self):
        with pytest.raises(ValueError):
            makespan_of_order(
                np.array([1.0]), np.array([1.0, 2.0]), np.array([1.0]),
                ParallelLinks(),
            )
