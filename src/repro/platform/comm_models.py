"""Communication models for the master's outgoing links.

The paper (§1.2) uses the simplest model — all master→worker transfers in
parallel, each limited only by the worker's incoming bandwidth — "in order
to concentrate on the difficulty introduced by the non-linearity of the
cost".  We also implement the classical one-port model (the master sends
to one worker at a time) because the classical DLT literature the paper
contrasts with ([9], [31]–[35]) lives in that model, and a bounded
multiport model as a documented extension.

Each model answers one question: given per-worker message sizes and the
order in which the master serves workers, when does each worker finish
receiving its data?
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.validation import check_positive


class CommunicationModel(ABC):
    """Strategy object computing per-worker receive-completion times."""

    name: str = "abstract"

    @abstractmethod
    def receive_end_times(
        self,
        comm_times: np.ndarray,
        amounts: np.ndarray,
        order: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Completion time of each worker's transfer.

        Parameters
        ----------
        comm_times:
            Array :math:`c_i` — seconds per data unit on each link.
        amounts:
            Data units sent to each worker (same length).
        order:
            Service order (permutation of indices).  Only meaningful for
            sequentialised models; ``None`` means index order.
        """

    @staticmethod
    def _validated(comm_times, amounts) -> tuple[np.ndarray, np.ndarray]:
        c = np.asarray(comm_times, dtype=float)
        n = np.asarray(amounts, dtype=float)
        if c.shape != n.shape:
            raise ValueError(
                f"comm_times shape {c.shape} != amounts shape {n.shape}"
            )
        if np.any(n < 0):
            raise ValueError("amounts must be non-negative")
        if np.any(c <= 0):
            raise ValueError("comm_times must be strictly positive")
        return c, n


@dataclass(frozen=True)
class ParallelLinks(CommunicationModel):
    """All transfers start at time 0 and proceed concurrently.

    Worker *i* finishes receiving at :math:`c_i \\cdot n_i`.  This is the
    paper's model: the master's uplink is never the bottleneck.
    """

    name: str = "parallel-links"

    def receive_end_times(self, comm_times, amounts, order=None) -> np.ndarray:
        c, n = self._validated(comm_times, amounts)
        return c * n


@dataclass(frozen=True)
class OnePort(CommunicationModel):
    """The master serves workers one at a time, in ``order``.

    Worker at position *j* in the order starts receiving only after all
    earlier transfers complete; it finishes at
    :math:`\\sum_{j' \\le j} c_{\\sigma(j')} n_{\\sigma(j')}`.
    """

    name: str = "one-port"

    def receive_end_times(self, comm_times, amounts, order=None) -> np.ndarray:
        c, n = self._validated(comm_times, amounts)
        p = c.size
        if order is None:
            order = np.arange(p)
        order = np.asarray(order, dtype=int)
        if sorted(order.tolist()) != list(range(p)):
            raise ValueError(f"order must be a permutation of 0..{p - 1}")
        ends = np.empty(p, dtype=float)
        t = 0.0
        for idx in order:
            t += c[idx] * n[idx]
            ends[idx] = t
        return ends


@dataclass(frozen=True)
class BoundedMultiport(CommunicationModel):
    """Parallel links sharing the master's finite uplink bandwidth.

    Transfers all start at 0; each link *i* would finish at
    :math:`c_i n_i` in isolation, but the aggregate outgoing rate is
    capped at ``master_bandwidth``.  We use the standard fluid
    approximation: if the sum of requested rates exceeds the cap, all
    rates are scaled down proportionally (progressive filling would give
    the same completion time for the common case of simultaneous starts
    with proportional fair share; we keep the simple proportional model
    and document it).
    """

    master_bandwidth: float = 1.0
    name: str = "bounded-multiport"

    def __post_init__(self) -> None:
        check_positive(self.master_bandwidth, "master_bandwidth")

    def receive_end_times(self, comm_times, amounts, order=None) -> np.ndarray:
        c, n = self._validated(comm_times, amounts)
        isolated = c * n
        active = n > 0
        if not np.any(active):
            return isolated
        requested_rate = float(np.sum(1.0 / c[active]))
        if requested_rate <= self.master_bandwidth:
            return isolated
        scale = requested_rate / self.master_bandwidth
        out = isolated.copy()
        out[active] = isolated[active] * scale
        return out


def makespan_of_order(
    comm_times: np.ndarray,
    compute_times_after_recv: np.ndarray,
    amounts: np.ndarray,
    model: CommunicationModel,
    order: Sequence[int] | None = None,
) -> float:
    """Makespan when each worker computes right after its transfer ends.

    ``compute_times_after_recv[i]`` is the *total* compute wall time of
    worker *i* once its data has arrived (the caller fixes the cost
    model — linear or not — this function only deals with timing).
    """
    ends = model.receive_end_times(comm_times, amounts, order=order)
    compute = np.asarray(compute_times_after_recv, dtype=float)
    if compute.shape != ends.shape:
        raise ValueError("compute_times_after_recv shape mismatch")
    return float(np.max(ends + compute)) if ends.size else 0.0
