"""The unified planning pipeline: ``PlanRequest → PlanResult``.

Every outer-product strategy in the registry is invoked the same way:
a :class:`PlanRequest` names the platform, the problem size and the
strategy (plus free-form parameters); :func:`plan_request` resolves the
strategy through :mod:`repro.registry`, filters the parameters down to
what the strategy's constructor accepts, times the planning call and
wraps the outcome — together with its communication lower bound — in a
:class:`PlanResult`.

:func:`plan_request` is the *raw* planner: no cache, no concurrency,
importable by name so process-pool backends can pickle it.  Almost all
callers want :class:`repro.core.session.PlannerSession` instead, which
routes batches of requests through an execution backend and a
content-keyed plan cache.  (The historical free functions ``execute``
/ ``execute_all`` were deprecated shims over the default session; they
were removed in repro 2.0 as scheduled — see the README's migration
notes for the one-line replacements.)
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro import registry
from repro.blocks.metrics import StrategyResult
from repro.platform.star import StarPlatform
from repro.util.tables import format_table


def supported_kwargs(
    factory: Callable[..., Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Subset of ``params`` that ``factory``'s signature accepts.

    Lets one request carry parameters for heterogeneous strategies
    (e.g. ``imbalance_target`` applies to ``hom/k`` only) without every
    strategy having to swallow ``**kwargs``.  A factory with a
    ``**kwargs`` parameter receives everything.
    """
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):
        return dict(params)
    accepted = set()
    for p in sig.parameters.values():
        if p.kind is inspect.Parameter.VAR_KEYWORD:
            return dict(params)
        if p.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            accepted.add(p.name)
    return {k: v for k, v in params.items() if k in accepted}


@dataclass(frozen=True)
class PlanRequest:
    """One normalized planning job: which strategy on which instance.

    The unit of work everything downstream speaks — sessions cache it
    (under its content key), backends pickle it to workers, and the
    vectorised path groups it with other requests sharing a strategy.
    Immutable and hashable-by-content, so a request can safely appear
    in many batches.

    Example::

        PlanRequest(platform=StarPlatform.from_speeds([1, 2, 4]),
                    N=10_000.0, strategy="hom/k",
                    params={"imbalance_target": 0.01})
    """

    #: the star platform to plan on (content-fingerprinted for caching)
    platform: StarPlatform
    #: problem size — the outer product is ``N × N``
    N: float
    #: a registered strategy name (``repro list strategy``)
    strategy: str = "het"
    #: free-form strategy parameters; silently filtered down to what
    #: the strategy's constructor accepts (:func:`supported_kwargs`)
    params: Mapping[str, Any] = field(default_factory=dict)

    def with_strategy(self, strategy: str) -> "PlanRequest":
        """The same instance under a different strategy."""
        return PlanRequest(
            platform=self.platform,
            N=self.N,
            strategy=strategy,
            params=self.params,
        )


@dataclass(frozen=True)
class PlanResult:
    """A strategy's plan plus uniform bookkeeping (timing, LB ratio).

    Wraps the strategy's own :class:`~repro.blocks.metrics.StrategyResult`
    (``.plan``) with the request it answers and how it was produced.
    The convenience properties (``comm_volume``, ``ratio_to_lower_bound``,
    ``imbalance``, ``makespan``) forward to the plan so tables and
    experiments never reach through two layers.
    """

    #: the request this result answers (defaults already merged in)
    request: PlanRequest
    #: the strategy's plan with its communication/imbalance metrics
    plan: StrategyResult
    #: wall-clock seconds spent planning (construction + .plan());
    #: an even share of the kernel's time when planned in a vectorised
    #: group; 0.0 when the plan came out of a session's cache
    elapsed_s: float
    #: True when a session served this result from its plan cache
    cached: bool = False

    @property
    def strategy(self) -> str:
        return self.request.strategy

    @property
    def comm_volume(self) -> float:
        return self.plan.comm_volume

    @property
    def lower_bound(self) -> float:
        return self.plan.lower_bound

    @property
    def ratio_to_lower_bound(self) -> float:
        return self.plan.ratio_to_lower_bound

    @property
    def imbalance(self) -> float:
        return self.plan.imbalance

    @property
    def makespan(self) -> float:
        return self.plan.makespan

    def summary(self) -> str:
        if self.cached:
            return f"{self.plan.summary()}, served from cache"
        return f"{self.plan.summary()}, planned in {self.elapsed_s * 1e3:.2f} ms"


def plan_request(request: PlanRequest) -> PlanResult:
    """Resolve, invoke and time one strategy through the registry.

    The raw planner: no caching, no backend routing.  Module-level (and
    therefore picklable) so the ``process`` backend can ship it to
    worker processes.  Sessions wrap this; call it directly only when
    you explicitly want to bypass them.
    """
    factory = registry.get("strategy", request.strategy)
    kwargs = supported_kwargs(factory, request.params)
    start = time.perf_counter()
    plan = factory(**kwargs).plan(request.platform, request.N)
    elapsed = time.perf_counter() - start
    return PlanResult(request=request, plan=plan, elapsed_s=elapsed)


@dataclass(frozen=True)
class PlanSweep:
    """Every requested strategy on one instance, uniformly accounted.

    ``results`` iterates in sorted strategy-name order regardless of
    which backend planned it, so serial and concurrent sweeps render
    identical tables.  ``cache_hits``/``cache_misses`` count how this
    sweep's requests fared against the session's plan cache (``None``
    when the sweep ran without one).
    """

    N: float
    results: Mapping[str, PlanResult]
    cache_hits: int | None = None
    cache_misses: int | None = None

    @property
    def ratios(self) -> dict[str, float]:
        return {
            name: res.ratio_to_lower_bound for name, res in self.results.items()
        }

    @property
    def best(self) -> PlanResult:
        """The plan with the lowest communication volume."""
        if not self.results:
            raise ValueError("empty sweep: no strategies were planned")
        return min(self.results.values(), key=lambda r: r.comm_volume)

    def render(self) -> str:
        rows = [
            [
                name + (" *" if res.cached else ""),
                res.comm_volume,
                res.ratio_to_lower_bound,
                res.imbalance,
                res.elapsed_s * 1e3,
            ]
            for name, res in self.results.items()
        ]
        table = format_table(
            ["strategy", "comm volume", "ratio to LB", "imbalance e", "plan ms"],
            rows,
            title=f"Strategy sweep, N={self.N:g} (best: {self.best.strategy})",
        )
        if self.cache_hits is not None and self.cache_misses is not None:
            table += (
                f"\ncache: {self.cache_hits} hit(s), "
                f"{self.cache_misses} miss(es)"
                + ("  (* = served from cache)" if self.cache_hits else "")
            )
        return table


def _sorted_results(
    results: Mapping[str, PlanResult]
) -> dict[str, PlanResult]:
    """``results`` re-keyed in sorted strategy-name order."""
    return {name: results[name] for name in sorted(results)}
