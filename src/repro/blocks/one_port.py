"""One-port shipping of the Heterogeneous Blocks distribution.

§3.1 closes by noting that once a workload is (almost) divisible,
"optimizing the data distribution phase to slave processors under more
complicated communication models ... is meaningful".  The same holds
for §4's rectangles: under the one-port model the master ships each
worker its ``(a, b)`` segments *sequentially*, and the shipping order
matters because workers compute after receiving.

Worker *i* with rectangle of width ``u_i`` and height ``v_i`` (scaled)
receives ``u_i + v_i`` data and then computes its ``u_i · v_i`` area at
cycle time ``w_i``.  With all send times fixed, this is again
single-machine scheduling with delivery times, so Jackson's rule
(largest compute time first) is optimal — reusing the §3 machinery from
:mod:`repro.sorting.dlt_schedule`'s argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro.blocks.heterogeneous import HeterogeneousBlocksStrategy
from repro.platform.star import StarPlatform
from repro.util.validation import check_positive


@dataclass(frozen=True)
class OnePortPlan:
    """Timeline of shipping rectangles one-port, then computing."""

    order: tuple[int, ...]
    send_end: np.ndarray
    finish: np.ndarray
    makespan: float
    comm_volume: float

    @property
    def parallel_links_makespan(self) -> float:
        """What the §1.2 model would report (all sends at t = 0)."""
        send_durations = np.empty_like(self.send_end)
        prev = 0.0
        for idx in self.order:
            send_durations[idx] = self.send_end[idx] - prev
            prev = self.send_end[idx]
        compute = self.finish - self.send_end
        return float(np.max(send_durations + compute))


def plan_het_one_port(
    platform: StarPlatform, N: float, order: str = "jackson"
) -> OnePortPlan:
    """Ship the PERI-SUM rectangles under one-port communications.

    ``order``: ``"jackson"`` (largest compute first — optimal),
    ``"index"`` (platform order) or ``"smallest-first"`` (the
    pessimisation, for contrast in tests).
    """
    check_positive(N, "N")
    het = HeterogeneousBlocksStrategy().plan(platform, N)
    scaled = het.detail["scaled_partition"]
    p = platform.size
    send_size = np.empty(p)
    compute = np.empty(p)
    w = platform.cycle_times
    c = platform.comm_times
    for rect in scaled:
        i = rect.owner
        send_size[i] = rect.half_perimeter
        compute[i] = rect.w * rect.h * w[i]

    if order == "jackson":
        sigma = np.argsort(-compute, kind="stable")
    elif order == "index":
        sigma = np.arange(p)
    elif order == "smallest-first":
        sigma = np.argsort(compute, kind="stable")
    else:
        raise ValueError(f"unknown order policy {order!r}")

    send_end = np.empty(p)
    finish = np.empty(p)
    t = 0.0
    for idx in sigma:
        t += c[idx] * send_size[idx]
        send_end[idx] = t
        finish[idx] = t + compute[idx]
    return OnePortPlan(
        order=tuple(int(i) for i in sigma),
        send_end=send_end,
        finish=finish,
        makespan=float(finish.max()),
        comm_volume=float(send_size.sum() * 1.0),
    )


def brute_force_one_port_plan(platform: StarPlatform, N: float) -> OnePortPlan:
    """Exhaustive optimum over shipping orders (tests, p <= 8)."""
    p = platform.size
    if p > 8:
        raise ValueError("brute force limited to p <= 8")
    het = HeterogeneousBlocksStrategy().plan(platform, N)
    scaled = het.detail["scaled_partition"]
    send_size = np.empty(p)
    compute = np.empty(p)
    w = platform.cycle_times
    c = platform.comm_times
    for rect in scaled:
        send_size[rect.owner] = rect.half_perimeter
        compute[rect.owner] = rect.w * rect.h * w[rect.owner]

    best: OnePortPlan | None = None
    for sigma in permutations(range(p)):
        send_end = np.empty(p)
        finish = np.empty(p)
        t = 0.0
        for idx in sigma:
            t += c[idx] * send_size[idx]
            send_end[idx] = t
            finish[idx] = t + compute[idx]
        plan = OnePortPlan(
            order=tuple(sigma),
            send_end=send_end,
            finish=finish,
            makespan=float(finish.max()),
            comm_volume=float(send_size.sum()),
        )
        if best is None or plan.makespan < best.makespan - 1e-15:
            best = plan
    assert best is not None
    return best
