"""Benchmark for the load-test driver: sustained RPS against one server.

The operability tentpole's number: how much open-loop traffic the
stack (driver + wire + server + session) sustains on this host with a
clean verdict.  The target rate is set well above what one container
CPU serves comfortably, so ``achieved_rps`` measures the pipeline, not
the scheduler's politeness — if planning, the wire, or the driver
regress, fewer requests complete per wall-clock second and the metric
drops.

The run must also be *clean*: zero answered errors, zero transport
failures, and the client/server request-count cross-check matching
exactly — a loadtest that miscounts its own traffic measures nothing.

Two riders on the same harness:

- the *tracing tax*: the untraced throughput number above runs with
  tracing fully off, and the tracing layer's dormant cost (one
  context-var read per seam) must not move it — the trendline diff
  holds the regression under the tolerance.  A second, sampled run
  reports what 1-in-10 tracing costs, informationally.
- the *SLO search*: ``find_max_rps`` ramps + bisects a real server to
  the highest rate whose p99 holds an SLO, reported informationally
  (its absolute value is host noise; the probe ladder executing
  end-to-end is the point).

Emits ``BENCH {...}`` lines; ``scripts/check_bench.py`` diffs them
against ``BENCH_loadtest.json``.
"""

import json
import os

from repro.loadtest import find_max_rps, run_loadtest
from repro.service.server import PlanServer

TARGET_RPS = 240.0
DURATION_S = 2.0
THREADS = 8
SEED = 20130521


def test_loadtest_sustained_throughput():
    with PlanServer(backend="threaded", jobs=2) as server:
        report = run_loadtest(
            server.url,
            rps=TARGET_RPS,
            duration=DURATION_S,
            threads=THREADS,
            seed=SEED,
        )

    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "loadtest_throughput",
                "cpu_count": os.cpu_count() or 1,
                "target_rps": TARGET_RPS,
                "sent": report.sent,
                "achieved_rps": round(report.achieved_rps, 1),
                "p50_ms": report.p50_ms,
                "p99_ms": report.p99_ms,
                "schedule_lag_p99_ms": round(report.schedule_lag_p99_ms, 1),
                "wire": report.wire_profile,
            }
        )
    )

    # a dirty run measures nothing: the throughput number only counts
    # when every request succeeded and the books balance
    assert report.errors == 0, report.render()
    assert report.unavailable == 0, report.render()
    assert report.refused_429 == 0, report.render()
    assert report.server_check_ok, report.render()
    assert report.achieved_rps > 0


def test_loadtest_traced_throughput():
    """The same run with 1-in-10 sampling: what tracing costs, live."""
    with PlanServer(backend="threaded", jobs=2) as server:
        report = run_loadtest(
            server.url,
            rps=TARGET_RPS,
            duration=DURATION_S,
            threads=THREADS,
            seed=SEED,
            trace_sample=10,
        )

    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "loadtest_traced_throughput",
                "cpu_count": os.cpu_count() or 1,
                "target_rps": TARGET_RPS,
                "trace_sample": 10,
                "sent": report.sent,
                "sampled": len(report.client_spans),
                "achieved_rps": round(report.achieved_rps, 1),
                "p99_ms": report.p99_ms,
            }
        )
    )

    assert report.errors == 0, report.render()
    assert report.server_check_ok, report.render()
    assert report.client_spans, "sampling produced no client spans"


def test_slo_search_finds_a_sustainable_rate():
    """``find_max_rps`` ramps + bisects a live server under a real SLO."""
    with PlanServer(backend="threaded", jobs=2) as server:
        result = find_max_rps(
            server.url,
            slo_p99_ms=250.0,
            start_rps=40.0,
            duration=1.0,
            rounds=2,
            threads=THREADS,
            seed=SEED,
        )

    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "loadtest_slo_search",
                "cpu_count": os.cpu_count() or 1,
                "slo_p99_ms": result.slo_p99_ms,
                "max_rps": round(result.max_rps, 1),
                "probes": len(result.probes),
            }
        )
    )

    # the floor must hold on any host this runs on; the ceiling is
    # whatever the ramp + bisection found, recorded on the trendline
    assert result.found, result.render()
    assert result.max_rps >= 40.0
    assert result.probes[0].ok, result.render()
