"""Worker membership and liveness for the cluster coordinator.

The :class:`WorkerPool` is the coordinator's single source of truth
about its replicas: which exist, which are alive, and how loaded each
one is.  Liveness is heartbeat-driven from both directions:

* *pull* — a monitor thread probes every worker's ``/healthz`` each
  ``interval`` seconds; :attr:`max_missed` consecutive failures mark
  it dead, one success revives it (a restarted replica rejoins with no
  operator action).
* *push* — workers (or operators) may POST ``/workers/heartbeat`` to
  the coordinator, which resets the missed counter early and
  auto-registers unknown URLs.

Death is advisory, not terminal: a dead worker stays in the pool,
keeps being probed, and is simply excluded from dispatch until it
answers again.  The coordinator also calls :meth:`WorkerPool.mark_dead`
directly the moment a shipped batch hits a transport failure — waiting
out a heartbeat window mid-batch would stall clients for no reason.

Everything is guarded by one lock; methods never do I/O while holding
it (the monitor probes outside the lock), so pool state can be read
from request handler threads without hiccups.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


def normalize_worker_url(url: str) -> str:
    """The canonical form worker URLs are keyed by, everywhere.

    Registration, heartbeats, death marks and load accounting must all
    agree on one spelling — a coordinator passing ``http://h:1/`` where
    the worker registered as ``http://h:1`` would otherwise silently
    no-op ``mark_dead`` and leave a dead replica in dispatch.
    """
    return url.strip().rstrip("/")


@dataclass
class WorkerInfo:
    """One replica's membership record (mutated under the pool lock)."""

    id: int
    url: str
    registered_at: float
    last_seen: float
    alive: bool = True
    #: consecutive failed probes since the last success
    missed: int = 0
    #: items currently shipped to this worker
    inflight: int = 0
    #: items ever assigned (dispatch counter, for status/debugging)
    dispatched: int = 0
    #: transport failures observed against this worker
    failures: int = 0
    #: why the worker was last marked dead ("" while alive)
    reason: str = ""

    @property
    def load(self) -> int:
        return self.inflight

    def snapshot(self) -> Dict[str, object]:
        """JSON-able view for ``/cluster/status``."""
        return {
            "id": self.id,
            "url": self.url,
            "alive": self.alive,
            "missed": self.missed,
            "inflight": self.inflight,
            "dispatched": self.dispatched,
            "failures": self.failures,
            "reason": self.reason,
            "registered_at": round(self.registered_at, 3),
            "last_seen": round(self.last_seen, 3),
        }


@dataclass
class _Monitor:
    thread: threading.Thread
    stop: threading.Event = field(default_factory=threading.Event)


class WorkerPool:
    """Thread-safe registry of worker replicas with heartbeat liveness."""

    def __init__(self, *, max_missed: int = 2) -> None:
        if max_missed < 1:
            raise ValueError(f"max_missed must be >= 1, got {max_missed}")
        self.max_missed = int(max_missed)
        self._lock = threading.Lock()
        self._workers: Dict[str, WorkerInfo] = {}
        self._next_id = 1
        self._monitor: Optional[_Monitor] = None

    # -- membership ------------------------------------------------------

    def register(self, url: str) -> WorkerInfo:
        """Add a worker (idempotent by URL; re-registering revives it)."""
        url = normalize_worker_url(url)
        if not url.startswith(("http://", "https://")):
            raise ValueError(f"worker url must be http(s)://..., got {url!r}")
        now = time.time()
        with self._lock:
            info = self._workers.get(url)
            if info is None:
                info = WorkerInfo(
                    id=self._next_id,
                    url=url,
                    registered_at=now,
                    last_seen=now,
                )
                self._next_id += 1
                self._workers[url] = info
            else:
                info.alive = True
                info.missed = 0
                info.reason = ""
                info.last_seen = now
            return info

    def heartbeat(self, url: str) -> WorkerInfo:
        """Record one successful liveness signal (auto-registers)."""
        with self._lock:
            info = self._workers.get(normalize_worker_url(url))
        if info is None:
            return self.register(url)
        with self._lock:
            info.alive = True
            info.missed = 0
            info.reason = ""
            info.last_seen = time.time()
            return info

    def mark_dead(self, url: str, reason: str = "") -> None:
        """Exclude a worker from dispatch until it heartbeats again."""
        with self._lock:
            info = self._workers.get(normalize_worker_url(url))
            if info is not None and info.alive:
                info.alive = False
                info.reason = reason or "marked dead"
                info.failures += 1

    # -- load accounting -------------------------------------------------

    def acquire(self, url: str, n: int = 1) -> None:
        """Record ``n`` items shipped to a worker."""
        with self._lock:
            info = self._workers.get(normalize_worker_url(url))
            if info is not None:
                info.inflight += n
                info.dispatched += n

    def release(self, url: str, n: int = 1) -> None:
        with self._lock:
            info = self._workers.get(normalize_worker_url(url))
            if info is not None:
                info.inflight = max(0, info.inflight - n)

    # -- views -----------------------------------------------------------

    def workers(self) -> List[WorkerInfo]:
        with self._lock:
            return list(self._workers.values())

    def alive(self) -> List[WorkerInfo]:
        with self._lock:
            return [w for w in self._workers.values() if w.alive]

    def urls(self) -> List[str]:
        with self._lock:
            return list(self._workers)

    def snapshot(self) -> Dict[str, object]:
        """JSON-able pool view for ``/cluster/status``."""
        with self._lock:
            workers = [w.snapshot() for w in self._workers.values()]
        return {
            "workers": workers,
            "alive": sum(1 for w in workers if w["alive"]),
            "total": len(workers),
            "max_missed": self.max_missed,
        }

    # -- heartbeat monitor -----------------------------------------------

    def start_monitor(
        self, probe: Callable[[str], bool], interval: float
    ) -> None:
        """Probe every worker each ``interval`` seconds on a daemon thread.

        ``probe(url)`` returns truthy when the worker answered its
        health check; it runs *outside* the pool lock, so a hung worker
        only delays the monitor, never request handling.  A worker
        failing :attr:`max_missed` consecutive probes is marked dead;
        any success revives it immediately.
        """
        if self._monitor is not None:
            return
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        monitor = _Monitor(
            thread=threading.Thread(
                target=self._monitor_loop,
                name="repro-cluster-heartbeat",
                daemon=True,
            )
        )
        self._monitor = monitor
        self._probe = probe
        self._interval = float(interval)
        monitor.thread.start()

    def _monitor_loop(self) -> None:
        monitor = self._monitor
        assert monitor is not None
        while not monitor.stop.wait(self._interval):
            for url in self.urls():
                try:
                    ok = bool(self._probe(url))
                except Exception:
                    ok = False
                with self._lock:
                    info = self._workers.get(url)
                    if info is None:
                        continue
                    if ok:
                        info.alive = True
                        info.missed = 0
                        info.reason = ""
                        info.last_seen = time.time()
                    else:
                        info.missed += 1
                        if info.missed >= self.max_missed and info.alive:
                            info.alive = False
                            info.reason = (
                                f"{info.missed} consecutive missed heartbeats"
                            )

    def stop_monitor(self) -> None:
        monitor = self._monitor
        if monitor is None:
            return
        monitor.stop.set()
        monitor.thread.join(timeout=5)
        self._monitor = None
