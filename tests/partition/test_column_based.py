"""Tests for repro.partition.column_based — PERI-SUM DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.column_based import (
    column_groups,
    peri_sum_cost,
    peri_sum_partition,
)
from repro.partition.lower_bound import peri_sum_lower_bound

areas_lists = st.lists(
    st.floats(min_value=1e-3, max_value=1.0), min_size=1, max_size=20
).map(lambda v: (np.asarray(v) / np.sum(v)))


class TestColumnGroups:
    def test_single_area_one_group(self):
        assert column_groups([1.0]) == [[0]]

    def test_groups_partition_indices(self):
        areas = np.array([0.1, 0.2, 0.3, 0.4])
        groups = column_groups(areas)
        flat = sorted(i for g in groups for i in g)
        assert flat == [0, 1, 2, 3]

    def test_equal_areas_square_grid(self):
        """Four equal areas → 2 columns of 2 (the 2x2 grid)."""
        groups = column_groups([0.25] * 4)
        assert sorted(len(g) for g in groups) == [2, 2]

    def test_nine_equal_areas_three_columns(self):
        groups = column_groups([1.0 / 9] * 9)
        assert sorted(len(g) for g in groups) == [3, 3, 3]

    def test_groups_are_contiguous_in_sorted_order(self):
        rng = np.random.default_rng(0)
        areas = rng.dirichlet(np.ones(12))
        groups = column_groups(areas)
        order = np.argsort(areas, kind="stable").tolist()
        flat = [i for g in groups for i in g]
        assert flat == order


class TestPeriSumPartition:
    @given(areas=areas_lists)
    @settings(max_examples=60, deadline=None)
    def test_partition_is_exact(self, areas):
        """Validity + prescribed areas, property-tested."""
        part = peri_sum_partition(areas)
        part.validate(expected_areas=areas)  # raises on violation

    @given(areas=areas_lists)
    @settings(max_examples=60, deadline=None)
    def test_guarantee_holds(self, areas):
        """C_hat <= 1 + (5/4) LB <= (7/4) LB — §4.1.2's guarantee."""
        part = peri_sum_partition(areas)
        lb = peri_sum_lower_bound(areas)
        cost = part.sum_half_perimeters
        assert cost >= lb - 1e-9
        assert cost <= 1.0 + 1.25 * lb + 1e-9
        assert cost <= 1.75 * lb + 1e-9

    def test_perfect_square_case(self):
        """p = k² equal areas: optimal grid, cost = 2√p = LB."""
        p = 16
        part = peri_sum_partition([1.0 / p] * p)
        assert part.sum_half_perimeters == pytest.approx(2 * np.sqrt(p))

    def test_single_processor(self):
        part = peri_sum_partition([1.0])
        assert part.sum_half_perimeters == pytest.approx(2.0)

    def test_observed_quality_near_lb(self):
        """§4.3: observed within ~2% of the bound for realistic speeds."""
        rng = np.random.default_rng(1)
        for _ in range(5):
            speeds = rng.uniform(1, 100, 50)
            areas = speeds / speeds.sum()
            part = peri_sum_partition(areas)
            ratio = part.sum_half_perimeters / peri_sum_lower_bound(areas)
            assert ratio < 1.05

    def test_owner_round_trip(self):
        areas = np.array([0.5, 0.3, 0.2])
        owners = peri_sum_partition(areas).by_owner()
        for i, a in enumerate(areas):
            assert owners[i].area == pytest.approx(a)

    def test_rejects_non_normalized(self):
        with pytest.raises(ValueError):
            peri_sum_partition([0.5, 0.6])


class TestPeriSumCost:
    @given(areas=areas_lists)
    @settings(max_examples=40, deadline=None)
    def test_cost_matches_geometry(self, areas):
        """The DP-only cost equals the built partition's objective."""
        cost = peri_sum_cost(areas)
        part = peri_sum_partition(areas)
        assert cost == pytest.approx(part.sum_half_perimeters, rel=1e-9)

    def test_dominates_strip_layout(self):
        rng = np.random.default_rng(2)
        areas = rng.dirichlet(np.ones(10))
        assert peri_sum_cost(areas) <= 10 + 1 + 1e-9  # strip costs p+1
