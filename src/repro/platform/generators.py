"""Random speed profiles used by the paper's evaluation (§4.3).

Figure 4 generates processing speeds under three policies:

* **homogeneous** — all speeds equal (Figure 4a),
* **uniform** — i.i.d. uniform on ``[1, 100]`` (Figure 4b),
* **lognormal** — i.i.d. log-normal with ``µ = 0, σ = 1`` (Figure 4c).

We add the **half-fast** bimodal profile from §4.1.3's closing example
(half the workers at speed 1, half at speed ``k``), which drives the
:math:`\\rho \\ge (1+k)/(1+\\sqrt{k})` bound experiment.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_integer, check_positive

SpeedModel = Callable[[int, np.random.Generator], np.ndarray]


def homogeneous_speeds(
    p: int, rng: SeedLike = None, speed: float = 1.0
) -> np.ndarray:
    """All ``p`` workers at the same ``speed`` (Figure 4a profile)."""
    check_integer(p, "p", minimum=1)
    check_positive(speed, "speed")
    return np.full(p, float(speed))


def uniform_speeds(
    p: int, rng: SeedLike = None, low: float = 1.0, high: float = 100.0
) -> np.ndarray:
    """I.i.d. speeds uniform on ``[low, high]`` (Figure 4b profile)."""
    check_integer(p, "p", minimum=1)
    if not (0 < low < high):
        raise ValueError(f"need 0 < low < high, got low={low}, high={high}")
    return make_rng(rng).uniform(low, high, size=p)


def lognormal_speeds(
    p: int, rng: SeedLike = None, mu: float = 0.0, sigma: float = 1.0
) -> np.ndarray:
    """I.i.d. log-normal speeds, ``µ=0, σ=1`` by default (Figure 4c)."""
    check_integer(p, "p", minimum=1)
    check_positive(sigma, "sigma")
    return make_rng(rng).lognormal(mean=mu, sigma=sigma, size=p)


def half_fast_speeds(
    p: int, rng: SeedLike = None, k: float = 4.0, slow: float = 1.0
) -> np.ndarray:
    """Half the workers at ``slow``, half at ``k * slow`` (§4.1.3 example).

    For odd ``p`` the extra worker is slow.  Returned sorted ascending,
    matching the paper's convention :math:`s_1 \\le \\dots \\le s_p`.
    """
    check_integer(p, "p", minimum=1)
    check_positive(k, "k")
    check_positive(slow, "slow")
    n_fast = p // 2
    n_slow = p - n_fast
    return np.concatenate(
        [np.full(n_slow, float(slow)), np.full(n_fast, float(slow * k))]
    )


SPEED_MODELS: Dict[str, SpeedModel] = {
    "homogeneous": lambda p, rng: homogeneous_speeds(p, rng),
    "uniform": lambda p, rng: uniform_speeds(p, rng),
    "lognormal": lambda p, rng: lognormal_speeds(p, rng),
    "half-fast": lambda p, rng: half_fast_speeds(p, rng),
}


def make_speeds(model: str, p: int, rng: SeedLike = None) -> np.ndarray:
    """Dispatch by model name; names mirror the Figure 4 captions."""
    try:
        fn = SPEED_MODELS[model]
    except KeyError:
        raise ValueError(
            f"unknown speed model {model!r}; available: {sorted(SPEED_MODELS)}"
        ) from None
    return fn(p, make_rng(rng))
