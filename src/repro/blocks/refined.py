"""The ``Comm_hom/k`` refinement strategy (§4.3).

§4.3: "we introduce the Comm_hom/k strategy, that divides the block-size
by k for increasing values of k until an acceptable load-balance is
reached.  In our simulations, the stopping criterion for this process is
when e ≤ 1%."  Smaller blocks balance better (the greedy gap is one
block's duration) but ship more data (volume grows linearly in ``k``) —
this trade-off is what makes ``Comm_hom/k`` land 15–30× above the lower
bound on heterogeneous platforms while staying optimal on homogeneous
ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.blocks.homogeneous import HomogeneousBlocksStrategy
from repro.blocks.metrics import StrategyResult, validate_batch
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_positive


@register(
    "strategy",
    "hom/k",
    summary="Refined Homogeneous Blocks: subdivide until e <= target (§4.3)",
    section="§4.3",
)
@dataclass(frozen=True)
class RefinedHomogeneousStrategy:
    """Sweep the subdivision ``k`` until the imbalance target is met.

    Parameters
    ----------
    imbalance_target:
        The paper's ``e`` threshold; 1% by default.
    max_subdivision:
        Safety cap on ``k``; if reached, the best (lowest-``e``) plan
        seen is returned with ``detail["converged"] = False``.
    """

    imbalance_target: float = 0.01
    max_subdivision: int = 64

    def __post_init__(self) -> None:
        check_positive(self.imbalance_target, "imbalance_target")
        if self.max_subdivision < 1:
            raise ValueError("max_subdivision must be >= 1")

    def plan(self, platform: StarPlatform, N: float) -> StrategyResult:
        """Increase ``k`` from 1; stop at the first plan with
        ``e <= imbalance_target``."""
        best: StrategyResult | None = None
        for k in range(1, self.max_subdivision + 1):
            plan = HomogeneousBlocksStrategy(subdivision=k).plan(platform, N)
            if best is None or plan.imbalance < best.imbalance:
                best = plan
            if plan.imbalance <= self.imbalance_target:
                return self._label(plan, converged=True)
        assert best is not None
        return self._label(best, converged=False)

    def plan_batch(
        self,
        platforms: Sequence["StarPlatform"],
        Ns: Sequence[float],
    ) -> List[StrategyResult]:
        """Run the ``k``-refinement loop over a whole batch at once.

        Each round plans every still-unconverged request through
        :meth:`HomogeneousBlocksStrategy.plan_batch` (which shares one
        demand-driven schedule per distinct platform), then retires the
        requests that reached the imbalance target — per-request
        semantics are exactly the scalar loop's, only the inner planning
        is fused.  Requests converge (or exhaust ``max_subdivision``)
        independently, so a batch mixing platforms never changes any
        member's chosen ``k``.
        """
        validate_batch(platforms, Ns)
        results: List[StrategyResult | None] = [None] * len(platforms)
        best: dict[int, StrategyResult] = {}
        remaining = list(range(len(platforms)))
        for k in range(1, self.max_subdivision + 1):
            plans = HomogeneousBlocksStrategy(subdivision=k).plan_batch(
                [platforms[i] for i in remaining],
                [Ns[i] for i in remaining],
            )
            still: List[int] = []
            for i, plan in zip(remaining, plans):
                if i not in best or plan.imbalance < best[i].imbalance:
                    best[i] = plan
                if plan.imbalance <= self.imbalance_target:
                    results[i] = self._label(plan, converged=True)
                else:
                    still.append(i)
            remaining = still
            if not remaining:
                break
        for i in remaining:
            results[i] = self._label(best[i], converged=False)
        return results  # type: ignore[return-value]

    @staticmethod
    def _label(plan: StrategyResult, converged: bool) -> StrategyResult:
        detail = dict(plan.detail)
        detail["converged"] = converged
        return StrategyResult(
            strategy="hom/k",
            N=plan.N,
            speeds=plan.speeds,
            comm_volume=plan.comm_volume,
            finish_times=plan.finish_times,
            imbalance=plan.imbalance,
            detail=detail,
        )
