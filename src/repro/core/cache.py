"""Plan storage: content-keyed caches for :class:`PlannerSession`.

The Figure-4 protocol answers the *same* planning query many times
(100 trials × several strategies × repeated renders), and a service
front-end answers many identical user queries.  Planning is pure —
a (platform, N, strategy, params) tuple always yields the same plan —
so results are memoised under a content key:

    platform fingerprint × N × strategy (+ factory origin) × params

where *params* are first filtered down to what the strategy actually
accepts (:func:`repro.core.pipeline.supported_kwargs`).  Two requests
that differ only in a parameter the strategy ignores therefore share
one entry — e.g. ``imbalance_target`` never fragments the ``het``
cache.

Storage is pluggable behind the :class:`PlanStore` protocol (registry
kind ``"cache"``):

* :class:`MemoryPlanCache` (``memory``) — the in-process LRU; entries
  beyond ``max_entries`` are evicted oldest-first and counted.
* :class:`SQLitePlanCache` (``sqlite``) — a durable, shareable store:
  one row per content key (:func:`encode_key` digest), the pickled
  :class:`~repro.core.pipeline.PlanResult` as the value, and hit/miss
  counters persisted alongside so ``repro cache stats`` reports across
  runs.  Safe for concurrent readers/writers across threads *and*
  processes (WAL journal, per-thread connections, single-statement
  atomic updates).
* :class:`TieredPlanCache` (``tiered``) — memory front, a durable or
  remote store behind: reads try memory first and *promote* back-tier
  hits, writes go through to both tiers, and
  :attr:`CacheStats.tier_hits` breaks hits down per tier.
* ``http`` (:class:`repro.service.client.HTTPPlanCache`) — a plan
  server's store, shared by many client processes; spec
  ``http://HOST:PORT``, composable as ``tiered:http://HOST:PORT``.

:class:`ThreadSafePlanStore` wraps any store in an RLock for callers
that drive one session from many threads (the plan server does).

Any store can warm any other (entries are path- and tier-agnostic), so
a killed 100-trial sweep restarted against the same sqlite file
replays its finished points as disk hits — see
``run_figure4(cache="sqlite:...")`` and the kill/resume integration
test.  :func:`cache_from_spec` parses the CLI's ``--cache`` specs
(``memory[:SIZE]`` / ``sqlite:PATH`` / ``tiered:PATH``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Hashable,
    Mapping,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.core.pipeline import PlanRequest, PlanResult, supported_kwargs
from repro.registry import register
from repro.util.tables import format_table


def freeze_value(value: Any) -> Hashable:
    """A hashable, content-equal stand-in for a parameter value.

    Mappings and sequences are frozen recursively (mappings sorted by
    key); numpy arrays hash by shape + raw bytes; anything else
    unhashable falls back to its ``repr``.
    """
    if isinstance(value, (str, bytes, int, float, bool, type(None))):
        return value
    if isinstance(value, Mapping):
        return tuple(
            (k, freeze_value(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, np.ndarray):
        return (value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return tuple(freeze_value(v) for v in items)
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def frozen_effective_params(
    request: PlanRequest, factory: Callable[..., Any]
) -> Hashable:
    """Hashable form of the params ``factory`` would actually receive.

    Filters the request's params down to what the factory's signature
    accepts, then freezes them sorted-by-name.  This is the *shared*
    definition of parameter identity: the plan cache keys on it and the
    vectorised path groups on it, so requests that share a cache entry
    always share a vector group (and vice versa).
    """
    effective = supported_kwargs(factory, request.params)
    return tuple((k, freeze_value(v)) for k, v in sorted(effective.items()))


def plan_cache_key(
    request: PlanRequest, factory: Callable[..., Any]
) -> Hashable:
    """The content key one request caches under.

    ``factory`` is the resolved strategy factory; its origin joins the
    key so re-registering a strategy name with a different factory
    (plugin replacement) does not serve stale plans, and its signature
    decides which params participate
    (:func:`frozen_effective_params`).
    """
    origin = (
        f"{getattr(factory, '__module__', '?')}."
        f"{getattr(factory, '__qualname__', getattr(factory, '__name__', '?'))}"
    )
    return (
        request.platform.fingerprint(),
        float(request.N),
        request.strategy,
        origin,
        frozen_effective_params(request, factory),
    )


def encode_key(key: Hashable) -> str:
    """A stable hex digest of a plan content key, for durable stores.

    For built-in strategies, content keys are nested tuples of
    primitives (str / bytes / float / int / bool / None — see
    :func:`freeze_value`), whose ``repr`` is deterministic across
    processes and Python runs, unlike ``hash()`` (salted per process).
    The sha256 of that repr is therefore usable as a database primary
    key shared between processes and sessions.

    Limitation: a custom param value that survives
    :func:`freeze_value` as a bare object falls back to its ``repr``
    here — if that repr embeds a memory address (the ``object``
    default), the digest differs per process and durable lookups
    degrade to misses (never wrong hits).  Plugin params that should
    cache across restarts need a content-stable ``repr``.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Cumulative hit/miss counters plus current occupancy.

    ``max_entries == 0`` means the store is unbounded (durable
    backends never evict).  ``tier_hits`` is populated by tiered
    stores: a ``(tier name, hits)`` breakdown of where the hits landed
    — e.g. a resumed sweep shows its replayed points as ``disk`` hits.
    """

    hits: int
    misses: int
    entries: int
    max_entries: int
    evictions: int
    #: per-tier hit breakdown, e.g. (("memory", 40), ("disk", 2))
    tier_hits: Tuple[Tuple[str, int], ...] = ()

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def render(self) -> str:
        capacity = str(self.max_entries) if self.max_entries else "unbounded"
        table = format_table(
            ["lookups", "hits", "misses", "hit rate", "entries", "evictions"],
            [
                [
                    self.lookups,
                    self.hits,
                    self.misses,
                    f"{100 * self.hit_rate:.1f}%",
                    f"{self.entries}/{capacity}",
                    self.evictions,
                ]
            ],
            title="Plan cache statistics",
        )
        if self.tier_hits:
            breakdown = ", ".join(
                f"{name}={hits}" for name, hits in self.tier_hits
            )
            table += f"\ntier hits: {breakdown}"
        return table


@runtime_checkable
class PlanStore(Protocol):
    """What a session needs from a plan cache, wherever it lives.

    Implementations must make ``get``/``put`` safe for whatever
    concurrency they advertise (the built-in memory store is
    single-thread by contract — sessions do all cache traffic on the
    calling thread; the sqlite store is also safe across threads and
    processes).  ``stats`` must count every ``get`` as exactly one hit
    or miss so ``hits + misses == lookups`` holds under interleaving.
    """

    def get(self, key: Hashable) -> PlanResult | None: ...

    def put(self, key: Hashable, result: PlanResult) -> None: ...

    def clear(self) -> None: ...

    def __len__(self) -> int: ...

    @property
    def stats(self) -> CacheStats: ...


class BasePlanStore:
    """Shared helpers: session keying and a no-op ``close``."""

    def key_for(
        self, request: PlanRequest, factory: Callable[..., Any]
    ) -> Hashable:
        """The content key (:func:`plan_cache_key`) a session uses."""
        return plan_cache_key(request, factory)

    def close(self) -> None:
        """Release any held resources (idempotent; memory stores no-op)."""


@register(
    "cache",
    "memory",
    summary="In-process LRU plan cache (per-session, non-persistent)",
)
class MemoryPlanCache(BasePlanStore):
    """An LRU map from plan content keys to :class:`PlanResult`.

    Not thread-safe by itself; sessions perform all cache traffic on
    the calling thread (backends only plan misses), so no lock is
    needed there.  Entries are path-agnostic: scalar and vectorised
    planning produce interchangeable results (the vectorisation
    equivalence contract), so a cache may be warmed by either and
    shared between sessions::

        shared = MemoryPlanCache(max_entries=10_000)
        a = PlannerSession(cache=shared)
        b = PlannerSession(cache=shared, backend="threaded")

    ``put`` evicts least-recently-used entries beyond ``max_entries``
    and counts them in ``stats.evictions``; evictions never touch the
    hit/miss counters.  ``clear()`` drops every entry *and* resets all
    statistics to zero.  ``key_for`` exposes the content key (platform
    fingerprint × N × strategy + factory origin × effective params)
    for external stores that want to mirror the session keying.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[Hashable, PlanResult] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> PlanResult | None:
        """The cached result for ``key``, counting the hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, result: PlanResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset all statistics."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            entries=len(self._entries),
            max_entries=self.max_entries,
            evictions=self._evictions,
        )


#: the historical name; PR-2 code constructed ``PlanCache()`` directly
PlanCache = MemoryPlanCache


#: export file magic, checked BEFORE any unpickling so ``repro cache
#: import`` rejects files that are not exports without executing them
_EXPORT_MAGIC = b"repro-plan-cache:v1\n"
_EXPORT_FORMAT = "repro-plan-cache"
_EXPORT_VERSION = 1


@register(
    "cache",
    "sqlite",
    summary="Durable sqlite-backed plan cache, shareable across processes",
)
class SQLitePlanCache(BasePlanStore):
    """A durable plan store: one sqlite file, shareable and resumable.

    One row per content key — the :func:`encode_key` digest as primary
    key, the pickled :class:`PlanResult` as the value — plus persisted
    hit/miss counters, so statistics survive the process that earned
    them and ``repro cache stats PATH`` reports across runs.

    Concurrency: the journal runs in WAL mode (readers never block the
    writer), every connection waits ``timeout`` seconds on a locked
    database instead of failing, and each mutation is a single
    atomic statement (``INSERT OR REPLACE`` / one-row ``UPDATE``), so
    interleaved ``get``/``put`` traffic from many threads *or* many
    processes loses no writes and keeps ``hits + misses`` equal to the
    number of ``get`` calls.  Connections are per-thread (sqlite
    objects must not cross threads) and re-opened after a fork.

    The store is unbounded — durable caches are shared working sets,
    not working memories — so ``stats.max_entries`` is 0 and nothing is
    ever evicted; ``clear()`` (or ``repro cache clear``) is the
    explicit reset.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS plans (
            key        TEXT PRIMARY KEY,
            value      BLOB NOT NULL,
            created_at REAL NOT NULL,
            last_used  REAL NOT NULL
        );
        CREATE TABLE IF NOT EXISTS stats (
            name  TEXT PRIMARY KEY,
            value INTEGER NOT NULL
        );
        INSERT OR IGNORE INTO stats (name, value) VALUES ('hits', 0);
        INSERT OR IGNORE INTO stats (name, value) VALUES ('misses', 0);
    """

    def __init__(self, path: str | Path, *, timeout: float = 30.0) -> None:
        self.path = str(Path(path).expanduser())
        self.timeout = float(timeout)
        self._local = threading.local()
        parent = Path(self.path).parent
        if str(parent) not in ("", "."):
            parent.mkdir(parents=True, exist_ok=True)
        self._connection().executescript(self._SCHEMA)

    # -- connection management -------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """This thread's connection, reopened after thread start or fork."""
        con = getattr(self._local, "con", None)
        if con is not None and getattr(self._local, "pid", None) == os.getpid():
            return con
        con = sqlite3.connect(
            self.path, timeout=self.timeout, isolation_level=None
        )
        con.execute("PRAGMA journal_mode=WAL")
        con.execute(f"PRAGMA busy_timeout={int(self.timeout * 1000)}")
        con.execute("PRAGMA synchronous=NORMAL")
        self._local.con = con
        self._local.pid = os.getpid()
        return con

    def close(self) -> None:
        """Close this thread's connection (others close on GC)."""
        con = getattr(self._local, "con", None)
        if con is not None:
            con.close()
            self._local.con = None

    # -- PlanStore --------------------------------------------------------

    def __len__(self) -> int:
        row = self._connection().execute("SELECT COUNT(*) FROM plans").fetchone()
        return int(row[0])

    def _count(self, name: str) -> None:
        self._connection().execute(
            "UPDATE stats SET value = value + 1 WHERE name = ?", (name,)
        )

    def get(self, key: Hashable) -> PlanResult | None:
        # hits touch only the counter, not the row: the store never
        # evicts, so per-hit recency writes would buy nothing and cost
        # a write transaction on the hot (shared, multi-reader) path
        digest = encode_key(key)
        row = self._connection().execute(
            "SELECT value FROM plans WHERE key = ?", (digest,)
        ).fetchone()
        if row is None:
            self._count("misses")
            return None
        self._count("hits")
        return pickle.loads(row[0])

    def put(self, key: Hashable, result: PlanResult) -> None:
        now = time.time()
        self._connection().execute(
            "INSERT OR REPLACE INTO plans (key, value, created_at, last_used)"
            " VALUES (?, ?, ?, ?)",
            (
                encode_key(key),
                pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
                now,
                now,
            ),
        )

    def clear(self) -> None:
        """Drop every entry and zero the persisted statistics."""
        con = self._connection()
        con.execute("DELETE FROM plans")
        con.execute("UPDATE stats SET value = 0")

    @property
    def stats(self) -> CacheStats:
        con = self._connection()
        counters = dict(con.execute("SELECT name, value FROM stats"))
        return CacheStats(
            hits=int(counters.get("hits", 0)),
            misses=int(counters.get("misses", 0)),
            entries=len(self),
            max_entries=0,
            evictions=0,
        )

    # -- portability (repro cache export / import) ------------------------

    def export_file(self, destination: str | Path) -> int:
        """Write every row to a portable export; returns the row count.

        The file is a magic header followed by a pickled payload with
        a format marker and version, and raw ``(digest, blob)`` rows —
        no plan is unpickled in transit.
        """
        rows = self._connection().execute(
            "SELECT key, value, created_at, last_used FROM plans"
        ).fetchall()
        payload = {
            "format": _EXPORT_FORMAT,
            "version": _EXPORT_VERSION,
            "rows": rows,
        }
        with open(destination, "wb") as fh:
            fh.write(_EXPORT_MAGIC)
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return len(rows)

    def import_file(self, source: str | Path) -> int:
        """Merge an exported payload into this store; returns rows merged.

        The magic header is checked *before* any unpickling, so a file
        that is not a plan-cache export is rejected without executing
        anything from it.  (A pickle is still a pickle: only import
        exports from sources you trust.)  Imported rows overwrite
        same-key rows — plans are pure, so any two values under one
        content key are interchangeable.
        """
        with open(source, "rb") as fh:
            magic = fh.read(len(_EXPORT_MAGIC))
            if magic != _EXPORT_MAGIC:
                raise ValueError(
                    f"{source!s} is not a repro plan-cache export "
                    "(missing header)"
                )
            try:
                payload = pickle.load(fh)
            except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
                raise ValueError(
                    f"{source!s} is not a repro plan-cache export ({exc})"
                ) from None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _EXPORT_FORMAT
        ):
            raise ValueError(
                f"{source!s} is not a repro plan-cache export"
            )
        if payload.get("version") != _EXPORT_VERSION:
            raise ValueError(
                f"unsupported export version {payload.get('version')!r} "
                f"(expected {_EXPORT_VERSION})"
            )
        rows = payload.get("rows")
        if not isinstance(rows, list) or not all(
            isinstance(row, (tuple, list)) and len(row) == 4 for row in rows
        ):
            raise ValueError(
                f"{source!s} is not a repro plan-cache export (bad rows)"
            )
        try:
            self._connection().executemany(
                "INSERT OR REPLACE INTO plans"
                " (key, value, created_at, last_used) VALUES (?, ?, ?, ?)",
                rows,
            )
        except sqlite3.Error as exc:
            raise ValueError(
                f"{source!s} is not a repro plan-cache export ({exc})"
            ) from None
        return len(rows)


@register(
    "cache",
    "tiered",
    summary="Memory front + sqlite or http store behind (write-through)",
)
class TieredPlanCache(BasePlanStore):
    """Two-level store: a fast memory front over a durable back tier.

    * ``get`` tries memory first; a disk hit is *promoted* into memory
      so the hot working set converges to RAM speed while the full
      history stays on disk.
    * ``put`` writes through to both tiers, so a killed process loses
      nothing that was ever planned.
    * ``stats`` reports the combined view — a lookup is a hit if either
      tier had it — with the per-tier breakdown in
      :attr:`CacheStats.tier_hits`.

    Constructed from a path (fresh memory front, sqlite behind) or
    from two existing stores::

        TieredPlanCache("plans.db")
        TieredPlanCache(disk=warm_sqlite, memory=MemoryPlanCache(512))
    """

    def __init__(
        self,
        path: "str | Path | None" = None,
        *,
        memory: MemoryPlanCache | None = None,
        disk: "PlanStore | None" = None,
        max_entries: int = 4096,
    ) -> None:
        if disk is None:
            if path is None:
                raise ValueError(
                    "TieredPlanCache needs a sqlite path or a back-tier store"
                )
            if isinstance(path, str) and path.startswith(("http:", "https:")):
                # "tiered:http://HOST:PORT" — a local memory front over
                # a plan server's shared store (repro.service.client)
                disk = cache_from_spec(path)
            else:
                disk = SQLitePlanCache(path)
        self.memory = memory if memory is not None else MemoryPlanCache(max_entries)
        self.disk = disk

    def __len__(self) -> int:
        return len(self.disk)

    def get(self, key: Hashable) -> PlanResult | None:
        hit = self.memory.get(key)
        if hit is not None:
            return hit
        hit = self.disk.get(key)
        if hit is not None:
            # promote: the next lookup of a warm key stays in memory
            self.memory.put(key, hit)
        return hit

    def put(self, key: Hashable, result: PlanResult) -> None:
        self.memory.put(key, result)
        self.disk.put(key, result)

    def clear(self) -> None:
        self.memory.clear()
        self.disk.clear()

    def close(self) -> None:
        self.disk.close()

    @property
    def stats(self) -> CacheStats:
        mem = self.memory.stats
        disk = self.disk.stats
        # every tiered get is one memory lookup; the memory misses that
        # the disk answered become hits in the combined view
        return CacheStats(
            hits=mem.hits + disk.hits,
            misses=disk.misses,
            entries=disk.entries,
            max_entries=0,
            evictions=mem.evictions,
            tier_hits=(("memory", mem.hits), ("disk", disk.hits)),
        )


class ThreadSafePlanStore(BasePlanStore):
    """An RLock-serialised wrapper making any store safe to share.

    The built-in memory store is single-thread by contract (sessions do
    all cache traffic on the calling thread), but a *plan server* drives
    one session from many HTTP handler threads at once.  Wrapping the
    store serialises every ``get``/``put``/``stats`` so interleaved
    clients keep ``hits + misses == lookups`` and never corrupt the LRU
    order; stores that are already concurrency-safe (sqlite) lose
    nothing but a cheap lock acquisition.
    """

    def __init__(self, store: PlanStore) -> None:
        self.inner = store
        self._lock = threading.RLock()

    def get(self, key: Hashable) -> PlanResult | None:
        with self._lock:
            return self.inner.get(key)

    def put(self, key: Hashable, result: PlanResult) -> None:
        with self._lock:
            self.inner.put(key, result)

    def clear(self) -> None:
        with self._lock:
            self.inner.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.inner)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return self.inner.stats

    def close(self) -> None:
        with self._lock:
            closer = getattr(self.inner, "close", None)
            if closer is not None:
                closer()


def cache_from_spec(spec: "str | PlanStore") -> PlanStore:
    """Resolve a ``--cache`` spec to a store through the registry.

    Accepted forms (``repro list cache`` names the kinds):

    * ``memory`` or ``memory:SIZE`` — in-process LRU (SIZE entries);
    * ``sqlite:PATH`` — durable store at PATH;
    * ``tiered:PATH`` — memory front over a durable store at PATH;
    * ``http://HOST:PORT`` — a plan server's shared store
      (:class:`repro.service.client.HTTPPlanCache`); prefix with
      ``tiered:`` for a local memory front over it.

    An already-constructed store passes through unchanged, so APIs can
    accept ``cache="sqlite:plans.db"`` and ``cache=my_store`` alike.
    Malformed specs raise :class:`~repro.registry.RegistryError` — a
    *user* error the CLI reports without a traceback, like an unknown
    component name.
    """
    if not isinstance(spec, str):
        return spec
    from repro import registry
    from repro.registry import RegistryError

    name, _, arg = spec.partition(":")
    name = name or "memory"
    factory = registry.get("cache", name)  # unknown names fail clean here
    try:
        # a store whose constructor rejects the spec argument is a
        # user error, not a traceback: memory takes an integer size,
        # sqlite/tiered need a path, plugin stores declare their own
        # shape
        if name == "memory" and arg:
            try:
                max_entries = int(arg)
            except ValueError:
                raise ValueError(
                    f"memory cache size must be an integer, got {arg!r}"
                ) from None
            return factory(max_entries=max_entries)
        return factory(arg) if arg else factory()
    except (TypeError, ValueError) as exc:
        raise RegistryError(f"bad cache spec {spec!r}: {exc}") from None
