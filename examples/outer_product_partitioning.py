#!/usr/bin/env python3
"""Section 4.1 walkthrough: outer-product data distribution (Figure 2).

Compares the Homogeneous Blocks, refined Homogeneous Blocks and
Heterogeneous Blocks strategies on one platform, shows the per-worker
footprints behind Figure 2, and regenerates a small Figure-4 panel.

Run: ``python examples/outer_product_partitioning.py``
"""

import numpy as np

from repro import StarPlatform, compare_strategies
from repro.blocks.footprint import (
    assignment_footprints,
    demand_driven_grid_assignment,
)
from repro.experiments import run_figure4
from repro.util.tables import format_table


def main() -> None:
    # --- one instance, three strategies (a Figure-4 cell) --------------
    speeds = [1.0, 1.0, 2.0, 4.0, 12.0]
    platform = StarPlatform.from_speeds(speeds)
    cmp = compare_strategies(platform, N=10_000.0)
    print(cmp.summary())
    print()

    # --- Figure 2: what one worker must receive ------------------------
    # Homogeneous blocks: grid sized for the slowest worker; the fast
    # worker (speed 12) drains many scattered chunks.
    x1 = min(speeds) / sum(speeds)
    grid = int(round(1 / np.sqrt(x1)))
    counts = np.maximum(
        1, np.round(np.asarray(speeds) / min(speeds)).astype(int)
    )
    counts[-1] = grid * grid - counts[:-1].sum()  # give the rest to the fastest
    assignment = demand_driven_grid_assignment(counts, grid=grid)
    footprints = assignment_footprints(assignment, block_side=1 / grid)
    rows = [
        [
            platform[i].name,
            speeds[i],
            len(assignment[i]),
            footprints[i]["naive"],
            footprints[i]["footprint"],
        ]
        for i in range(len(speeds))
    ]
    print(
        format_table(
            ["worker", "speed", "#chunks", "shipped (no reuse)", "union footprint"],
            rows,
            title=(
                "Figure 2: Homogeneous Blocks ships each chunk's input "
                "independently; the union footprint is what a data-aware "
                "runtime would need (unit square scale):"
            ),
        )
    )
    het = cmp.plans["het"].detail["partition"]
    print(
        "\nHeterogeneous Blocks gives each worker ONE rectangle — "
        "footprint == shipped:"
    )
    for rect in sorted(het, key=lambda r: r.owner):
        print(
            f"  {platform[rect.owner].name}: {rect.w:.3f} x {rect.h:.3f} "
            f"(half-perimeter {rect.half_perimeter:.3f})"
        )
    print()

    # --- a small Figure-4(b) panel --------------------------------------
    print(
        run_figure4("uniform", processors=(10, 40, 100), trials=10).render()
    )


if __name__ == "__main__":
    main()
