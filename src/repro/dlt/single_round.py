"""Closed-form single-round DLT for linear loads.

This is the machinery whose success motivated the papers §2 refutes:
for *linear* loads, optimal allocations have closed forms and all
workers finish simultaneously.

Parallel links (the paper's model)
----------------------------------
Worker *i* starts receiving at 0, finishes receiving at
:math:`c_i \\alpha_i` and computing at :math:`(c_i + w_i)\\alpha_i`.
Minimising the makespan under :math:`\\sum \\alpha_i = N` yields

.. math:: \\alpha_i = \\frac{N / (c_i + w_i)}{\\sum_k 1/(c_k + w_k)},
          \\qquad T = \\frac{N}{\\sum_k 1/(c_k + w_k)}.

One-port model (classical DLT)
------------------------------
The master serves workers sequentially in an order :math:`\\sigma`; in
an optimal schedule every participating worker finishes at the same
time ``T`` and there is no idle time on the master's port, giving the
textbook recurrence (e.g. Bharadwaj et al. [9])

.. math:: (c_{\\sigma(1)} + w_{\\sigma(1)})\\,\\alpha_{\\sigma(1)} = T,
          \\qquad
          \\alpha_{\\sigma(j)} = \\alpha_{\\sigma(j-1)}
          \\frac{w_{\\sigma(j-1)}}{c_{\\sigma(j)} + w_{\\sigma(j)}} .

The chunk vector is then scaled so it sums to ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Allocation:
    """Result of a single-round DLT computation.

    ``amounts[i]`` is the data assigned to worker *i* (platform order,
    not service order); ``receive_end``/``finish`` are absolute times.
    """

    amounts: np.ndarray
    receive_end: np.ndarray
    finish: np.ndarray
    makespan: float
    model: str
    order: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        for name in ("amounts", "receive_end", "finish"):
            object.__setattr__(
                self, name, np.asarray(getattr(self, name), dtype=float)
            )

    @property
    def total(self) -> float:
        """Total data distributed, :math:`\\sum_i \\alpha_i`."""
        return float(self.amounts.sum())

    @property
    def idle_times(self) -> np.ndarray:
        """Per-worker idle time before the makespan, ``T - finish_i``.

        All-zero (to numerical precision) characterises optimal
        single-round schedules for linear loads.
        """
        return self.makespan - self.finish

    def efficiency(self, sequential_time: float) -> float:
        """Parallel efficiency versus a given sequential execution time."""
        check_positive(sequential_time, "sequential_time")
        p = self.amounts.size
        if self.makespan == 0:
            return 1.0
        return sequential_time / (p * self.makespan)


@register(
    "dlt_solver",
    "linear-parallel",
    summary="Closed-form optimal single round, linear load, parallel links",
)
def solve_linear_parallel(platform: StarPlatform, N: float) -> Allocation:
    """Optimal single-round allocation of a linear load, parallel links.

    Every worker finishes at :math:`T = N / \\sum_k 1/(c_k+w_k)`.
    """
    check_positive(N, "N")
    c = platform.comm_times
    w = platform.cycle_times
    inv = 1.0 / (c + w)
    T = N / inv.sum()
    amounts = T * inv
    receive_end = c * amounts
    finish = receive_end + w * amounts
    return Allocation(
        amounts=amounts,
        receive_end=receive_end,
        finish=finish,
        makespan=float(T),
        model="linear/parallel-links",
    )


@register(
    "dlt_solver",
    "linear-one-port",
    summary="Closed-form optimal single round, linear load, one-port model",
)
def solve_linear_one_port(
    platform: StarPlatform, N: float, order: Sequence[int] | None = None
) -> Allocation:
    """Optimal single-round one-port allocation for a given order.

    ``order`` defaults to serving faster-*links* first (non-decreasing
    :math:`c_i`), which is the optimal activation order for linear loads
    in the one-port model when all workers participate (see
    :mod:`repro.dlt.ordering` for the brute-force cross-check).
    """
    check_positive(N, "N")
    c = platform.comm_times
    w = platform.cycle_times
    p = platform.size
    if order is None:
        order = np.argsort(c, kind="stable")
    order = np.asarray(order, dtype=int)
    if sorted(order.tolist()) != list(range(p)):
        raise ValueError(f"order must be a permutation of 0..{p - 1}")

    # Unnormalised chunks via the textbook recurrence, then scale to N.
    raw = np.empty(p, dtype=float)
    first = order[0]
    raw[first] = 1.0 / (c[first] + w[first])
    for j in range(1, p):
        prev, cur = order[j - 1], order[j]
        raw[cur] = raw[prev] * w[prev] / (c[cur] + w[cur])
    amounts = raw * (N / raw.sum())

    receive_end = np.empty(p, dtype=float)
    t = 0.0
    for idx in order:
        t += c[idx] * amounts[idx]
        receive_end[idx] = t
    finish = receive_end + w * amounts
    return Allocation(
        amounts=amounts,
        receive_end=receive_end,
        finish=finish,
        makespan=float(finish.max()),
        model="linear/one-port",
        order=tuple(int(i) for i in order),
    )


@register(
    "dlt_solver",
    "equal-split",
    summary="Trivial N/p equal split baseline (parallel links)",
)
def equal_split(platform: StarPlatform, N: float) -> Allocation:
    """The trivial equal split ``N/p`` under parallel links.

    Optimal for homogeneous platforms (§2's setting); suboptimal
    otherwise — kept as the baseline the closed forms are compared to.
    """
    check_positive(N, "N")
    p = platform.size
    amounts = np.full(p, N / p)
    c = platform.comm_times
    w = platform.cycle_times
    receive_end = c * amounts
    finish = receive_end + w * amounts
    return Allocation(
        amounts=amounts,
        receive_end=receive_end,
        finish=finish,
        makespan=float(finish.max()),
        model="linear/equal-split",
    )
