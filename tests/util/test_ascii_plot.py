"""Tests for repro.util.ascii_plot."""

import pytest

from repro.util.ascii_plot import ascii_chart, figure4_chart


class TestAsciiChart:
    def test_basic_structure(self):
        out = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=30, height=8)
        lines = out.splitlines()
        assert len(lines) == 8 + 3  # grid + axis + x labels + legend
        assert "o=a" in lines[-1]

    def test_title_prepended(self):
        out = ascii_chart([1], {"a": [1.0]}, title="T")
        assert out.splitlines()[0] == "T"

    def test_multiple_series_distinct_glyphs(self):
        out = ascii_chart([1, 2], {"up": [1, 2], "down": [2, 1]})
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_extremes_plotted_on_borders(self):
        out = ascii_chart([0, 10], {"a": [0.0, 5.0]}, width=20, height=6)
        lines = out.splitlines()
        # max value in top grid row, min in bottom grid row
        assert "o" in lines[0]
        assert "o" in lines[5]

    def test_log_scale(self):
        out = ascii_chart([1, 2], {"a": [1.0, 1000.0]}, log_y=True)
        assert "1e+03" in out or "1000" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [0.0]}, log_y=True)

    def test_constant_series_ok(self):
        out = ascii_chart([1, 2], {"a": [5.0, 5.0]})
        assert "5" in out

    def test_size_validated(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]}, width=5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})

    def test_empty(self):
        assert ascii_chart([], {}) == "(empty chart)"

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [1.0] for i in range(9)}
        with pytest.raises(ValueError):
            ascii_chart([1], series)


class TestFigure4Chart:
    def test_renders_panel(self):
        from repro.experiments.figure4 import run_figure4

        result = run_figure4("uniform", processors=(10, 40), trials=3, seed=0)
        out = figure4_chart(result)
        assert "Figure 4" in out
        assert "o=het" in out and "+=hom/k" in out
