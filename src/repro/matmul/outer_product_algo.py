"""Per-step broadcast simulation of the outer-product matmul (Figure 3).

At step ``k`` of the ScaLAPACK-style algorithm, the owners of column
``k`` of A broadcast their pieces along their processor *rows*, and the
owners of row ``k`` of B broadcast along processor *columns*; every
processor then updates its C cells with one rank-1 contribution.  For a
processor owning a set of matrix cells, what it must *receive* at step
``k`` is:

* the A entries ``a[i, k]`` for every row ``i`` it owns — minus those
  it already stores (it owns cell ``(i, k)``);
* the B entries ``b[k, j]`` for every column ``j`` it owns — minus
  those it stores.

Summed over all N steps, the received volume per processor is
``N * (rows_i + cols_i) - owned_cells_A - owned_cells_B`` — i.e. the
half-perimeter sum scaled by N, minus the resident data.  This module
computes both the exact per-step account and the totals, for any
:class:`~repro.matmul.layouts.Layout`, which is how the library verifies
the §4.2 claim that matmul communication is proportional to the §4.1
half-perimeter objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matmul.layouts import Layout


@dataclass(frozen=True)
class OuterProductRun:
    """Communication account of a full N-step outer-product matmul."""

    n: int
    n_procs: int
    #: received volume per processor, all steps, A+B pieces
    received: np.ndarray
    #: volume each processor would receive if it re-fetched even the
    #: pieces it stores (the "no residency" MapReduce accounting)
    received_no_reuse: np.ndarray
    #: per-processor count of owned cells
    owned_cells: np.ndarray

    @property
    def total_received(self) -> float:
        return float(self.received.sum())

    @property
    def total_no_reuse(self) -> float:
        return float(self.received_no_reuse.sum())

    @property
    def reuse_savings(self) -> float:
        """Volume saved by keeping resident data: equals the total
        number of owned cells, counted once for A and once for B."""
        return self.total_no_reuse - self.total_received


def simulate_outer_product_matmul(layout: Layout) -> OuterProductRun:
    """Account every broadcast of the N-step algorithm under ``layout``.

    Exact (not asymptotic): iterates steps and uses the layout's
    ownership to subtract resident pieces.  Runs in ``O(N * p + N^2)``
    using the dense owner matrix.
    """
    n = layout.n
    owners = layout.owner_matrix()
    n_procs = int(owners.max()) + 1

    rows_count = np.zeros(n_procs, dtype=np.int64)  # |rows(proc)|
    cols_count = np.zeros(n_procs, dtype=np.int64)
    for proc in range(n_procs):
        rows_count[proc] = layout.rows_of(proc).size
        cols_count[proc] = layout.cols_of(proc).size

    # For each step k: processor proc needs rows_count[proc] A-entries
    # (column k restricted to its rows) and cols_count[proc] B-entries;
    # it already holds the entries of column k / row k that it owns.
    owned_in_col = np.zeros((n_procs, n), dtype=np.int64)
    owned_in_row = np.zeros((n_procs, n), dtype=np.int64)
    for k in range(n):
        col_owners, col_counts = np.unique(owners[:, k], return_counts=True)
        owned_in_col[col_owners, k] = col_counts
        row_owners, row_counts = np.unique(owners[k, :], return_counts=True)
        owned_in_row[row_owners, k] = row_counts

    needed_a = rows_count[:, None] - owned_in_col  # (proc, k)
    needed_b = cols_count[:, None] - owned_in_row
    if np.any(needed_a < 0) or np.any(needed_b < 0):
        raise RuntimeError("ownership accounting went negative — layout bug")

    received = needed_a.sum(axis=1) + needed_b.sum(axis=1)
    no_reuse = n * (rows_count + cols_count)
    owned_cells = np.bincount(owners.ravel(), minlength=n_procs)
    return OuterProductRun(
        n=n,
        n_procs=n_procs,
        received=received.astype(float),
        received_no_reuse=no_reuse.astype(float),
        owned_cells=owned_cells,
    )


def half_perimeter_volume(layout: Layout) -> float:
    """The §4.2 closed form: ``N × Σ_proc (rows + cols)``.

    For rectangle layouts this is ``N ×`` (sum of half-perimeters in
    index units); equals :attr:`OuterProductRun.total_no_reuse` exactly
    (asserted in tests).
    """
    n = layout.n
    total = 0
    owners = layout.owner_matrix()
    n_procs = int(owners.max()) + 1
    for proc in range(n_procs):
        total += layout.rows_of(proc).size + layout.cols_of(proc).size
    return float(n * total)
