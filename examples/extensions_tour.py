#!/usr/bin/env python3
"""Tour of the library's extensions beyond the paper's §1.2 model.

The paper deliberately works with the simplest platform (star, parallel
links, single round, no failures).  This example exercises the
machinery the paper points at but leaves out:

1. one-port shipping of the rectangle distribution (§3's "more
   complicated communication models" remark applied to §4);
2. multi-level tree platforms — the general form of the "single level
   tree network" of the critiqued papers — with the §2 result intact;
3. failures and speculative re-execution (§1.1's MapReduce traits);
4. the affinity-aware demand-driven scheduler proposed in the
   conclusion.

Run: ``python examples/extensions_tour.py``
"""

import numpy as np

from repro.blocks.one_port import plan_het_one_port
from repro.dlt.tree_solver import equivalent_rate, solve_tree
from repro.experiments.footprint import run_footprint_experiment
from repro.platform.star import StarPlatform
from repro.platform.tree import TreePlatform
from repro.simulate.demand_driven import uniform_tasks
from repro.simulate.failures import FailureEvent, run_with_failures


def main() -> None:
    # --- 1. one-port rectangle shipping ---------------------------------
    platform = StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])
    plan = plan_het_one_port(platform, N=10_000.0)
    print("One-port Heterogeneous Blocks (Jackson order):")
    print(f"  shipping order: {[platform[i].name for i in plan.order]}")
    print(
        f"  makespan {plan.makespan:,.0f} vs parallel-links "
        f"{plan.parallel_links_makespan:,.0f} "
        f"(+{100 * (plan.makespan / plan.parallel_links_makespan - 1):.1f}% "
        f"for serialised sends)"
    )
    print()

    # --- 2. trees --------------------------------------------------------
    tree = TreePlatform.balanced(depth=2, fanout=3, bandwidth=5.0)
    lin = solve_tree(tree, 1000.0)
    print(f"Tree platform ({tree.size} nodes, height {tree.height}):")
    print(
        f"  linear load: makespan {lin.makespan:.2f} "
        f"(= N / equivalent rate {equivalent_rate(tree.root):.3f})"
    )
    quad = solve_tree(tree, 1000.0, alpha=2.0)
    print(
        f"  quadratic load: the optimal relayed round covers only "
        f"{100 * quad.covered_work_fraction(1000.0):.1f}% of the work — "
        "no free lunch on trees either."
    )
    print()

    # --- 3. failures + speculation ---------------------------------------
    plat = StarPlatform.homogeneous(8)
    tasks = uniform_tasks(200, work=1.0, data=2.0)
    healthy = run_with_failures(plat, tasks)
    wounded = run_with_failures(
        plat, tasks, failures=[FailureEvent(worker=0, time=5.0)]
    )
    print("Fail-stop recovery (8 workers, 200 tasks, one death at t=5):")
    print(
        f"  makespan {healthy.makespan:.1f} -> {wounded.makespan:.1f}, "
        f"{len(wounded.reexecuted)} task(s) re-executed, "
        f"{wounded.wasted_executions} execution(s) wasted"
    )
    slow = np.ones(8)
    slow[0] = 10.0
    coarse = uniform_tasks(8, work=10.0)
    straggle = run_with_failures(plat, coarse, slowdown=slow)
    rescued = run_with_failures(plat, coarse, slowdown=slow, speculate=True)
    print(
        f"  straggler: makespan {straggle.makespan:.0f} -> "
        f"{rescued.makespan:.0f} with speculative backups"
    )
    print()

    # --- 4. affinity scheduling ------------------------------------------
    print(run_footprint_experiment().render())


if __name__ == "__main__":
    main()
