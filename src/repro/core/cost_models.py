"""Workload cost models.

A cost model maps a *chunk size* ``n`` (data units) to the amount of
*work* (computation units) that chunk requires.  A worker of cycle time
:math:`w_i` then spends :math:`w_i \\cdot \\text{work}(n)` wall-clock
seconds on it.  The whole point of the paper is how the shape of this
function interacts with divisibility:

* :class:`LinearCost` — classic DLT; chunks compose
  (``work(a+b) == work(a)+work(b)``).
* :class:`PowerLawCost` with :math:`\\alpha > 1` — the §2 negative
  result: splitting *destroys* work
  (``work(a)+work(b) < work(a+b)``), so a single distribution round only
  covers a :math:`1/P^{\\alpha-1}` fraction of the job.
* :class:`NLogNCost` — sorting; *almost* linear, residue
  :math:`\\log p/\\log N` (§3).

All models are vectorised over NumPy arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.registry import register
from repro.util.validation import check_nonnegative, check_positive

ArrayLike = Union[float, np.ndarray]


class CostModel(ABC):
    """Maps chunk size ``n`` (data units) → work (computation units)."""

    #: short identifier used in tables and traces
    name: str = "abstract"

    @abstractmethod
    def work(self, n: ArrayLike) -> ArrayLike:
        """Work required by a chunk of ``n`` data units."""

    def __call__(self, n: ArrayLike) -> ArrayLike:
        return self.work(n)

    @property
    def is_linear(self) -> bool:
        """Whether ``work`` is additive under splitting."""
        return False

    def split_loss(self, n: float, parts: int) -> float:
        """Work *lost* by splitting ``n`` into ``parts`` equal chunks.

        ``work(n) - parts * work(n/parts)``; zero iff the model is
        linear, positive for super-linear models (this is the "no free
        lunch"), negative for sub-linear ones.
        """
        check_nonnegative(n, "n")
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        return float(self.work(n) - parts * self.work(n / parts))

    def inverse(self, target: float, hi: float | None = None) -> float:
        """Chunk size whose work equals ``target`` (monotone bisection).

        Subclasses with closed forms override this.  Requires
        ``work`` to be continuous and non-decreasing with
        ``work(0) <= target``.
        """
        check_nonnegative(target, "target")
        if target == 0:
            return 0.0
        lo = 0.0
        if hi is None:
            hi = 1.0
            while self.work(hi) < target:
                hi *= 2.0
                if hi > 1e300:
                    raise ValueError("cost model never reaches target work")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.work(mid) < target:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(1.0, hi):
                break
        return 0.5 * (lo + hi)


@register("cost_model", "linear", section="§1")
@dataclass(frozen=True)
class LinearCost(CostModel):
    """``work(n) = rate * n`` — the classical divisible-load model."""

    rate: float = 1.0
    name: str = "linear"

    def __post_init__(self) -> None:
        check_positive(self.rate, "rate")

    def work(self, n: ArrayLike) -> ArrayLike:
        return self.rate * np.asarray(n, dtype=float)

    @property
    def is_linear(self) -> bool:
        return True

    def inverse(self, target: float, hi: float | None = None) -> float:
        check_nonnegative(target, "target")
        return target / self.rate


@register("cost_model", "affine")
@dataclass(frozen=True)
class AffineCost(CostModel):
    """``work(n) = latency + rate * n`` for ``n > 0`` (0 at ``n = 0``).

    Models a fixed per-chunk start-up cost; used by the multi-round
    scheduler to show the latency/pipelining trade-off.
    """

    rate: float = 1.0
    latency: float = 0.0
    name: str = "affine"

    def __post_init__(self) -> None:
        check_positive(self.rate, "rate")
        check_nonnegative(self.latency, "latency")

    def work(self, n: ArrayLike) -> ArrayLike:
        arr = np.asarray(n, dtype=float)
        out = self.latency + self.rate * arr
        return np.where(arr > 0, out, 0.0) if isinstance(arr, np.ndarray) else out

    @property
    def is_linear(self) -> bool:
        return self.latency == 0.0


@register("cost_model", "power-law", section="§2")
@dataclass(frozen=True)
class PowerLawCost(CostModel):
    """``work(n) = coeff * n**alpha`` — the §2 super-linear workload.

    ``alpha = 2`` is the paper's running example (outer product /
    quadratic loads, the model of Hung & Robertazzi [31,32] and Suresh et
    al. [33–35]); ``alpha = 3`` corresponds to matrix multiplication in
    terms of matrix *order*.
    """

    alpha: float = 2.0
    coeff: float = 1.0
    name: str = "power-law"

    def __post_init__(self) -> None:
        check_positive(self.alpha, "alpha")
        check_positive(self.coeff, "coeff")

    def work(self, n: ArrayLike) -> ArrayLike:
        return self.coeff * np.power(np.asarray(n, dtype=float), self.alpha)

    @property
    def is_linear(self) -> bool:
        return self.alpha == 1.0

    def inverse(self, target: float, hi: float | None = None) -> float:
        check_nonnegative(target, "target")
        return float((target / self.coeff) ** (1.0 / self.alpha))


@register("cost_model", "n-log-n", section="§3")
@dataclass(frozen=True)
class NLogNCost(CostModel):
    """``work(n) = coeff * n * log2(n)`` (0 for ``n <= 1``) — sorting.

    The §3 "almost linear" workload: super-additive, but with a residue
    that vanishes relative to the total (``log p / log N``).
    """

    coeff: float = 1.0
    name: str = "n-log-n"

    def __post_init__(self) -> None:
        check_positive(self.coeff, "coeff")

    def work(self, n: ArrayLike) -> ArrayLike:
        arr = np.asarray(n, dtype=float)
        safe = np.maximum(arr, 1.0)
        out = self.coeff * safe * np.log2(safe)
        if np.ndim(arr) == 0:
            return float(out)
        return out


@register("cost_model", "piecewise", section="§2")
@dataclass(frozen=True)
class PiecewiseCost(CostModel):
    """Piecewise-linear work through ``(n, work)`` breakpoints.

    Between breakpoints ``work`` interpolates linearly; beyond the last
    one it extrapolates the final segment's slope.  The default models
    the classic cache knee: unit work per data unit while a chunk fits
    (``n <= 4096``), four units per data unit once it spills — a
    *super-additive* workload (splitting a big chunk into cache-sized
    ones genuinely reduces total work), i.e. the §2 shape realised as a
    table instead of a formula.  Registered the decorator-only way: the
    class plus ``@register`` is its entire integration — ``repro list
    cost_model``, ``registry.create("cost_model", "piecewise")`` and
    ``repro compare --cost-model piecewise`` all pick it up from here.
    """

    breakpoints: tuple = ((0.0, 0.0), (4096.0, 4096.0), (16384.0, 53248.0))
    name: str = "piecewise"

    def __post_init__(self) -> None:
        points = tuple(
            (float(n), float(work)) for n, work in self.breakpoints
        )
        if len(points) < 2:
            raise ValueError(
                f"piecewise cost needs >= 2 breakpoints, got {len(points)}"
            )
        ns = [n for n, _ in points]
        works = [w for _, w in points]
        if any(b <= a for a, b in zip(ns, ns[1:])):
            raise ValueError(f"breakpoint sizes must strictly increase: {ns}")
        if ns[0] < 0:
            raise ValueError(f"breakpoint sizes must be >= 0, got {ns[0]}")
        if any(b < a for a, b in zip(works, works[1:])) or works[0] < 0:
            raise ValueError(
                f"breakpoint work values must be >= 0 and non-decreasing: {works}"
            )
        object.__setattr__(self, "breakpoints", points)

    def work(self, n: ArrayLike) -> ArrayLike:
        arr = np.asarray(n, dtype=float)
        ns = np.array([p[0] for p in self.breakpoints])
        works = np.array([p[1] for p in self.breakpoints])
        out = np.interp(arr, ns, works)
        # np.interp clamps past the table; extend the last slope instead
        slope = (works[-1] - works[-2]) / (ns[-1] - ns[-2])
        out = np.where(arr > ns[-1], works[-1] + slope * (arr - ns[-1]), out)
        if np.ndim(arr) == 0:
            return float(out)
        return out

    @property
    def is_linear(self) -> bool:
        ns = np.array([p[0] for p in self.breakpoints])
        works = np.array([p[1] for p in self.breakpoints])
        slopes = np.diff(works) / np.diff(ns)
        return bool(
            np.allclose(slopes, slopes[0]) and np.isclose(works[0], slopes[0] * ns[0])
        )


@register("cost_model", "callable")
@dataclass(frozen=True)
class CallableCost(CostModel):
    """Wrap an arbitrary vectorised function as a cost model."""

    fn: Callable[[ArrayLike], ArrayLike]
    name: str = "callable"
    linear: bool = False

    def work(self, n: ArrayLike) -> ArrayLike:
        return self.fn(np.asarray(n, dtype=float))

    @property
    def is_linear(self) -> bool:
        return self.linear
