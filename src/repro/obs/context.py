"""Trace contexts: the identity a request carries across process hops.

A *trace* is one client-observed operation — a ``/plan_batch`` POST,
say — however many processes it touches on the way.  Its identity is a
:class:`TraceContext`:

* ``trace_id`` — 16 hex chars shared by every span of the operation;
* ``span_id`` — 8 hex chars naming the *sender's* span.  Whoever
  receives the context uses it as the parent of its own root span, so
  the spans of client, coordinator and workers chain into one tree;
* ``sampled`` — whether the hops should record spans at all.  An
  unsampled context still propagates (the ids stay joinable in access
  logs) but recorders stay silent, which is what keeps always-on
  tracing affordable.

On the wire the context is one HTTP header (:data:`TRACE_HEADER`)::

    X-Repro-Trace: 6f2a9c0d4e1b8a37-9c4e2d10-01

i.e. ``trace_id-span_id-flags`` with ``01`` sampled / ``00`` not —
deliberately the shape of a W3C ``traceparent`` without the version
field.  :func:`parse_trace_header` is the exact inverse of
:meth:`TraceContext.to_header` for every valid context; a malformed
header from a foreign client yields ``None`` (requests must never fail
because their tracing decoration is garbled).

Everything here is stdlib-only so any layer — core sessions included —
may import it freely.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, replace
from typing import Optional

#: HTTP header a trace context travels in (request direction only)
TRACE_HEADER = "X-Repro-Trace"

#: hex chars in a trace id / span id
TRACE_ID_CHARS = 16
SPAN_ID_CHARS = 8

_HEADER_RE = re.compile(
    rf"^([0-9a-f]{{{TRACE_ID_CHARS}}})-([0-9a-f]{{{SPAN_ID_CHARS}}})-(00|01)$"
)


def new_trace_id() -> str:
    """A fresh random trace id (16 lowercase hex chars)."""
    return os.urandom(TRACE_ID_CHARS // 2).hex()


def new_span_id() -> str:
    """A fresh random span id (8 lowercase hex chars)."""
    return os.urandom(SPAN_ID_CHARS // 2).hex()


@dataclass(frozen=True)
class TraceContext:
    """One operation's identity as it crosses a process boundary."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_header(self) -> str:
        """The ``X-Repro-Trace`` header value this context travels as."""
        return f"{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    def child(self) -> "TraceContext":
        """The context a downstream hop receives: same trace, new span.

        The fresh ``span_id`` names the span the *caller* is about to
        record for the hop, so the receiver's root span parents to it.
        """
        return replace(self, span_id=new_span_id())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_header()


def start_trace(sampled: bool = True) -> TraceContext:
    """Originate a brand-new trace (the client side of hop zero)."""
    return TraceContext(
        trace_id=new_trace_id(), span_id=new_span_id(), sampled=sampled
    )


def parse_trace_header(value: Optional[str]) -> Optional[TraceContext]:
    """The context an ``X-Repro-Trace`` header carries, else ``None``.

    Lenient on purpose: a missing, empty, or malformed header means
    "this request is untraced" — a foreign client's junk decoration
    must never fail the request it decorates.  For every context,
    ``parse_trace_header(ctx.to_header()) == ctx``.
    """
    if not value:
        return None
    match = _HEADER_RE.match(value.strip())
    if match is None:
        return None
    trace_id, span_id, flags = match.groups()
    return TraceContext(
        trace_id=trace_id, span_id=span_id, sampled=flags == "01"
    )
