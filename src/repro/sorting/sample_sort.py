"""The full sample-sort pipeline (§3.1–3.2): sorts *and* accounts costs.

Phases and their charges (Figure 1's three steps):

1. master sorts the ``s*p`` sample —
   :math:`s p \\log_2(s p)` work at master speed;
2. master routes every key by binary search —
   :math:`N \\log_2 p` work at master speed;
3. buckets ship to workers (:math:`c_i \\cdot |bucket_i|` each, in
   parallel) and are sorted locally —
   :math:`w_i |bucket_i| \\log_2 |bucket_i|`.

The returned result contains the genuinely sorted array (verified
against ``np.sort`` in tests), per-bucket sizes, per-phase times and the
makespan.  Heterogeneous platforms (§3.2) place splitters at cumulative
speed fractions so faster workers get proportionally bigger buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.almost_linear import recommended_oversampling, sorting_work
from repro.platform.star import StarPlatform
from repro.sorting.splitters import bucketize, choose_splitters
from repro.util.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SampleSortResult:
    """Output + cost accounting of one sample-sort execution."""

    sorted_keys: np.ndarray
    bucket_sizes: np.ndarray
    splitters: np.ndarray
    oversampling: int
    #: Step-1 time on the master (sample sort)
    step1_time: float
    #: Step-2 time on the master (bucketing binary searches)
    step2_time: float
    #: per-worker transfer time c_i * bucket_i (parallel links)
    transfer_times: np.ndarray
    #: per-worker local sort time w_i * n_i log n_i
    local_sort_times: np.ndarray
    #: absolute completion time of each worker
    worker_finish: np.ndarray
    makespan: float

    @property
    def max_bucket(self) -> int:
        """``MaxSize`` of Theorem B.4."""
        return int(self.bucket_sizes.max())

    @property
    def preprocessing_time(self) -> float:
        """Sequential prefix: Steps 1 + 2 on the master."""
        return self.step1_time + self.step2_time

    @property
    def parallel_fraction(self) -> float:
        """Share of the makespan spent in the divisible Step 3."""
        if self.makespan == 0:
            return 0.0
        return 1.0 - self.preprocessing_time / self.makespan

    def speedup(self, master_speed: float = 1.0) -> float:
        """Speedup over sorting everything on a ``master_speed`` machine."""
        n = self.sorted_keys.size
        seq = sorting_work(max(n, 2)) / master_speed
        return seq / self.makespan if self.makespan > 0 else 1.0


def sequential_sort_work(n: int) -> float:
    """Work of the sequential baseline, :math:`N\\log_2 N`."""
    return sorting_work(max(n, 2))


def sample_sort(
    keys: np.ndarray,
    platform: StarPlatform,
    s: int | None = None,
    rng: SeedLike = None,
    master_speed: float = 1.0,
    heterogeneous: bool | None = None,
) -> SampleSortResult:
    """Sort ``keys`` with sample sort on ``platform``; account all costs.

    Parameters
    ----------
    s:
        Oversampling ratio; defaults to the paper's
        :math:`(\\log_2 N)^2`.
    heterogeneous:
        Force (or suppress) speed-proportional splitters; default: use
        them iff the platform is heterogeneous.
    master_speed:
        Speed of the master executing Steps 1–2.

    Notes
    -----
    The algorithm *really sorts*: the result's ``sorted_keys`` equals
    ``np.sort(keys)``.  Duplicate keys are fine (``searchsorted`` is
    deterministic); the returned timing uses the paper's parallel-links
    model where all bucket transfers overlap.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
    n = keys.size
    p = platform.size
    if master_speed <= 0:
        raise ValueError(f"master_speed must be positive, got {master_speed}")
    if s is None:
        s = recommended_oversampling(max(n, 2))
    rng = make_rng(rng)
    if heterogeneous is None:
        heterogeneous = not platform.is_homogeneous
    speeds = platform.speeds if heterogeneous else None

    if n == 0:
        zeros = np.zeros(p)
        return SampleSortResult(
            sorted_keys=keys.copy(),
            bucket_sizes=np.zeros(p, dtype=int),
            splitters=keys[:0],
            oversampling=s,
            step1_time=0.0,
            step2_time=0.0,
            transfer_times=zeros,
            local_sort_times=zeros.copy(),
            worker_finish=zeros.copy(),
            makespan=0.0,
        )

    # Step 1: sample + sort on the master.
    splitters = choose_splitters(keys, p, s, rng=rng, speeds=speeds)
    sample_size = s * p
    step1_time = sorting_work(max(sample_size, 2)) / master_speed if p > 1 else 0.0

    # Step 2: binary-search bucketing on the master.
    buckets = bucketize(keys, splitters)
    step2_time = (n * np.log2(p) / master_speed) if p > 1 else 0.0

    # Step 3: ship buckets (parallel links) + local sorts.
    sizes = np.array([b.size for b in buckets], dtype=int)
    c = platform.comm_times
    w = platform.cycle_times
    transfer = c * sizes
    local = w * np.array([sorting_work(max(int(m), 2)) if m > 1 else 0.0 for m in sizes])
    start = step1_time + step2_time
    finish = start + transfer + local

    sorted_keys = np.concatenate([np.sort(b, kind="stable") for b in buckets])
    return SampleSortResult(
        sorted_keys=sorted_keys,
        bucket_sizes=sizes,
        splitters=np.asarray(splitters),
        oversampling=int(s),
        step1_time=float(step1_time),
        step2_time=float(step2_time),
        transfer_times=transfer,
        local_sort_times=local,
        worker_finish=finish,
        makespan=float(finish.max()),
    )
