"""Benchmarks for the §4.2 matmul claims: experiment E13 (Figure 3).

Verifies, by exact per-step accounting on real layouts, that the matrix
multiplication communication volume is proportional to the §4.1
half-perimeter sum — and therefore that the Figure-4 ratios carry over
to matmul, as the paper argues.
"""

import numpy as np
import pytest

from repro.matmul.layouts import BlockCyclicLayout, RectangleLayout
from repro.matmul.numeric import outer_product_matmul
from repro.matmul.outer_product_algo import simulate_outer_product_matmul
from repro.partition.column_based import peri_sum_partition
from repro.util.tables import format_table


def test_matmul_volume_proportional_to_half_perimeters(benchmark):
    def run():
        rng = np.random.default_rng(0)
        n = 60
        rows = []
        for p in (4, 9, 16):
            speeds = rng.uniform(1, 100, p)
            areas = speeds / speeds.sum()
            part = peri_sum_partition(areas)
            layout = RectangleLayout(part, n=n)
            run_acct = simulate_outer_product_matmul(layout)
            # closed form: N × (scaled half-perimeter sum in cells)
            cells = sum(
                layout.rows_of(i).size + layout.cols_of(i).size for i in range(p)
            )
            rows.append(
                [p, run_acct.total_no_reuse, float(n * cells),
                 part.scaled(n).sum_half_perimeters * n]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["p", "simulated volume", "N x cell half-perims", "N x geometric"],
            rows,
            title="Figure 3 accounting: matmul comm == N x half-perimeter sum",
        )
    )
    for p, simulated, cells_form, geometric in rows:
        assert simulated == pytest.approx(cells_form)
        # geometry vs integer-cell discretisation agree within a few %
        assert simulated == pytest.approx(geometric, rel=0.1)


def test_heterogeneous_layout_beats_grid(benchmark):
    """Rectangle layout vs square grid on a heterogeneous platform.

    The uniform grid's communication volume is actually decent (it is
    the homogeneous optimum); what it cannot do is balance load — equal
    cell counts on unequal speeds.  The §4 point is that the rectangle
    layout matches the grid's volume *while also* balancing perfectly.
    """

    def run():
        rng = np.random.default_rng(1)
        n, p = 48, 16
        speeds = rng.uniform(1, 100, p)
        areas = speeds / speeds.sum()
        het = RectangleLayout(peri_sum_partition(areas), n=n)
        grid = BlockCyclicLayout(n=n, p_rows=4, p_cols=4, block=1)
        v_het = simulate_outer_product_matmul(het).total_no_reuse
        v_grid = simulate_outer_product_matmul(grid).total_no_reuse
        # compute-time imbalance: cells owned × cycle time
        w = 1.0 / speeds
        t_het = np.array(
            [np.sum(het.owner_matrix() == i) for i in range(p)]
        ) * w * n  # each owned C cell costs n multiply-adds
        t_grid = np.full(p, (n * n / p)) * w * n
        e_het = (t_het.max() - t_het.min()) / t_het.min()
        e_grid = (t_grid.max() - t_grid.min()) / t_grid.min()
        return v_het, v_grid, e_het, e_grid

    v_het, v_grid, e_het, e_grid = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\nhet: volume={v_het:.0f}, imbalance e={e_het:.3f}; "
        f"grid: volume={v_grid:.0f}, imbalance e={e_grid:.3f}"
    )
    # volume: no worse than the uniform grid...
    assert v_het <= v_grid * 1.05
    # ...while the grid's load imbalance is catastrophic and het's is
    # bounded by cell discretisation
    assert e_grid > 10.0
    assert e_het < 1.0


def test_outer_product_matmul_correctness_speed(benchmark):
    """The executable N-step algorithm at n=32 (numeric ground truth)."""
    rng = np.random.default_rng(2)
    n = 32
    A, B = rng.normal(size=(n, n)), rng.normal(size=(n, n))
    layout = RectangleLayout(peri_sum_partition([0.25] * 4), n=n)
    C = benchmark(outer_product_matmul, A, B, layout)
    assert np.allclose(C, A @ B)
