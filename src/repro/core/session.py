"""PlannerSession: the backend-routed, cached, batched planning API.

A session owns the three concerns the free-function pipeline lacked:

* **backend routing** — every request batch is dispatched through a
  registered execution backend (``serial`` / ``threaded`` /
  ``process``, plus anything plugins register), so ``sweep`` and
  ``plan_batch`` fan out concurrently instead of looping;
* **plan caching** — results are memoised under a content key
  (platform fingerprint × N × strategy × effective params), so the
  Figure-4 protocol's repeated queries and service-style workloads
  skip re-planning; hits surface in :class:`PlanSweep` tables and
  :meth:`cache_stats`;
* **defaults** — session-wide default params (e.g. an
  ``imbalance_target`` house style) merge under each request's own.

Usage::

    from repro.core.session import PlannerSession

    session = PlannerSession(backend="threaded", jobs=4)
    sweep = session.sweep(platform, N=10_000)        # all strategies
    sweep = session.sweep(platform, N=10_000)        # same → all hits
    print(sweep.render(), session.cache_stats().render(), sep="\\n")

Results are bit-identical across backends: a backend only changes
*where* :func:`repro.core.pipeline.plan_request` runs, never what it
computes, and sweeps iterate in sorted strategy order regardless of
completion order.

The module-level :func:`default_session` (serial, caching) backs the
deprecated :func:`repro.core.pipeline.execute` / ``execute_all`` shims
and the façade in :mod:`repro.core.strategies`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Mapping, Sequence

from repro import registry
from repro.core.backends import Backend
from repro.core.cache import CacheStats, PlanCache
from repro.core.pipeline import (
    PlanRequest,
    PlanResult,
    PlanSweep,
    plan_request,
)
from repro.platform.star import StarPlatform


class PlannerSession:
    """Backend-routed, cached, batched planning over the registry.

    Parameters
    ----------
    backend:
        Name of a registered execution backend (``repro list backend``),
        or an already-constructed :class:`~repro.core.backends.Backend`.
    cache:
        ``True`` (default) for a fresh :class:`PlanCache`, ``False`` to
        plan every request anew, or a :class:`PlanCache` instance to
        share one cache between sessions.
    jobs:
        Worker cap forwarded to the backend (``None`` = its default).
    default_params:
        Session-wide strategy params merged *under* each request's own
        (the request wins on conflicts).
    """

    def __init__(
        self,
        backend: str | Backend = "serial",
        *,
        cache: bool | PlanCache = True,
        jobs: int | None = None,
        **default_params: Any,
    ) -> None:
        if isinstance(backend, str):
            self.backend: Backend = registry.create("backend", backend, jobs=jobs)
            self.backend_name = backend
        else:
            self.backend = backend
            self.backend_name = getattr(backend, "name", type(backend).__name__)
        if cache is True:
            self._cache: PlanCache | None = PlanCache()
        elif cache is False or cache is None:
            self._cache = None
        else:
            self._cache = cache
        self.default_params: dict[str, Any] = dict(default_params)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release backend workers (idempotent; cache survives)."""
        self.backend.shutdown()

    def __enter__(self) -> "PlannerSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = "off" if self._cache is None else f"{len(self._cache)} entries"
        return (
            f"PlannerSession(backend={self.backend_name!r}, cache={cache})"
        )

    # -- planning --------------------------------------------------------

    def plan(self, request: PlanRequest) -> PlanResult:
        """Plan one request (cache first, then the backend)."""
        return self.plan_batch((request,))[0]

    def plan_batch(
        self, requests: Sequence[PlanRequest]
    ) -> List[PlanResult]:
        """Plan many requests; results align with ``requests`` by index.

        Cache lookups happen up front on the calling thread; only the
        misses travel through the backend (concurrently, if it fans
        out), and their results are cached on the way back.
        """
        requests = [self._with_defaults(req) for req in requests]
        results: List[PlanResult | None] = [None] * len(requests)
        misses: List[tuple[int, Any, PlanRequest]] = []
        for i, req in enumerate(requests):
            # resolve eagerly: unknown strategies fail fast with the
            # registry's "expected one of …" message, and the factory
            # identity feeds the cache key
            factory = registry.get("strategy", req.strategy)
            if self._cache is None:
                misses.append((i, None, req))
                continue
            key = self._cache.key_for(req, factory)
            hit = self._cache.get(key)
            if hit is not None:
                results[i] = replace(
                    hit, request=req, cached=True, elapsed_s=0.0
                )
            else:
                misses.append((i, key, req))
        if misses:
            planned = self.backend.map(
                plan_request, [req for _, _, req in misses]
            )
            for (i, key, _), result in zip(misses, planned):
                if self._cache is not None:
                    self._cache.put(key, result)
                results[i] = result
        return results  # type: ignore[return-value]

    def sweep(
        self,
        platform: StarPlatform,
        N: float,
        strategies: Sequence[str] | None = None,
        **params: Any,
    ) -> PlanSweep:
        """Every registered (or the named) strategies on one instance.

        Strategy order is sorted by name whatever the backend, so
        serial and concurrent sweeps render identical tables.  The
        sweep records how its requests fared against the plan cache.
        """
        names = (
            tuple(sorted(strategies))
            if strategies is not None
            else registry.available("strategy")
        )
        before = self._cache.stats if self._cache is not None else None
        results = self.plan_batch(
            [
                PlanRequest(platform=platform, N=N, strategy=name, params=params)
                for name in names
            ]
        )
        hits = misses = None
        if self._cache is not None and before is not None:
            after = self._cache.stats
            hits = after.hits - before.hits
            misses = after.misses - before.misses
        return PlanSweep(
            N=float(N),
            results=dict(zip(names, results)),
            cache_hits=hits,
            cache_misses=misses,
        )

    # -- cache -----------------------------------------------------------

    @property
    def cache(self) -> PlanCache | None:
        """The session's plan cache (``None`` when caching is off)."""
        return self._cache

    def cache_stats(self) -> CacheStats | None:
        """Cumulative cache statistics (``None`` when caching is off)."""
        return self._cache.stats if self._cache is not None else None

    def clear_cache(self) -> None:
        """Invalidate every cached plan and reset the statistics."""
        if self._cache is not None:
            self._cache.clear()

    # -- helpers ---------------------------------------------------------

    def _with_defaults(self, request: PlanRequest) -> PlanRequest:
        if not self.default_params:
            return request
        merged: Mapping[str, Any] = {
            **self.default_params,
            **dict(request.params),
        }
        if merged == dict(request.params):
            return request
        return replace(request, params=merged)


#: lazily constructed process-wide session backing the deprecated shims
_default_session: PlannerSession | None = None


def default_session() -> PlannerSession:
    """The process-wide session (serial backend, caching on).

    Backs the deprecated :func:`repro.core.pipeline.execute` /
    ``execute_all`` shims and the :mod:`repro.core.strategies` façade
    when no explicit session is passed.
    """
    global _default_session
    if _default_session is None:
        _default_session = PlannerSession(backend="serial", cache=True)
    return _default_session


def reset_default_session() -> None:
    """Drop the process-wide session (tests, plugin reloads)."""
    global _default_session
    if _default_session is not None:
        _default_session.close()
    _default_session = None
