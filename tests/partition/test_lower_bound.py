"""Tests for repro.partition.lower_bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.column_based import peri_sum_partition
from repro.partition.lower_bound import (
    guarantee_gap,
    peri_max_lower_bound,
    peri_sum_lower_bound,
)

areas_lists = st.lists(
    st.floats(min_value=1e-3, max_value=1.0), min_size=1, max_size=16
).map(lambda v: (np.asarray(v) / np.sum(v)))


class TestBounds:
    def test_peri_sum_value(self):
        assert peri_sum_lower_bound([0.25, 0.25, 0.25, 0.25]) == pytest.approx(4.0)

    def test_peri_max_value(self):
        assert peri_max_lower_bound([0.5, 0.3, 0.2]) == pytest.approx(
            2 * np.sqrt(0.5)
        )

    @given(areas=areas_lists)
    @settings(max_examples=50, deadline=None)
    def test_lb_at_least_two(self, areas):
        """On the unit square Σ 2√a_i >= 2 (concavity), as §4.1.2 notes."""
        assert peri_sum_lower_bound(areas) >= 2.0 - 1e-9

    @given(areas=areas_lists)
    @settings(max_examples=50, deadline=None)
    def test_every_partition_respects_lb(self, areas):
        part = peri_sum_partition(areas)
        assert part.sum_half_perimeters >= peri_sum_lower_bound(areas) - 1e-9


class TestGuaranteeGap:
    def test_gap_of_exact_partition(self):
        areas = [0.25] * 4
        part = peri_sum_partition(areas)
        assert guarantee_gap(part.sum_half_perimeters, areas) == pytest.approx(1.0)

    def test_impossible_cost_rejected(self):
        with pytest.raises(ValueError, match="below the lower bound"):
            guarantee_gap(1.0, [0.25] * 4)
