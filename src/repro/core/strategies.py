"""User-facing façade: plan an outer product on a platform.

This is the library's quickstart entry point — it hides the strategy
classes behind one function and one comparison helper:

>>> from repro.platform import StarPlatform
>>> from repro.core import plan_outer_product
>>> platform = StarPlatform.from_speeds([1, 1, 4, 4])
>>> plan = plan_outer_product(platform, N=1000, strategy="het")
>>> plan.ratio_to_lower_bound  # doctest: +SKIP
1.01...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.blocks.heterogeneous import HeterogeneousBlocksStrategy
from repro.blocks.homogeneous import HomogeneousBlocksStrategy
from repro.blocks.metrics import StrategyResult
from repro.blocks.refined import RefinedHomogeneousStrategy
from repro.platform.star import StarPlatform

#: alias so downstream users import one name for the result type
OuterProductPlan = StrategyResult

_STRATEGIES = ("hom", "hom/k", "het")


def plan_outer_product(
    platform: StarPlatform,
    N: float,
    strategy: str = "het",
    imbalance_target: float = 0.01,
) -> OuterProductPlan:
    """Plan the distribution of an ``N × N`` outer product.

    ``strategy`` is one of:

    * ``"hom"`` — Homogeneous Blocks (§4.1.1),
    * ``"hom/k"`` — refined Homogeneous Blocks with the paper's
      ``e <= imbalance_target`` stopping rule (§4.3),
    * ``"het"`` — Heterogeneous Blocks via PERI-SUM (§4.1.2).
    """
    if strategy == "hom":
        return HomogeneousBlocksStrategy().plan(platform, N)
    if strategy == "hom/k":
        return RefinedHomogeneousStrategy(
            imbalance_target=imbalance_target
        ).plan(platform, N)
    if strategy == "het":
        return HeterogeneousBlocksStrategy().plan(platform, N)
    raise ValueError(
        f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}"
    )


@dataclass(frozen=True)
class StrategyComparison:
    """All three §4 strategies on one instance, ready for a table row."""

    N: float
    plans: Dict[str, OuterProductPlan]

    @property
    def ratios(self) -> Dict[str, float]:
        """Ratio-to-lower-bound per strategy (Figure 4's quantity)."""
        return {
            name: plan.ratio_to_lower_bound for name, plan in self.plans.items()
        }

    @property
    def rho(self) -> float:
        """Measured :math:`\\rho = Comm_{hom} / Comm_{het}` (§4.1.3)."""
        return self.plans["hom"].comm_volume / self.plans["het"].comm_volume

    def summary(self) -> str:
        lines = [f"Outer product N={self.N:g}:"]
        for name in _STRATEGIES:
            plan = self.plans[name]
            lines.append(f"  {plan.summary()}")
        lines.append(f"  rho = Comm_hom/Comm_het = {self.rho:.3f}")
        return "\n".join(lines)


def compare_strategies(
    platform: StarPlatform, N: float, imbalance_target: float = 0.01
) -> StrategyComparison:
    """Run all three strategies on the same instance (one Figure-4 cell)."""
    plans = {
        name: plan_outer_product(
            platform, N, strategy=name, imbalance_target=imbalance_target
        )
        for name in _STRATEGIES
    }
    return StrategyComparison(N=float(N), plans=plans)
