"""Benchmarks for the planning service layer (server + remote clients).

Two questions the service tentpole must answer with numbers:

* **remote batch throughput** — how many requests/second does a remote
  session push through a plan server, against the in-process serial
  baseline?  (The wire adds latency; the server's backend and store
  amortise it — the point is that the overhead is bounded and the
  results identical.)
* **warm shared-cache speedup** — two *separate client processes*
  planning the same batch against one server: the first fills the
  shared store, the second must be served from it and finish faster
  having planned nothing.

Both emit ``BENCH {...}`` JSON lines for CI trend tracking, like the
batch-planning and plan-store benchmarks.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.platform.star import StarPlatform
from repro.service.server import PlanServer

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


def _requests(count=48, p=48, seed=11):
    """Distinct heterogeneous instances, heavy enough to time planning."""
    rng = np.random.default_rng(seed)
    return [
        PlanRequest(
            platform=StarPlatform.from_speeds(
                rng.uniform(1.0, 10.0, size=p).tolist()
            ),
            N=2000.0,
            strategy="het",
        )
        for _ in range(count)
    ]


def test_remote_batch_throughput():
    """Remote planning must return the serial baseline's plans exactly;
    report both paths' requests/second."""
    requests = _requests()

    with PlannerSession(cache=False) as local:
        start = time.perf_counter()
        baseline = local.plan_batch(requests)
        serial_s = time.perf_counter() - start

    with PlanServer(port=0, backend="serial", cache=False) as server:
        with PlannerSession(
            backend=f"remote:{server.host}:{server.port}", cache=False
        ) as remote:
            start = time.perf_counter()
            shipped = remote.plan_batch(requests)
            remote_s = time.perf_counter() - start

    for a, b in zip(baseline, shipped):
        assert np.isclose(a.comm_volume, b.comm_volume, rtol=1e-12)

    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "service_remote_batch_throughput",
                "requests": len(requests),
                "serial_s": round(serial_s, 4),
                "remote_s": round(remote_s, 4),
                "serial_req_per_s": round(len(requests) / serial_s, 1),
                "remote_req_per_s": round(len(requests) / remote_s, 1),
                "overhead_x": round(remote_s / serial_s, 2),
            }
        )
    )
    # the wire may cost, but not catastrophically: same order of magnitude
    assert remote_s < serial_s * 10, (
        f"remote planning {remote_s / serial_s:.1f}x slower than serial"
    )


_CLIENT_SNIPPET = """\
import json, sys, time
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
import numpy as np
from repro.platform.star import StarPlatform

url = sys.argv[1]
rng = np.random.default_rng(11)
requests = [
    PlanRequest(
        platform=StarPlatform.from_speeds(rng.uniform(1.0, 10.0, size=48).tolist()),
        N=2000.0,
        strategy="het",
    )
    for _ in range(48)
]
session = PlannerSession(cache=url)
start = time.perf_counter()
results = session.plan_batch(requests)
elapsed = time.perf_counter() - start
cached = sum(1 for r in results if r.cached)
session.close()
print(json.dumps({"elapsed_s": elapsed, "cached": cached, "n": len(results)}))
"""


def _run_client(url: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CLIENT_SNIPPET, url],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=300,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_warm_shared_cache_across_processes():
    """Client process 2 must be served from the store client process 1
    warmed — zero planning, faster wall-clock."""
    with PlanServer(port=0, cache="memory") as server:
        url = f"http://{server.host}:{server.port}"
        cold = _run_client(url)
        warm = _run_client(url)

    assert cold["cached"] == 0 and cold["n"] == 48
    assert warm["cached"] == 48, f"warm run replanned: {warm}"

    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "service_warm_shared_cache",
                "requests": cold["n"],
                "cold_s": round(cold["elapsed_s"], 4),
                "warm_s": round(warm["elapsed_s"], 4),
                "speedup": round(cold["elapsed_s"] / warm["elapsed_s"], 2),
            }
        )
    )
    assert warm["elapsed_s"] < cold["elapsed_s"], (
        "shared-store hits were slower than planning"
    )
