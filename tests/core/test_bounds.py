"""Tests for repro.core.bounds — the §4 closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    comm_het_upper_bound,
    comm_hom_ideal,
    half_fast_rho_bound,
    half_fast_rho_simple,
    lower_bound_comm,
    normalized_speeds,
    peri_sum_lower_bound,
    ratio_to_lower_bound,
    rho_lower_bound,
    PERI_SUM_GUARANTEE,
)

speeds_lists = st.lists(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=20,
)


class TestLowerBound:
    def test_homogeneous_closed_form(self):
        """LB = 2N sqrt(p) when all speeds are equal."""
        N, p = 100.0, 16
        assert lower_bound_comm(N, np.ones(p)) == pytest.approx(2 * N * np.sqrt(p))

    def test_single_worker(self):
        assert lower_bound_comm(50.0, [3.0]) == pytest.approx(100.0)

    @given(speeds=speeds_lists)
    @settings(max_examples=60, deadline=None)
    def test_lb_at_least_two_N(self, speeds):
        """Σ√x_i >= 1 since x sums to 1 and sqrt is concave."""
        assert lower_bound_comm(1.0, speeds) >= 2.0 - 1e-9

    @given(speeds=speeds_lists)
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, speeds):
        """Only relative speeds matter."""
        a = lower_bound_comm(10.0, np.asarray(speeds))
        b = lower_bound_comm(10.0, 7.0 * np.asarray(speeds))
        assert a == pytest.approx(b)


class TestClosedFormVolumes:
    def test_hom_homogeneous(self):
        """Comm_hom = 2N√p on homogeneous platforms = LB."""
        N, p = 100.0, 9
        assert comm_hom_ideal(N, np.ones(p)) == pytest.approx(
            lower_bound_comm(N, np.ones(p))
        )

    @given(speeds=speeds_lists)
    @settings(max_examples=60, deadline=None)
    def test_hom_at_least_lb(self, speeds):
        assert comm_hom_ideal(10.0, speeds) >= lower_bound_comm(10.0, speeds) - 1e-9

    @given(speeds=speeds_lists)
    @settings(max_examples=60, deadline=None)
    def test_het_bound_is_7_4_of_lb(self, speeds):
        assert comm_het_upper_bound(10.0, speeds) == pytest.approx(
            PERI_SUM_GUARANTEE * lower_bound_comm(10.0, speeds)
        )


class TestRho:
    def test_homogeneous_gives_4_7(self):
        assert rho_lower_bound(np.ones(10)) == pytest.approx(4.0 / 7.0)

    def test_grows_with_heterogeneity(self):
        mild = rho_lower_bound(np.array([1.0, 2.0]))
        wild = rho_lower_bound(np.array([1.0, 100.0]))
        assert wild > mild

    def test_consistency_with_closed_forms(self):
        """rho bound = (4/7) Comm_hom_ideal / (7N/2 Σ√x) identity."""
        speeds = np.array([1.0, 4.0, 9.0])
        expected = comm_hom_ideal(1.0, speeds) / comm_het_upper_bound(1.0, speeds)
        assert rho_lower_bound(speeds) == pytest.approx(expected)

    def test_half_fast_exact(self):
        assert half_fast_rho_bound(4.0) == pytest.approx(5.0 / 3.0)

    @given(k=st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=60, deadline=None)
    def test_half_fast_dominates_simple(self, k):
        """(1+k)/(1+√k) >= √k - 1, the paper's chain."""
        assert half_fast_rho_bound(k) >= half_fast_rho_simple(k) - 1e-9

    def test_half_fast_unbounded(self):
        assert half_fast_rho_bound(10_000.0) > 90.0


class TestHelpers:
    def test_normalized_speeds(self):
        x = normalized_speeds([1.0, 3.0])
        assert np.allclose(x, [0.25, 0.75])

    def test_ratio_to_lower_bound(self):
        speeds = [1.0, 1.0]
        lb = lower_bound_comm(10.0, speeds)
        assert ratio_to_lower_bound(2 * lb, 10.0, speeds) == pytest.approx(2.0)

    def test_ratio_rejects_negative(self):
        with pytest.raises(ValueError):
            ratio_to_lower_bound(-1.0, 10.0, [1.0])

    def test_peri_sum_lb_unit_square(self):
        assert peri_sum_lower_bound([0.25, 0.25, 0.25, 0.25]) == pytest.approx(4.0)
