"""The HTTP plan server: ``repro serve`` (stdlib-only, no new deps).

One process owns a :class:`~repro.core.session.PlannerSession` — with
any registered backend and any registered plan store behind it — and
serves it to the network:

==================  ====  =================================================
endpoint            verb  payload
==================  ====  =================================================
``/healthz``        GET   JSON liveness: status, versions, backend, cache
``/metrics``        GET   JSON per-endpoint counts + latency histograms
``/cache/stats``    GET   JSON :class:`~repro.core.cache.CacheStats` view
``/plan``           POST  envelope(PlanRequest) → envelope(PlanResult)
``/plan_batch``     POST  envelope([PlanRequest | VectorGroup, ...]) →
                          envelope([PlanResult | [PlanResult, ...], ...])
``/cache/get``      POST  envelope(key) → envelope(PlanResult | None)
``/cache/put``      POST  envelope((key, PlanResult)) → JSON ack
``/cache/clear``    POST  (empty) → JSON ack
==================  ====  =================================================

Binary payloads are the versioned envelopes of :mod:`repro.service.wire`
(magic header checked before unpickling, wire-version mismatches fail
loudly); control/inspection endpoints are plain JSON so ``curl`` works.
Each request names its wire profile (``pickle-v1`` or the typed
zero-copy ``binary-v2``) in the :data:`~repro.service.wire.PROFILE_HEADER`
header — or implicitly via the body's magic line — and the server
answers in the same profile, so old v1 clients keep working.  With
``wire_mode="safe"`` (``repro serve --wire safe``) pickle envelopes
are refused with a 400 before anything is unpickled; ``/healthz``
advertises the accepted profiles so clients negotiate up front.

``/plan`` and ``/plan_batch`` route through the server's session, so
every result a client ever asked for lands in the server's plan store —
that store is the *shared warm cache* many hosts converge on, whether
they reach it implicitly (``backend="remote:HOST:PORT"`` ships whole
planning items here) or explicitly (``cache="http://HOST:PORT"`` reads
and writes it entry by entry via ``/cache/get`` / ``/cache/put``).

Concurrency: the HTTP layer is thread-per-connection
(:class:`http.server.ThreadingHTTPServer`), the session's store is
wrapped in :class:`~repro.core.cache.ThreadSafePlanStore`, and the
session's backend fans each batch out as usual — so concurrent clients
plan concurrently and still see one consistent cache.  Failure
semantics: malformed envelopes and unknown component names are ``400``
with a JSON error body (client mistakes), planning crashes are ``500``
(server truthfully relays the exception message); clients retry only
transport-level failures and 429 refusals — see
:mod:`repro.service.client`.

Operability: ``/metrics`` serves per-endpoint request counts and
latency histograms (:class:`~repro.service.metrics.ServerMetrics`) as
plain JSON (``?format=prometheus`` renders the same counters as
Prometheus text exposition for standard scrapers), and ``max_inflight``
(``repro serve --max-inflight N``) bounds concurrent planning requests
— the excess is refused with ``429`` + ``Retry-After`` before any
planning work starts, so bursts degrade gracefully instead of timing
every client out.  With ``--trace`` a
:class:`~repro.obs.SpanRecorder` is attached and requests carrying a
sampled ``X-Repro-Trace`` context record per-stage spans (wire decode,
cache lookup, kernel time, wire encode) as JSONL — see :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Sequence

from repro.core.cache import (
    CacheStats,
    MemoryPlanCache,
    PlanStore,
    ThreadSafePlanStore,
    cache_from_spec,
)
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.core.vectorize import VectorGroup
from repro import obs
from repro.registry import RegistryError
from repro.service import wire
from repro.service.metrics import (
    AccessLog,
    AdmissionGate,
    ServerMetrics,
    prometheus_exposition,
)

#: endpoints /metrics reports individually; anything else aggregates
#: under "other" so probing clients cannot grow the metric cardinality
_KNOWN_ENDPOINTS = frozenset(
    (
        "/healthz",
        "/metrics",
        "/cache/stats",
        "/plan",
        "/plan_batch",
        "/cache/get",
        "/cache/put",
        "/cache/clear",
    )
)


def stats_payload(stats: CacheStats | None) -> dict:
    """The JSON view of a store's statistics ``/cache/stats`` serves."""
    if stats is None:
        return {"cache": "off"}
    return {
        "cache": "on",
        "hits": stats.hits,
        "misses": stats.misses,
        "lookups": stats.lookups,
        "hit_rate": stats.hit_rate,
        "entries": stats.entries,
        "max_entries": stats.max_entries,
        "evictions": stats.evictions,
        "tier_hits": {name: hits for name, hits in stats.tier_hits},
    }


def stats_from_payload(payload: dict) -> CacheStats | None:
    """Rebuild a :class:`CacheStats` from the ``/cache/stats`` JSON."""
    if payload.get("cache") != "on":
        return None
    return CacheStats(
        hits=int(payload.get("hits", 0)),
        misses=int(payload.get("misses", 0)),
        entries=int(payload.get("entries", 0)),
        max_entries=int(payload.get("max_entries", 0)),
        evictions=int(payload.get("evictions", 0)),
        tier_hits=tuple(
            (str(name), int(hits))
            for name, hits in payload.get("tier_hits", {}).items()
        ),
    )


class _PlanHandler(BaseHTTPRequestHandler):
    """Routes one connection's requests onto the owning :class:`PlanServer`."""

    protocol_version = "HTTP/1.1"

    # the ThreadingHTTPServer subclass below carries the PlanServer
    @property
    def planner(self) -> "PlanServer":
        return self.server.planner  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # planning servers sit in benchmarks and tests; per-request
        # access logging is the caller's job, not stderr spam
        pass

    # -- plumbing --------------------------------------------------------

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _begin(self) -> None:
        """Stamp the request start for the latency histogram."""
        self._started = time.perf_counter()
        # split any query string off before route matching, so
        # /metrics?format=prometheus is still the /metrics endpoint
        # (and not an unbounded "other" per query variant)
        route, _, query = self.path.partition("?")
        self._route = route
        self._query = urllib.parse.parse_qs(query)
        self._endpoint = route if route in _KNOWN_ENDPOINTS else "other"
        # wire profile for the access log; POST routes overwrite this
        # once _request_profile has decided
        self._profile = "-"
        # the trace context this request carries, if any; only sampled
        # ones surface in the access log (unsampled means "don't record")
        self._trace = obs.parse_trace_header(
            self.headers.get(obs.TRACE_HEADER)
        )

    def _reply(
        self,
        code: int,
        body: bytes,
        content_type: str,
        extra_headers: Dict[str, str] | None = None,
    ) -> None:
        # observe BEFORE any response byte hits the wire: once a client
        # holds its answer the request must already be visible in
        # /metrics — the loadtest cross-check relies on that
        # happens-before to reconcile client and server counts exactly
        started = getattr(self, "_started", None)
        if started is not None:
            trace = getattr(self, "_trace", None)
            self.planner.observe_request(
                getattr(self, "_endpoint", "other"),
                code,
                time.perf_counter() - started,
                profile=getattr(self, "_profile", "-"),
                nbytes=len(body),
                trace=(
                    trace.trace_id
                    if trace is not None and trace.sampled
                    else "-"
                ),
            )
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header(wire.VERSION_HEADER, str(wire.WIRE_VERSION))
        self.send_header(
            wire.PROFILE_HEADER, ",".join(self.planner.wire_profiles)
        )
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(
        self,
        code: int,
        payload: dict,
        extra_headers: Dict[str, str] | None = None,
    ) -> None:
        self._reply(
            code,
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n",
            "application/json",
            extra_headers,
        )

    def _reply_admission_full(self) -> None:
        """429 + Retry-After: the admission gate refused this request."""
        gate = self.planner.admission
        self._reply_json(
            429,
            {
                "error": (
                    f"server over capacity ({gate.limit} planning "
                    f"request(s) in flight); retry after "
                    f"{gate.retry_after}s"
                ),
                "retry_after": gate.retry_after,
            },
            {"Retry-After": f"{gate.retry_after:g}"},
        )

    def _request_profile(self, body: bytes) -> str:
        """The wire profile this request speaks (header, else magic).

        Requests with an empty body (``/cache/clear``) carry no magic
        line, so the :data:`~repro.service.wire.PROFILE_HEADER` the
        clients send decides; bodies decide for headerless v1 clients.
        A profile the server refuses (``--wire safe`` vs pickle) fails
        here with a clear, actionable message — before any unpickling.
        """
        allowed = self.planner.wire_profiles
        header = (self.headers.get(wire.PROFILE_HEADER) or "").strip()
        if header:
            profile = header
            if profile not in wire.PROFILES:
                raise wire.WireError(
                    f"unknown wire profile {profile!r}; this server "
                    f"speaks {', '.join(allowed)}"
                )
        elif body:
            profile = wire.detect_profile(body)
        else:
            profile = wire.PROFILE_PICKLE
        if profile not in allowed:
            raise wire.WireError(
                f"wire profile {profile!r} refused: this server runs "
                f"--wire safe and only accepts {', '.join(allowed)} — "
                "upgrade the client (it negotiates binary-v2 via "
                "/healthz) or restart the server with --wire auto"
            )
        return profile

    def _unpack(self, body: bytes, profile: str) -> Any:
        with obs.span("wire_decode", profile=profile, nbytes=len(body)):
            return wire.unpack_any(body, allowed=(profile,))

    def _reply_envelope(self, payload: Any, profile: str) -> None:
        with obs.span("wire_encode", profile=profile):
            body = wire.pack_as(payload, profile)
        self._reply(200, body, wire.CONTENT_TYPE)

    # -- routes ----------------------------------------------------------

    def _metrics_reply(self, payload: dict) -> None:
        """Serve ``/metrics`` as JSON, or Prometheus text on request."""
        fmt = (self._query.get("format") or ["json"])[0]
        if fmt == "prometheus":
            self._reply(
                200,
                prometheus_exposition(payload).encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif fmt == "json":
            self._reply_json(200, payload)
        else:
            self._reply_json(
                400,
                {"error": f"unknown metrics format {fmt!r}; "
                          "pick 'json' or 'prometheus'"},
            )

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._begin()
        try:
            if self._route == "/healthz":
                self._reply_json(200, self.planner.health_payload())
            elif self._route == "/metrics":
                self._metrics_reply(self.planner.metrics.payload())
            elif self._route == "/cache/stats":
                self._reply_json(
                    200, stats_payload(self.planner.session.cache_stats())
                )
            else:
                self._reply_json(404, {"error": f"no such endpoint {self.path}"})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply_json(500, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._begin()
        try:
            body = self._body()
            profile = self._request_profile(body)
            self._profile = profile
            # sampled traced requests record a root span covering
            # everything from here through the response write; seams
            # inside (decode, cache, kernels, encode) nest under it
            with obs.serving(
                self.planner.span_recorder,
                self._trace,
                f"server {self._endpoint}",
            ):
                self._route_post(body, profile)
        except (wire.WireError, RegistryError, TypeError, ValueError) as exc:
            # client mistakes: bad envelope, unknown strategy, cache off
            self._reply_json(400, {"error": str(exc)})
        except Exception as exc:
            # a genuine planning crash; relay the message truthfully
            self._reply_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route_post(self, body: bytes, profile: str) -> None:
        if self._route in ("/plan", "/plan_batch"):
            if not self.planner.admission.try_acquire():
                self._reply_admission_full()
                return
            try:
                self._do_plan(body, profile)
            finally:
                self.planner.admission.release()
        elif self._route == "/cache/get":
            key = self._unpack(body, profile)
            with obs.span("cache_lookup", endpoint="/cache/get"):
                hit = self.planner.store().get(key)
            self._reply_envelope(hit, profile)
        elif self._route == "/cache/put":
            key, result = self._unpack(body, profile)
            self.planner.store().put(key, result)
            self._reply_json(200, {"stored": True})
        elif self._route == "/cache/clear":
            self.planner.store().clear()
            self._reply_json(200, {"cleared": True})
        else:
            self._reply_json(404, {"error": f"no such endpoint {self.path}"})

    def _do_plan(self, body: bytes, profile: str) -> None:
        """The admission-gated planning endpoints."""
        if self._route == "/plan":
            request = self._unpack(body, profile)
            if not isinstance(request, PlanRequest):
                raise wire.WireError(
                    f"/plan expects a PlanRequest, got {type(request).__name__}"
                )
            self._reply_envelope(self.planner.session.plan(request), profile)
        else:
            items = self._unpack(body, profile)
            self._reply_envelope(self.planner.plan_items(items), profile)


class _ThreadingPlanServer(ThreadingHTTPServer):
    daemon_threads = True
    #: set by PlanServer right after construction
    planner: "PlanServer"


class PlanServer:
    """A planning session behind an HTTP front (see module docstring).

    Parameters mirror :class:`~repro.core.session.PlannerSession`:
    ``backend`` / ``jobs`` pick the execution backend the *server* fans
    batches out on (``asyncio`` and ``threaded`` suit a server; even
    ``remote:...`` works, chaining servers), ``cache`` is any store
    spec — ``sqlite:PATH`` or ``tiered:PATH`` make the shared store
    durable, which is what lets a restarted server keep serving disk
    hits.  ``port=0`` binds an ephemeral port (read it back from
    ``.port`` / the ``repro serve`` banner).

    Use as a context manager or call :meth:`close`; :meth:`start` runs
    the accept loop on a daemon thread (tests, embedding),
    :meth:`serve_forever` runs it in the calling thread (the CLI).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backend: str = "serial",
        jobs: int | None = None,
        cache: "bool | str | PlanStore" = True,
        vectorize: bool = True,
        wire_mode: str = "auto",
        max_inflight: int | None = None,
        retry_after: float = 0.5,
        access_log: AccessLog | None = None,
        span_recorder: obs.SpanRecorder | None = None,
    ) -> None:
        if wire_mode not in ("auto", "safe"):
            raise ValueError(
                f"wire_mode must be 'auto' or 'safe', got {wire_mode!r}"
            )
        self.wire_mode = wire_mode
        self.metrics = ServerMetrics()
        #: when set, every handled response also appends one access line
        self.access_log = access_log
        #: when set, sampled traced requests record spans here
        #: (``repro serve --trace``); None means tracing is off and the
        #: handlers pay one attribute read per request, nothing more
        self.span_recorder = span_recorder
        #: queue-depth limit on the planning endpoints (None = unbounded)
        self.admission = AdmissionGate(max_inflight, retry_after)
        #: profiles this server accepts and advertises, preference first;
        #: ``safe`` drops pickle-v1 so nothing on this port ever unpickles
        self.wire_profiles: tuple = (
            (wire.PROFILE_BINARY,)
            if wire_mode == "safe"
            else wire.PROFILES
        )
        if cache is True:
            store: PlanStore | None = MemoryPlanCache()
        elif cache is False or cache is None:
            store = None
        else:
            store = cache_from_spec(cache)
        # handler threads all drive one session; the store is the only
        # mutable state they share, so serialise it and nothing else
        self._store = ThreadSafePlanStore(store) if store is not None else None
        self.session = PlannerSession(
            backend=backend,
            cache=self._store if self._store is not None else False,
            jobs=jobs,
            vectorize=vectorize,
        )
        self.cache_spec = cache if isinstance(cache, str) else (
            "off" if store is None else type(store).__name__
        )
        self._http = _ThreadingPlanServer((host, port), _PlanHandler)
        self._http.planner = self
        self.host, self.port = self._http.server_address[:2]
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- handler-facing API ----------------------------------------------

    def observe_request(
        self,
        endpoint: str,
        status: int,
        elapsed_s: float,
        *,
        profile: str = "-",
        nbytes: int = 0,
        trace: str = "-",
    ) -> None:
        """The single exit point every handled response reports through.

        Feeds the latency histograms and, when ``--log`` enabled one,
        the access log — from one call site, so the two can never
        disagree about what was served.  ``trace`` is the sampled
        trace id the request carried (``-`` otherwise), letting log
        lines join trace files by id.
        """
        self.metrics.observe(endpoint, status, elapsed_s)
        if self.access_log is not None:
            self.access_log.record(
                endpoint, status, elapsed_s,
                wire=profile, nbytes=nbytes, trace=trace,
            )

    def store(self) -> PlanStore:
        """The shared store, or a clean error when caching is off."""
        if self._store is None:
            raise ValueError(
                "this plan server runs without a cache (--no-cache); "
                "/cache endpoints are unavailable"
            )
        return self._store

    def plan_items(
        self, items: Sequence["PlanRequest | VectorGroup"]
    ) -> List[Any]:
        """Plan a ``/plan_batch`` item list through the session.

        Mirrors what a local backend's ``map(plan_work_item, items)``
        returns — a :class:`PlanResult` per scalar request, a list per
        :class:`VectorGroup` — but routes through the server session so
        every planned item lands in (and is served from) the shared
        store.  All items are flattened into *one* ``plan_batch`` call,
        so the server's backend fans the whole wire batch out (and its
        vectorise pass may fuse groups the client sent separately —
        results are contract-equal either way).
        """
        if not isinstance(items, (list, tuple)):
            raise wire.WireError(
                f"/plan_batch expects a list of items, got {type(items).__name__}"
            )
        flat: List[PlanRequest] = []
        group_sizes: List[int | None] = []
        for item in items:
            if isinstance(item, VectorGroup):
                group_sizes.append(len(item.requests))
                flat.extend(item.requests)
            elif isinstance(item, PlanRequest):
                group_sizes.append(None)
                flat.append(item)
            else:
                raise wire.WireError(
                    "plan_batch items must be PlanRequest or VectorGroup, "
                    f"got {type(item).__name__}"
                )
        results = self.session.plan_batch(flat)
        outputs: List[Any] = []
        position = 0
        for size in group_sizes:
            if size is None:
                outputs.append(results[position])
                position += 1
            else:
                outputs.append(results[position:position + size])
                position += size
        return outputs

    def health_payload(self) -> dict:
        from repro import __version__

        return {
            "status": "ok",
            "service": wire.WIRE_FORMAT,
            "wire_version": wire.WIRE_VERSION,
            "wire_profiles": list(self.wire_profiles),
            "wire_mode": self.wire_mode,
            "version": __version__,
            "backend": self.session.backend_name,
            "cache": self.cache_spec,
            "max_inflight": self.admission.limit,
        }

    # -- lifecycle -------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PlanServer":
        """Serve on a daemon thread and return immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._http.serve_forever,
                name="repro-plan-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve in the calling thread until :meth:`close` / interrupt."""
        self._http.serve_forever()

    def close(self) -> None:
        """Stop accepting, release the socket and the session (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._http.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._http.server_close()
        self.session.close()
        if self._store is not None:
            self._store.close()
        if self.access_log is not None:
            self.access_log.close()
        if self.span_recorder is not None:
            self.span_recorder.close()

    def __enter__(self) -> "PlanServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PlanServer {self.url} backend={self.session.backend_name!r} "
            f"cache={self.cache_spec!r}>"
        )
