"""Tests for repro.core.nonlinear — the §2 formulas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonlinear import (
    dlt_phase_report,
    linear_contrast,
    partial_work,
    partial_work_fraction,
    residual_fraction,
    rounds_to_finish,
    speedup_single_round,
    total_work,
)


class TestFormulas:
    def test_total_work(self):
        assert total_work(10.0, 2.0) == 100.0

    def test_partial_work_matches_paper(self):
        """W_partial = N^alpha / P^(alpha-1)."""
        N, P, alpha = 100.0, 10, 2.0
        assert partial_work(N, P, alpha) == pytest.approx(N**alpha / P ** (alpha - 1))

    def test_fraction_p_to_one_minus_alpha(self):
        assert partial_work_fraction(10, 2.0) == pytest.approx(0.1)
        assert partial_work_fraction(10, 3.0) == pytest.approx(0.01)

    def test_linear_covers_everything(self):
        assert partial_work_fraction(1000, 1.0) == 1.0
        assert residual_fraction(1000, 1.0) == 0.0

    def test_residual_tends_to_one(self):
        fracs = [residual_fraction(P, 2.0) for P in (2, 10, 100, 10000)]
        assert fracs == sorted(fracs)
        assert fracs[-1] >= 0.9999

    @given(
        P=st.integers(min_value=1, max_value=10_000),
        alpha=st.floats(min_value=1.0, max_value=5.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_fraction_in_unit_interval(self, P, alpha):
        f = partial_work_fraction(P, alpha)
        assert 0 < f <= 1
        assert residual_fraction(P, alpha) == pytest.approx(1 - f)

    def test_fraction_independent_of_N(self):
        """The headline property: only P and alpha matter."""
        for N in (10.0, 1e3, 1e6):
            assert partial_work(N, 8, 2.0) / total_work(N, 2.0) == pytest.approx(
                partial_work_fraction(8, 2.0)
            )


class TestSpeedupAndRounds:
    def test_speedup_single_round(self):
        assert speedup_single_round(4, 2.0) == 16.0

    def test_rounds_linear_is_one(self):
        assert rounds_to_finish(100, 1.0) == 1

    def test_rounds_grow_with_P_for_quadratic(self):
        r_small = rounds_to_finish(4, 2.0)
        r_large = rounds_to_finish(64, 2.0)
        assert r_large > r_small

    def test_rounds_scale_like_P_for_quadratic(self):
        """r ≈ P ln(1/(1-c)) for alpha=2, large P."""
        P = 512
        r = rounds_to_finish(P, 2.0, coverage=0.99)
        expected = P * np.log(100)
        assert r == pytest.approx(expected, rel=0.05)

    def test_bad_coverage_rejected(self):
        with pytest.raises(ValueError):
            rounds_to_finish(4, 2.0, coverage=1.0)


class TestReport:
    def test_report_consistency(self):
        rep = dlt_phase_report(N=1000.0, P=10, alpha=2.0, c=1.0, w=2.0)
        assert rep.chunk == 100.0
        assert rep.round_makespan == pytest.approx(100.0 + 100.0**2 * 2.0)
        assert rep.covered_fraction == pytest.approx(0.1)
        assert rep.residual_fraction == pytest.approx(0.9)
        assert rep.partial_work + rep.residual_fraction * rep.total_work == (
            pytest.approx(rep.total_work)
        )

    def test_summary_mentions_percentages(self):
        rep = dlt_phase_report(N=100.0, P=4, alpha=2.0)
        assert "P=4" in rep.summary()
        assert "%" in rep.summary()

    def test_linear_contrast_full_coverage(self):
        """Linear round does all the work at (N/P)(c+w)."""
        assert linear_contrast(100.0, 4, c=1.0, w=1.0) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dlt_phase_report(N=-1.0, P=4, alpha=2.0)
        with pytest.raises(TypeError):
            dlt_phase_report(N=1.0, P=4.5, alpha=2.0)
