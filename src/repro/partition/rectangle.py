"""Rectangle and partition geometry with exactness validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

_ATOL = 1e-9


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle ``[x, x+w] × [y, y+h]``.

    ``owner`` links a rectangle back to the processor index whose area
    requirement it satisfies.
    """

    x: float
    y: float
    w: float
    h: float
    owner: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"negative extent: w={self.w}, h={self.h}")

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def half_perimeter(self) -> float:
        """:math:`w + h` — the outer-product communication cost of the
        rectangle (the ``k + l`` of §4.1.2)."""
        return self.w + self.h

    @property
    def x2(self) -> float:
        return self.x + self.w

    @property
    def y2(self) -> float:
        return self.y + self.h

    def contains_point(self, px: float, py: float, atol: float = _ATOL) -> bool:
        return (
            self.x - atol <= px <= self.x2 + atol
            and self.y - atol <= py <= self.y2 + atol
        )

    def overlaps(self, other: "Rectangle", atol: float = _ATOL) -> bool:
        """Positive-area intersection (shared edges don't count)."""
        ix = min(self.x2, other.x2) - max(self.x, other.x)
        iy = min(self.y2, other.y2) - max(self.y, other.y)
        return ix > atol and iy > atol

    def scaled(self, factor: float) -> "Rectangle":
        """Scale the unit-square geometry to an ``N × N`` domain."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return Rectangle(
            x=self.x * factor,
            y=self.y * factor,
            w=self.w * factor,
            h=self.h * factor,
            owner=self.owner,
        )

    def row_range(self, n: int) -> tuple[int, int]:
        """Integer row interval covered when the unit square maps to an
        ``n × n`` grid: ``[floor(y*n), ceil(y2*n))`` clipped to ``n``."""
        lo = int(np.floor(self.y * n + _ATOL))
        hi = int(np.ceil(self.y2 * n - _ATOL))
        return max(0, lo), min(n, hi)

    def col_range(self, n: int) -> tuple[int, int]:
        """Integer column interval, analogous to :meth:`row_range`."""
        lo = int(np.floor(self.x * n + _ATOL))
        hi = int(np.ceil(self.x2 * n - _ATOL))
        return max(0, lo), min(n, hi)


def build_rectangles(
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    h: np.ndarray,
    owners: np.ndarray,
) -> tuple[Rectangle, ...]:
    """Construct rectangles from coordinate arrays on the fast path.

    Writes fields straight into each instance ``__dict__`` instead of
    going through the frozen-dataclass ``__init__`` (one
    ``object.__setattr__`` per field) — the builder is called with
    thousands of rectangles per planning batch, where that overhead is
    the dominant construction cost.  The negative-extent invariant of
    ``Rectangle.__post_init__`` is enforced once, on the arrays.
    """
    if w.size and (w.min() < 0 or h.min() < 0):
        bad = int(np.argmax((w < 0) | (h < 0)))
        raise ValueError(f"negative extent: w={w[bad]}, h={h[bad]}")
    new = Rectangle.__new__
    rects = []
    for xi, yi, wi, hi, oi in zip(
        x.tolist(), y.tolist(), w.tolist(), h.tolist(), owners.tolist()
    ):
        r = new(Rectangle)
        d = r.__dict__
        d["x"] = xi
        d["y"] = yi
        d["w"] = wi
        d["h"] = hi
        d["owner"] = oi
        rects.append(r)
    return tuple(rects)


class Partition:
    """A set of rectangles tiling a ``side × side`` square domain.

    The canonical geometry is five coordinate arrays (:meth:`coords`);
    the ``rectangles`` tuple is materialised lazily on first access, so
    hot planning paths that only need array queries (validation, the
    half-perimeter objectives, scaling) never pay per-rectangle object
    construction.  Instances are immutable in use — treat them as
    frozen values, exactly like the dataclass this used to be.
    """

    __slots__ = ("_rects", "_coords", "side")

    def __init__(
        self, rectangles: Iterable[Rectangle], side: float = 1.0
    ) -> None:
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self._rects: tuple[Rectangle, ...] | None = tuple(rectangles)
        self._coords = None
        self.side = float(side)

    @classmethod
    def from_arrays(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        owners: np.ndarray,
        side: float = 1.0,
    ) -> "Partition":
        """Build a partition straight from coordinate arrays.

        The fast-path constructor used by the batch kernels and the
        binary wire: no :class:`Rectangle` objects are created until
        somebody actually iterates the partition.
        """
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        w = np.asarray(w, dtype=float)
        h = np.asarray(h, dtype=float)
        if w.size and (w.min() < 0 or h.min() < 0):
            bad = int(np.argmax((w < 0) | (h < 0)))
            raise ValueError(f"negative extent: w={w[bad]}, h={h[bad]}")
        part = object.__new__(cls)
        part._rects = None
        part._coords = (
            np.asarray(x, dtype=float),
            np.asarray(y, dtype=float),
            w,
            h,
            np.asarray(owners, dtype=np.intp),
        )
        part.side = float(side)
        return part

    @property
    def rectangles(self) -> tuple[Rectangle, ...]:
        if self._rects is None:
            self._rects = build_rectangles(*self._coords)
        return self._rects

    def __reduce__(self):
        # Pickle the compact array form; rectangles rebuild lazily.
        x, y, w, h, owner = self.coords()
        return (_partition_from_arrays, (x, y, w, h, owner, self.side))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.side == other.side and self.rectangles == other.rectangles

    def __hash__(self) -> int:
        return hash((self.rectangles, self.side))

    def __repr__(self) -> str:
        return f"Partition(rectangles={self.rectangles!r}, side={self.side!r})"

    def __len__(self) -> int:
        if self._rects is not None:
            return len(self._rects)
        return int(self._coords[0].size)

    def __iter__(self):
        return iter(self.rectangles)

    def __getitem__(self, i: int) -> Rectangle:
        return self.rectangles[i]

    def coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(x, y, w, h, owner)`` column arrays, built once per partition.

        The geometry queries below (and the vectorised :meth:`validate`)
        all run off these arrays instead of per-rectangle Python
        attribute access; the partition is frozen in use, so the cache
        never goes stale.
        """
        if self._coords is None:
            r = self._rects
            self._coords = (
                np.array([q.x for q in r], dtype=float),
                np.array([q.y for q in r], dtype=float),
                np.array([q.w for q in r], dtype=float),
                np.array([q.h for q in r], dtype=float),
                np.array([q.owner for q in r], dtype=np.intp),
            )
        return self._coords

    @property
    def areas(self) -> np.ndarray:
        _, _, w, h, _ = self.coords()
        return w * h

    @property
    def sum_half_perimeters(self) -> float:
        """The PERI-SUM objective :math:`\\hat C = \\sum_i (w_i + h_i)`."""
        _, _, w, h, _ = self.coords()
        return float(np.sum(w + h))

    @property
    def max_half_perimeter(self) -> float:
        """The PERI-MAX objective :math:`\\max_i (w_i + h_i)`."""
        _, _, w, h, _ = self.coords()
        return float(np.max(w + h))

    def by_owner(self) -> dict[int, Rectangle]:
        """Map owner (processor index) → rectangle."""
        out = {}
        for r in self.rectangles:
            if r.owner in out:
                raise ValueError(f"duplicate owner {r.owner}")
            out[r.owner] = r
        return out

    def scaled(self, factor: float) -> "Partition":
        """Scale to an ``(side*factor)``-sized domain (e.g. ``N × N``).

        Runs on the cached coordinate arrays — one elementwise multiply
        per axis, the same per-field arithmetic as
        :meth:`Rectangle.scaled` — then rebuilds through the fast
        constructor path.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        x, y, w, h, owner = self.coords()
        return Partition.from_arrays(
            x * factor, y * factor, w * factor, h * factor, owner,
            side=self.side * factor,
        )

    def validate(
        self,
        expected_areas: Sequence[float] | None = None,
        atol: float = 1e-7,
    ) -> None:
        """Assert the partition is exact: raises ``ValueError`` if not.

        Checks: rectangles inside the domain, pairwise interior-disjoint,
        total area equals the domain, and (optionally) each rectangle's
        area matches ``expected_areas`` by owner index.
        """
        total_area = self.side * self.side
        x, y, w, h, owner = self.coords()
        x2, y2 = x + w, y + h
        out = (x < -atol) | (y < -atol) | (x2 > self.side + atol) | (y2 > self.side + atol)
        if out.any():
            r = self.rectangles[int(np.argmax(out))]
            raise ValueError(f"rectangle {r} exceeds the domain")
        # Pairwise overlap via one broadcast intersection matrix — the
        # same positive-area test as Rectangle.overlaps, O(p^2) in NumPy
        # instead of Python (this check used to dominate het planning).
        ix = np.minimum(x2[:, None], x2[None, :]) - np.maximum(x[:, None], x[None, :])
        iy = np.minimum(y2[:, None], y2[None, :]) - np.maximum(y[:, None], y[None, :])
        clash = (ix > atol) & (iy > atol)
        np.fill_diagonal(clash, False)  # self-intersection is not overlap
        if clash.any():
            # symmetric matrix: report the lexicographically first i < j
            i, j = (int(v) for v in np.argwhere(clash)[0])
            rects = self.rectangles
            raise ValueError(
                f"rectangles {i} and {j} overlap: "
                f"{rects[i]} vs {rects[j]}"
            )
        covered = float(self.areas.sum())
        if abs(covered - total_area) > atol * max(1.0, total_area):
            raise ValueError(
                f"partition covers area {covered}, expected {total_area}"
            )
        if expected_areas is not None:
            expected = np.asarray(expected_areas, dtype=float)
            bad = (owner < 0) | (owner >= expected.size)
            if bad.any():
                raise ValueError(
                    f"owner {self.rectangles[int(np.argmax(bad))].owner} "
                    f"out of range"
                )
            got = np.empty_like(expected)
            got[owner] = w * h
            # same test as np.allclose(got, expected, atol, rtol=1e-6)
            # without its per-call machinery (this runs on every plan)
            close = np.abs(got - expected) <= atol + 1e-6 * np.abs(expected)
            if not close.all():
                raise ValueError(
                    f"areas {got} do not match prescription {expected}"
                )


def _partition_from_arrays(x, y, w, h, owner, side) -> Partition:
    """Module-level unpickle target for :meth:`Partition.__reduce__`."""
    return Partition.from_arrays(x, y, w, h, owner, side=side)


def stack_column(
    x: float, width: float, areas: Iterable[float], owners: Iterable[int],
    side: float = 1.0,
) -> List[Rectangle]:
    """Stack rectangles of the given areas into one full-height column.

    Column spans ``[x, x+width] × [0, side]``; each rectangle has the
    column's width and height ``area/width``.  Heights are normalised so
    they exactly fill the column (guards against float drift).
    """
    areas = list(areas)
    owners = list(owners)
    if len(areas) != len(owners):
        raise ValueError("areas and owners must have equal length")
    if width <= 0:
        raise ValueError(f"column width must be positive, got {width}")
    heights = np.array(areas, dtype=float) / width
    total = float(heights.sum())
    if total <= 0:
        raise ValueError("column must have positive total area")
    heights *= side / total
    rects = []
    y = 0.0
    for h, owner in zip(heights, owners):
        rects.append(Rectangle(x=x, y=y, w=width, h=float(h), owner=owner))
        y += float(h)
    # Snap the last rectangle to the domain edge.
    last = rects[-1]
    rects[-1] = Rectangle(
        x=last.x, y=last.y, w=last.w, h=side - last.y, owner=last.owner
    )
    return rects
