"""Benchmark regenerating experiment E12 (Figure 2) as a table."""

import pytest

from repro.experiments.footprint import run_footprint_experiment


def test_footprint_gap_and_affinity_recovery(benchmark):
    result = benchmark.pedantic(run_footprint_experiment, iterations=1, rounds=1)
    print()
    print(result.render())
    for row in result.rows:
        # affinity ships no more than plain, no less than the footprint
        assert row.affinity_shipped <= row.plain_shipped + 1e-9
        assert row.affinity_shipped >= row.union_footprint - 1e-9
        # affinity is *exactly* the footprint: unbounded caches mean a
        # worker pays each segment once
        assert row.affinity_shipped == pytest.approx(row.union_footprint)
    # the gap the paper's proposal recovers is material
    assert max(r.saved_fraction for r in result.rows) > 0.05
