"""Command-line interface: regenerate any paper experiment from a shell.

Usage (after ``pip install -e .``, which installs the ``repro``
console script; ``python -m repro`` works too)::

    repro list                   # every registered component, by kind
    repro list strategy          # one kind
    repro plan --speeds 1 2 4 8 --N 10000
    repro plan --speeds 1 2 4 8 --strategy hom/k
    repro compare --speeds 1 2 4 8   # sweep every registered strategy
    repro compare --speeds 1 2 4 8 --backend threaded --jobs 4
    repro compare --speeds 1 2 4 8 --no-vectorize   # scalar misses
    repro compare --speeds 1 2 4 8 --cost-model piecewise
    repro serve --port 8640 --cache tiered:plans.db   # HTTP plan server
    repro figure4 --backend remote:localhost:8640 --no-cache  # offload
    repro cluster up -n 3 --dispatch consistent-hash  # scale-out pool
    repro cluster up -n 2 --log access.log            # + access lines
    repro cluster status         # pool liveness + request totals
    repro cluster down           # stop workers + coordinator
    repro loadtest localhost:8650 --rps 100 --duration 10
    repro serve --trace spans.jsonl                   # span recording
    repro cluster up -n 2 --trace spans.jsonl         # + PATH.wN per worker
    repro loadtest localhost:8650 --trace-sample 10   # 1-in-10 end-to-end
    repro loadtest localhost:8650 --slo-p99-ms 50 --find-max-rps
    repro trace spans.jsonl spans.jsonl.w0 spans.jsonl.w1
    repro compare --speeds 1 2 4 8 --cache http://localhost:8640
    repro cache-stats --speeds 1 2 4 8 --repeats 3
    repro figure4 --model uniform --trials 100 --backend process
    repro figure4 --trials 100 --cache sqlite:plans.db   # resumable
    repro cache stats plans.db   # also: clear / export / import
    repro section2 --alphas 1.5 2 3
    repro section3
    repro rho --k 4 16 64
    repro sort --n 200000 --speeds 1 1 2 4
    repro all                    # every experiment, default protocol

Strategy and component names are resolved through
:mod:`repro.registry`, so plugins registered by third-party code are
planable and listable with no CLI edits.  Each experiment sub-command
prints the same ASCII table the corresponding benchmark produces, so
the CLI is the interactive twin of ``pytest benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np


def registry_kinds() -> tuple[str, ...]:
    """Component kinds for the ``list`` sub-command's choices.

    Reads only the kind names — provider modules stay unimported until
    a component of that kind is actually queried.
    """
    from repro import registry

    return registry.kinds()


def _session_from_args(args: argparse.Namespace):
    """Build the PlannerSession the plan/compare/cache-stats family uses."""
    from repro.core.session import PlannerSession

    return PlannerSession(
        backend=getattr(args, "backend", "serial"),
        cache=_cache_arg(args),
        jobs=getattr(args, "jobs", None),
        vectorize=getattr(args, "vectorize", True),
    )


def _cache_arg(args: argparse.Namespace) -> "bool | str":
    """The session ``cache`` argument --no-cache/--cache resolve to."""
    if getattr(args, "no_cache", False):
        return False
    return getattr(args, "cache", None) or True


def _access_log_from_arg(args: argparse.Namespace):
    """The AccessLog a ``--log`` flag asks for (``None`` when absent).

    ``--log`` alone streams to stderr (composes with shell
    redirection); ``--log PATH`` appends to a file the server owns.
    """
    target = getattr(args, "log", None)
    if target is None:
        return None
    from repro.service.metrics import AccessLog

    return AccessLog() if target == "-" else AccessLog.open(target)


def _add_log_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=(
            "structured access log, one ts/endpoint/status/elapsed_ms/"
            "wire/bytes/trace line per handled request: to stderr with "
            "no argument, appended to PATH with one"
        ),
    )


def _span_recorder_from_arg(args: argparse.Namespace, service: str):
    """The SpanRecorder a ``--trace`` flag asks for (``None`` when absent).

    Mirrors ``--log``: bare ``--trace`` streams span JSONL to stderr,
    ``--trace PATH`` appends to a file the server owns and closes.
    """
    target = getattr(args, "trace", None)
    if target is None:
        return None
    from repro.obs import SpanRecorder

    if target == "-":
        return SpanRecorder.stderr(service=service)
    return SpanRecorder.open(target, service=service)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_session_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        type=str,
        default="serial",
        help=(
            "execution backend spec routing the planning work: a "
            "registered name (`repro list backend`) or remote:HOST:PORT "
            "to offload to a `repro serve` instance (default: serial)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="plan every request anew instead of using the plan cache",
    )
    parser.add_argument(
        "--cache",
        type=str,
        default=None,
        metavar="SPEC",
        help=(
            "plan store spec: memory[:SIZE], sqlite:PATH, tiered:PATH, "
            "http://HOST:PORT (a `repro serve` instance's shared store) "
            "or tiered:http://HOST:PORT (memory front over it); default: "
            "memory. A sqlite/tiered path persists plans, so an "
            "interrupted sweep rerun against the same path resumes from "
            "disk hits; inspect it with `repro cache stats PATH`"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker cap for concurrent backends (default: backend's choice)",
    )
    parser.add_argument(
        "--vectorize",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "fuse batched cache misses through the strategies' NumPy "
            "kernels (results are identical either way; default: on)"
        ),
    )


def _cmd_figure4(args: argparse.Namespace) -> int:
    from repro.experiments.figure4 import run_figure4
    from repro.util.ascii_plot import figure4_chart

    result = run_figure4(
        args.model,
        processors=tuple(args.processors),
        trials=args.trials,
        seed=args.seed,
        backend=args.backend,
        jobs=args.jobs,
        cache=_cache_arg(args),
        vectorize=args.vectorize,
    )
    print(result.render())
    if args.chart:
        print()
        print(figure4_chart(result, log_y=args.model != "homogeneous"))
    return 0


def _cmd_section2(args: argparse.Namespace) -> int:
    from repro.experiments.section2 import run_section2

    print(
        run_section2(
            processors=tuple(args.processors),
            alphas=tuple(args.alphas),
            N=args.N,
            seed=args.seed,
        ).render()
    )
    return 0


def _cmd_section3(args: argparse.Namespace) -> int:
    from repro.experiments.section3 import run_section3

    print(run_section3(exec_N=args.n, seed=args.seed).render())
    return 0


def _cmd_rho(args: argparse.Namespace) -> int:
    from repro.experiments.rho import run_rho_experiment

    print(
        run_rho_experiment(
            ks=tuple(args.k),
            p=args.p,
            N=args.N,
            backend=args.backend,
            jobs=args.jobs,
            cache=_cache_arg(args),
            vectorize=args.vectorize,
        ).render()
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro import registry

    kinds = (args.kind,) if args.kind else registry.kinds()
    for kind in kinds:
        components = registry.describe(kind)
        print(f"{kind} ({len(components)} registered):")
        for comp in components:
            summary = f"  {comp.summary}" if comp.summary else ""
            print(f"  {comp.name:<20}{summary}")
        print()
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.pipeline import PlanRequest
    from repro.core.strategies import compare_strategies
    from repro.platform.star import StarPlatform

    platform = StarPlatform.from_speeds(args.speeds)
    print(platform.describe())
    print()
    with _session_from_args(args) as session:
        if args.strategy is not None:
            result = session.plan(
                PlanRequest(
                    platform=platform,
                    N=args.N,
                    strategy=args.strategy,
                    params={"imbalance_target": args.imbalance_target},
                )
            )
            print(result.summary())
        else:
            print(
                compare_strategies(
                    platform,
                    N=args.N,
                    imbalance_target=args.imbalance_target,
                    session=session,
                ).summary()
            )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.platform.star import StarPlatform

    platform = StarPlatform.from_speeds(args.speeds)
    model = None
    if args.cost_model:
        # resolve up front: a typo'd model name must fail before the
        # sweep is planned (and before any table output), like unknown
        # strategies and backends do
        from repro import registry

        model = registry.create("cost_model", args.cost_model)
    print(platform.describe())
    print()
    with _session_from_args(args) as session:
        sweep = session.sweep(
            platform, args.N, imbalance_target=args.imbalance_target
        )
        print(sweep.render())
        if model is not None:
            from repro.core.strategies import work_coverage

            print()
            print(
                f"work coverage under cost model {args.cost_model!r} "
                "(1 = linear; lower = one round covers less of the job):"
            )
            for name, res in sweep.results.items():
                print(f"  {name:<8}{work_coverage(res.plan, model):.4f}")
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    """Repeat one sweep through a single session and show cache effect."""
    from repro.platform.star import StarPlatform

    platform = StarPlatform.from_speeds(args.speeds)
    with _session_from_args(args) as session:
        sweep = None
        for _ in range(max(1, args.repeats)):
            sweep = session.sweep(
                platform, args.N, imbalance_target=args.imbalance_target
            )
        print(sweep.render())
        print()
        stats = session.cache_stats()
        if stats is None:
            print("plan cache disabled (--no-cache)")
        else:
            print(stats.render())
    return 0


def _cache_file_path(path: str) -> str:
    """The sqlite file behind a raw path or sqlite:/tiered: spec."""
    for prefix in ("sqlite:", "tiered:"):
        if path.startswith(prefix):
            return path[len(prefix):]
    return path


def _cmd_cache_group(args: argparse.Namespace) -> int:
    """Manage a persistent plan cache file: stats/clear/export/import."""
    import os
    import sqlite3

    from repro.core.cache import SQLitePlanCache

    path = _cache_file_path(args.path)
    # only `import` may create the file; inspecting or clearing a cache
    # that does not exist is a typo, not an empty result
    if args.cache_command != "import" and not os.path.exists(path):
        print(f"error: no plan cache at {path}", file=sys.stderr)
        return 2
    try:
        store = SQLitePlanCache(path)
    except sqlite3.DatabaseError as exc:
        # e.g. pointing `stats` at an export pickle instead of the db
        print(f"error: {path} is not a plan cache ({exc})", file=sys.stderr)
        return 2
    try:
        if args.cache_command == "stats":
            print(f"plan cache {store.path}: {len(store)} entr"
                  f"{'y' if len(store) == 1 else 'ies'}")
            print(store.stats.render())
        elif args.cache_command == "clear":
            entries = len(store)
            store.clear()
            print(f"cleared {entries} entr{'y' if entries == 1 else 'ies'} "
                  f"from {store.path} (statistics reset)")
        elif args.cache_command == "export":
            try:
                count = store.export_file(args.output)
            except OSError as exc:
                print(f"error: cannot write {args.output}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"exported {count} entr{'y' if count == 1 else 'ies'} "
                  f"to {args.output}")
        elif args.cache_command == "import":
            try:
                count = store.import_file(args.input)
            except (FileNotFoundError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(f"imported {count} entr{'y' if count == 1 else 'ies'} "
                  f"into {store.path}")
    finally:
        store.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP plan server until interrupted."""
    from repro.service.server import PlanServer

    server = PlanServer(
        host=args.host,
        port=args.port,
        backend=args.backend,
        jobs=args.jobs,
        cache=_cache_arg(args),
        vectorize=args.vectorize,
        wire_mode=args.wire,
        max_inflight=args.max_inflight,
        access_log=_access_log_from_arg(args),
        span_recorder=_span_recorder_from_arg(args, "server"),
    )
    print(f"repro plan server listening on {server.url}", flush=True)
    print(
        f"  backend={args.backend!r} cache={server.cache_spec!r} "
        f"wire={args.wire!r} ({', '.join(server.wire_profiles)}) — "
        "endpoints: /plan /plan_batch /cache/get /cache/put "
        "/cache/stats /healthz",
        flush=True,
    )
    print(
        "  point clients at it: "
        f"--backend remote:{server.host}:{server.port} "
        f"or --cache http://{server.host}:{server.port}  (Ctrl-C stops)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_cluster_up(args: argparse.Namespace) -> int:
    """Launch N worker replicas behind a coordinator, foreground."""
    from repro.cluster.lifecycle import LocalCluster, default_state_path

    cluster = LocalCluster(
        n=args.workers,
        host=args.host,
        port=args.port,
        backend=args.backend,
        jobs=args.jobs,
        cache=None if args.no_cache else (args.cache or "memory"),
        vectorize=args.vectorize,
        wire=args.wire,
        dispatch=args.dispatch,
        max_inflight=args.max_inflight,
        worker_max_inflight=args.worker_max_inflight,
        state_path=args.state or default_state_path(),
        access_log=_access_log_from_arg(args),
        trace=args.trace,
    )
    try:
        cluster.start()
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        cluster.close()
        return 2
    for worker in cluster.workers:
        print(f"worker {worker.index}: {worker.url} (pid {worker.pid})",
              flush=True)
    print(f"repro cluster coordinator listening on {cluster.url}", flush=True)
    print(
        f"  dispatch={args.dispatch!r} workers={args.workers} "
        f"state={cluster.state_path}",
        flush=True,
    )
    print(
        "  point clients at it: "
        f"--backend remote:{cluster.coordinator.host}:"
        f"{cluster.coordinator.port} — "
        "`repro cluster status` / `repro cluster down` from any shell "
        "(Ctrl-C stops)",
        flush=True,
    )
    try:
        cluster.coordinator.join()
    except KeyboardInterrupt:
        pass
    finally:
        cluster.close()
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    """Show pool membership and request totals of a running cluster."""
    from repro.cluster.lifecycle import (
        cluster_metrics,
        cluster_status,
        default_state_path,
        read_state,
    )

    state_path = args.state or default_state_path()
    try:
        state = read_state(state_path)
    except FileNotFoundError:
        print(
            f"error: no cluster state at {state_path} "
            "(is a `repro cluster up` running? --state to point elsewhere)",
            file=sys.stderr,
        )
        return 2
    url = state["coordinator"]["url"]
    try:
        status = cluster_status(url)
        metrics = cluster_metrics(url)
    except OSError as exc:
        print(f"error: coordinator at {url} unreachable ({exc}); "
              f"`repro cluster down` cleans up", file=sys.stderr)
        return 2
    pool = status["pool"]
    print(f"coordinator {url}  dispatch={status['dispatch']}  "
          f"workers {pool['alive']}/{pool['total']} alive")
    for worker in pool["workers"]:
        flag = "up  " if worker["alive"] else "DEAD"
        print(
            f"  [{flag}] {worker['url']}  inflight={worker['inflight']} "
            f"dispatched={worker['dispatched']} failures={worker['failures']}"
            + (f"  ({worker['reason']})" if worker["reason"] else "")
        )
    totals = metrics["cluster"]["endpoints"]
    if totals:
        print("cluster request totals:")
        for endpoint, stats in totals.items():
            print(
                f"  {endpoint:<14} {stats['count']:>8}  "
                f"errors={stats['errors']}  p50={stats['p50_ms']}ms  "
                f"p99={stats['p99_ms']}ms"
            )
    return 0


def _cmd_cluster_down(args: argparse.Namespace) -> int:
    """Stop the cluster the state file describes and clean up."""
    from repro.cluster.lifecycle import (
        default_state_path,
        read_state,
        remove_state,
        shutdown_cluster,
    )

    state_path = args.state or default_state_path()
    try:
        state = read_state(state_path)
    except FileNotFoundError:
        print(f"error: no cluster state at {state_path}", file=sys.stderr)
        return 2
    pids = shutdown_cluster(state)
    remove_state(state_path)
    print(
        f"cluster down: coordinator at {state['coordinator']['url']} "
        f"stopped, {len(pids)} worker pid(s) reaped, {state_path} removed"
    )
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Open-loop load test against a server/coordinator; exit 1 on fail."""
    from repro.loadtest import find_max_rps, parse_mix, run_loadtest

    kwargs = dict(
        mix=parse_mix(args.mix) if args.mix else None,
        seed=args.seed,
        threads=args.threads,
        wire_profile=args.wire_profile,
        timeout=args.timeout,
        error_budget=args.error_budget,
        batch_size=args.batch_size,
        check_server=not args.no_check,
        trace_sample=args.trace_sample,
    )
    try:
        if args.find_max_rps:
            if args.slo_p99_ms is None:
                print(
                    "error: --find-max-rps needs --slo-p99-ms to search "
                    "against",
                    file=sys.stderr,
                )
                return 2
            search = find_max_rps(
                args.target,
                slo_p99_ms=args.slo_p99_ms,
                start_rps=args.rps,
                duration=args.duration,
                **kwargs,
            )
            print(search.to_json() if args.json else search.render())
            return 0 if search.found else 1
        report = run_loadtest(
            args.target, rps=args.rps, duration=args.duration, **kwargs
        )
    except ValueError as exc:
        # bad --mix spec / non-positive --rps etc. are user errors:
        # message + exit 2, like the rest of the CLI
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace_file and report.client_spans:
        count = report.write_client_spans(args.trace_file)
        print(
            f"wrote {count} client span(s) to {args.trace_file}",
            file=sys.stderr,
        )
    print(report.to_json() if args.json else report.render())
    if args.slo_p99_ms is not None and report.p99_ms > args.slo_p99_ms:
        print(
            f"SLO violated: p99 {report.p99_ms:.2f}ms > "
            f"{args.slo_p99_ms:g}ms",
            file=sys.stderr,
        )
        return 1
    return 0 if report.passed else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Assemble span files into traces; print stats + slowest trees."""
    from repro.obs import assemble_traces, read_spans, stage_stats
    from repro.obs.assemble import render_trace

    try:
        spans = read_spans(args.files)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    traces = assemble_traces(spans)
    if not traces:
        print("no traces found")
        return 1
    complete = [t for t in traces if t.complete]
    print(
        f"{len(traces)} trace(s) from {len(spans)} spans "
        f"({len(traces) - len(complete)} incomplete)"
    )
    print()
    print("per-stage latency (all traces, by total time):")
    for stage in stage_stats(traces):
        print(
            f"  {stage.name:<24} n={stage.count:>5}  "
            f"p50={1000 * stage.p50_s:>8.2f}ms  "
            f"p99={1000 * stage.p99_s:>8.2f}ms  "
            f"total={stage.total_s:>8.3f}s"
        )
    for trace in traces[: max(0, args.slow)]:
        print()
        print(render_trace(trace))
        path = " > ".join(span.name for span in trace.critical_path())
        print(f"  critical path: {path}")
        print(f"  accounted: {trace.accounted_fraction():.1%} of root")
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    from repro.platform.star import StarPlatform
    from repro.sorting.sample_sort import sample_sort

    platform = StarPlatform.from_speeds(args.speeds)
    keys = np.random.default_rng(args.seed).random(args.n)
    res = sample_sort(keys, platform, rng=args.seed)
    ok = bool(np.array_equal(res.sorted_keys, np.sort(keys)))
    print(
        f"sample sort: N={args.n}, p={platform.size}, "
        f"s={res.oversampling}, sorted={ok}"
    )
    print(f"  bucket sizes:   {res.bucket_sizes.tolist()}")
    print(f"  makespan:       {res.makespan:,.0f} work units")
    print(f"  speedup:        {res.speedup():.2f}x over one master-speed core")
    print(f"  parallel frac:  {100 * res.parallel_fraction:.1f}%")
    return 0 if ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    report = build_report(
        trials=args.trials, seed=args.seed, charts=not args.no_charts
    )
    if args.output:
        report.save(args.output)
        print(f"report written to {args.output}")
    else:
        print(report.text)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.experiments.figure4 import run_figure4
    from repro.experiments.rho import run_rho_experiment
    from repro.experiments.section2 import run_section2
    from repro.experiments.section3 import run_section3

    for model in ("homogeneous", "uniform", "lognormal"):
        print(
            run_figure4(
                model, processors=(10, 40, 100), trials=args.trials, seed=args.seed
            ).render()
        )
        print()
    print(run_section2().render())
    print()
    print(run_section3().render())
    print()
    print(run_rho_experiment(p=40).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Non-Linear Divisible Loads: There is No "
            "Free Lunch' — regenerate any experiment."
        ),
    )
    parser.add_argument("--seed", type=int, default=2013, help="RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p4 = sub.add_parser("figure4", help="Figure 4 panel (a/b/c)")
    p4.add_argument(
        "--model",
        choices=("homogeneous", "uniform", "lognormal"),
        default="uniform",
    )
    p4.add_argument(
        "--processors", type=int, nargs="+", default=[10, 20, 40, 60, 80, 100]
    )
    p4.add_argument("--trials", type=int, default=100)
    p4.add_argument(
        "--chart", action="store_true", help="also draw an ASCII chart"
    )
    _add_session_options(p4)
    p4.set_defaults(fn=_cmd_figure4)

    p2 = sub.add_parser("section2", help="the vanishing-fraction table")
    p2.add_argument(
        "--processors", type=int, nargs="+", default=[2, 4, 8, 16, 32, 64, 128]
    )
    p2.add_argument("--alphas", type=float, nargs="+", default=[1.5, 2.0, 3.0])
    p2.add_argument("--N", type=float, default=1000.0)
    p2.set_defaults(fn=_cmd_section2)

    p3 = sub.add_parser("section3", help="sorting residue + sample sorts")
    p3.add_argument("--n", type=int, default=200_000, help="keys per run")
    p3.set_defaults(fn=_cmd_section3)

    pr = sub.add_parser("rho", help="half-slow/half-fast rho table")
    pr.add_argument("--k", type=float, nargs="+", default=[1, 2, 4, 9, 16, 25, 64])
    pr.add_argument("--p", type=int, default=40)
    pr.add_argument("--N", type=float, default=10_000.0)
    _add_session_options(pr)
    pr.set_defaults(fn=_cmd_rho)

    pl = sub.add_parser(
        "list", help="list registered components (strategies, solvers, ...)"
    )
    pl.add_argument(
        "kind",
        nargs="?",
        default=None,
        choices=registry_kinds(),
        help="restrict to one component kind",
    )
    pl.set_defaults(fn=_cmd_list)

    pp = sub.add_parser("plan", help="plan / compare strategies on a platform")
    pp.add_argument("--speeds", type=float, nargs="+", required=True)
    pp.add_argument("--N", type=float, default=10_000.0)
    pp.add_argument(
        "--strategy",
        type=str,
        default=None,
        help=(
            "plan with one registered strategy (see `repro list strategy`); "
            "default: compare all of them"
        ),
    )
    pp.add_argument("--imbalance-target", type=float, default=0.01)
    _add_session_options(pp)
    pp.set_defaults(fn=_cmd_plan)

    pc = sub.add_parser(
        "compare", help="sweep every registered strategy on one instance"
    )
    pc.add_argument("--speeds", type=float, nargs="+", required=True)
    pc.add_argument("--N", type=float, default=10_000.0)
    pc.add_argument("--imbalance-target", type=float, default=0.01)
    pc.add_argument(
        "--cost-model",
        type=str,
        default=None,
        metavar="NAME",
        help=(
            "also score every plan's work coverage under a registered "
            "cost model (see `repro list cost_model`, e.g. piecewise)"
        ),
    )
    _add_session_options(pc)
    pc.set_defaults(fn=_cmd_compare)

    pcs = sub.add_parser(
        "cache-stats",
        help="repeat a sweep through one session and report the plan cache",
    )
    pcs.add_argument("--speeds", type=float, nargs="+", required=True)
    pcs.add_argument("--N", type=float, default=10_000.0)
    pcs.add_argument("--imbalance-target", type=float, default=0.01)
    pcs.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="how many times to run the identical sweep (default: 2)",
    )
    _add_session_options(pcs)
    pcs.set_defaults(fn=_cmd_cache_stats)

    pcache = sub.add_parser(
        "cache", help="manage a persistent plan cache (sqlite file)"
    )
    cache_sub = pcache.add_subparsers(dest="cache_command", required=True)
    c_stats = cache_sub.add_parser(
        "stats", help="entry count and persisted hit/miss statistics"
    )
    c_stats.add_argument("path", help="cache file (or sqlite:PATH spec)")
    c_clear = cache_sub.add_parser(
        "clear", help="drop every entry and reset the statistics"
    )
    c_clear.add_argument("path", help="cache file (or sqlite:PATH spec)")
    c_export = cache_sub.add_parser(
        "export", help="write all entries to a portable file"
    )
    c_export.add_argument("path", help="cache file (or sqlite:PATH spec)")
    c_export.add_argument("output", help="destination export file")
    c_import = cache_sub.add_parser(
        "import", help="merge an exported file into a cache"
    )
    c_import.add_argument("path", help="cache file (or sqlite:PATH spec)")
    c_import.add_argument("input", help="export file to merge in")
    pcache.set_defaults(fn=_cmd_cache_group)

    psv = sub.add_parser(
        "serve",
        help="serve the planner over HTTP (/plan, /plan_batch, /cache/*)",
    )
    psv.add_argument(
        "--host",
        type=str,
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1 — trusted networks only)",
    )
    psv.add_argument(
        "--port",
        type=int,
        default=8640,
        help="TCP port (0 binds an ephemeral port; default: 8640)",
    )
    psv.add_argument(
        "--wire",
        choices=("auto", "safe"),
        default="auto",
        help="wire profiles to accept: 'auto' speaks binary-v2 and legacy "
        "pickle-v1; 'safe' refuses pickle entirely (binary-v2 only)",
    )
    psv.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission limit: refuse planning requests beyond N in "
            "flight with 429 + Retry-After (default: unbounded)"
        ),
    )
    _add_log_option(psv)
    psv.add_argument(
        "--trace",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=(
            "record request spans (wire decode, cache lookup, plan "
            "kernel, encode) for sampled requests as JSON lines: to "
            "stderr with no argument, appended to PATH with one; "
            "assemble with `repro trace PATH`"
        ),
    )
    _add_session_options(psv)
    psv.set_defaults(fn=_cmd_serve)

    pcl = sub.add_parser(
        "cluster",
        help="run N plan-server replicas behind one coordinator",
    )
    cluster_sub = pcl.add_subparsers(dest="cluster_command", required=True)
    cl_up = cluster_sub.add_parser(
        "up", help="launch workers + coordinator in the foreground"
    )
    cl_up.add_argument(
        "-n",
        "--workers",
        type=_positive_int,
        default=2,
        help="worker replica count (default: 2)",
    )
    cl_up.add_argument(
        "--host",
        type=str,
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1 — trusted networks only)",
    )
    cl_up.add_argument(
        "--port",
        type=int,
        default=8650,
        help="coordinator TCP port (0 = ephemeral; default: 8650); "
        "workers always bind ephemeral ports",
    )
    cl_up.add_argument(
        "--dispatch",
        type=str,
        default="least-loaded",
        metavar="SPEC",
        help=(
            "dispatch policy spec (`repro list dispatch`): least-loaded "
            "or consistent-hash[:REPLICAS] for per-worker cache "
            "affinity (default: least-loaded)"
        ),
    )
    cl_up.add_argument(
        "--wire",
        choices=("auto", "safe"),
        default="auto",
        help="wire profiles coordinator and workers accept",
    )
    cl_up.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="coordinator admission limit (429 beyond N in flight)",
    )
    cl_up.add_argument(
        "--worker-max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="per-worker admission limit (forwards --max-inflight)",
    )
    cl_up.add_argument(
        "--state",
        type=str,
        default=None,
        metavar="PATH",
        help="cluster state file for status/down "
        "(default: ~/.repro-cluster.json)",
    )
    _add_log_option(cl_up)
    cl_up.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "record spans across the whole cluster: the coordinator "
            "appends to PATH, worker i to PATH.wI (workers are "
            "subprocesses, so a file — not stderr — is required); "
            "assemble with `repro trace PATH*`"
        ),
    )
    _add_session_options(cl_up)
    cl_up.set_defaults(fn=_cmd_cluster_up)
    cl_status = cluster_sub.add_parser(
        "status", help="pool membership + request totals of a running cluster"
    )
    cl_status.add_argument("--state", type=str, default=None, metavar="PATH")
    cl_status.set_defaults(fn=_cmd_cluster_status)
    cl_down = cluster_sub.add_parser(
        "down", help="stop the cluster recorded in the state file"
    )
    cl_down.add_argument("--state", type=str, default=None, metavar="PATH")
    cl_down.set_defaults(fn=_cmd_cluster_down)

    plt = sub.add_parser(
        "loadtest",
        help=(
            "open-loop load test against a plan server or cluster "
            "coordinator, with a /metrics cross-check"
        ),
    )
    plt.add_argument(
        "target",
        help=(
            "base URL (or HOST:PORT) of a `repro serve` instance or a "
            "`repro cluster up` coordinator"
        ),
    )
    plt.add_argument(
        "--rps",
        type=float,
        default=50.0,
        help="target request rate; send slots are fixed up front, so a "
        "slow server faces the same arrival rate (default: 50)",
    )
    plt.add_argument(
        "--duration", type=float, default=5.0, help="seconds of traffic"
    )
    plt.add_argument(
        "--threads",
        type=_positive_int,
        default=4,
        help="client worker threads (default: 4)",
    )
    plt.add_argument(
        "--mix",
        type=str,
        default=None,
        metavar="SPEC",
        help=(
            "traffic mix as KIND=WEIGHT pairs, e.g. "
            "plan=6,plan_batch=2,cache_get=2 (the default)"
        ),
    )
    plt.add_argument(
        "--batch-size",
        type=_positive_int,
        default=8,
        help="requests per plan_batch operation (default: 8)",
    )
    plt.add_argument(
        "--wire-profile",
        choices=("auto", "pickle-v1", "binary-v2"),
        default=None,
        help="envelope profile to drive (default: REPRO_WIRE or auto)",
    )
    plt.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-request timeout in seconds (default: 10)",
    )
    plt.add_argument(
        "--error-budget",
        type=float,
        default=0.01,
        help=(
            "max tolerated fraction of answered-error + unreachable "
            "outcomes before the verdict fails; 429 backpressure is "
            "reported but not budgeted (default: 0.01)"
        ),
    )
    plt.add_argument(
        "--no-check",
        action="store_true",
        help="skip the server /metrics request-count cross-check",
    )
    plt.add_argument(
        "--trace-sample",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "trace 1 in N operations end to end: each sampled op gets a "
            "trace id the target continues when run with --trace; the "
            "report lists the sampled ids for `repro trace` to join"
        ),
    )
    plt.add_argument(
        "--trace-file",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "append the sampled client root spans to PATH as JSON "
            "lines; `repro trace PATH SERVER_TRACE...` then assembles "
            "complete client-to-server traces"
        ),
    )
    plt.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "latency SLO: fail (exit 1) if client-observed p99 exceeds "
            "MS milliseconds"
        ),
    )
    plt.add_argument(
        "--find-max-rps",
        action="store_true",
        help=(
            "instead of one run, ramp-and-bisect for the highest rate "
            "whose p99 stays under --slo-p99-ms (--rps is the floor)"
        ),
    )
    plt.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON instead of the summary",
    )
    plt.set_defaults(fn=_cmd_loadtest)

    ptr = sub.add_parser(
        "trace",
        help=(
            "assemble span JSONL files (--trace output) into traces: "
            "per-stage p50/p99 and critical paths of the slowest"
        ),
    )
    ptr.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help="span files: a server's --trace PATH, a cluster's PATH PATH.w*",
    )
    ptr.add_argument(
        "--slow",
        type=int,
        default=3,
        metavar="N",
        help="show the N slowest traces as full trees (default: 3)",
    )
    ptr.set_defaults(fn=_cmd_trace)

    ps = sub.add_parser("sort", help="run a sample sort")
    ps.add_argument("--n", type=int, default=100_000)
    ps.add_argument("--speeds", type=float, nargs="+", default=[1.0, 1.0, 1.0, 1.0])
    ps.set_defaults(fn=_cmd_sort)

    pa = sub.add_parser("all", help="every experiment, reduced protocol")
    pa.add_argument("--trials", type=int, default=20)
    pa.set_defaults(fn=_cmd_all)

    prep = sub.add_parser("report", help="full reproduction report")
    prep.add_argument("--trials", type=int, default=30)
    prep.add_argument("--output", type=str, default=None, help="write to file")
    prep.add_argument("--no-charts", action="store_true")
    prep.set_defaults(fn=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    from repro.registry import RegistryError
    from repro.service.client import PlanServiceError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (RegistryError, PlanServiceError) as exc:
        # unknown/duplicate component names and unreachable plan
        # servers are user errors: report them like argparse does
        # (message + exit 2), not as a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream pager/head closed our stdout; exit quietly like
        # other well-behaved unix CLIs
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
