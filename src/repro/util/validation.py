"""Argument validation helpers with uniform error messages.

All public constructors in the library validate eagerly (fail-fast), so
that a bad platform description or area vector is reported at build time
rather than as a silent NaN deep inside a sweep.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; returns the value for chaining."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_nonnegative(value: float, name: str) -> float:
    """Require ``value >= 0``; returns the value for chaining."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be non-negative and finite, got {value!r}")
    return float(value)


def check_positive_array(values: Sequence[float], name: str) -> np.ndarray:
    """Require a non-empty 1-D array of strictly positive finite floats."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(arr <= 0):
        raise ValueError(f"{name} must be strictly positive everywhere")
    return arr


def check_probability_vector(
    values: Sequence[float], name: str, atol: float = 1e-9
) -> np.ndarray:
    """Require non-negative entries summing to 1 (within ``atol``)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D vector")
    if np.any(arr < -atol) or not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be non-negative and finite")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return arr


def check_in_range(
    value: float, name: str, low: float, high: float, inclusive: bool = True
) -> float:
    """Require ``low <= value <= high`` (or strict when not inclusive)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {low} {op} {name} {op} {high}, got {value}")
    return float(value)


def check_integer(value, name: str, minimum: int | None = None) -> int:
    """Require an integer (rejecting bools), optionally with a lower bound."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value
