#!/usr/bin/env python3
"""Execute every fenced ``python`` code block in README.md.

The docs CI job runs this so the README's quickstart can never rot:
blocks are executed top to bottom in one shared namespace (so later
blocks may build on earlier ones), and any exception fails the run
with the offending block echoed.  Non-Python fences (``console`` etc.)
are ignored — they are exercised separately by the CLI smoke jobs.

Usage::

    python scripts/check_readme_blocks.py [path/to/README.md]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(text: str) -> list[str]:
    return [match.group(1).strip() for match in FENCE.finditer(text)]


def main(argv: list[str]) -> int:
    readme = Path(argv[1]) if len(argv) > 1 else Path("README.md")
    blocks = python_blocks(readme.read_text(encoding="utf-8"))
    if not blocks:
        print(f"error: no ```python blocks found in {readme}", file=sys.stderr)
        return 1
    namespace: dict = {"__name__": "__readme__"}
    for i, block in enumerate(blocks, start=1):
        print(f"-- README block {i}/{len(blocks)} " + "-" * 40)
        try:
            exec(compile(block, f"{readme}:block{i}", "exec"), namespace)
        except Exception:
            print(f"\nREADME block {i} failed:\n\n{block}\n", file=sys.stderr)
            raise
    print(f"\nall {len(blocks)} README python block(s) executed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
