"""User-facing façade: plan an outer product on a platform.

This is the library's quickstart entry point — it hides the strategy
classes behind one function and one comparison helper.  Strategy names
are resolved through :mod:`repro.registry`, so anything registered
under the ``"strategy"`` kind (built-in or plugin) is planable and
shows up in comparisons with no edits here:

>>> from repro.platform import StarPlatform
>>> from repro.core import plan_outer_product
>>> platform = StarPlatform.from_speeds([1, 1, 4, 4])
>>> plan = plan_outer_product(platform, N=1000, strategy="het")
>>> plan.ratio_to_lower_bound  # doctest: +SKIP
1.01...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence

import numpy as np

from repro import registry
from repro.blocks.metrics import StrategyResult
from repro.core.cost_models import CostModel
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession, default_session
from repro.platform.star import StarPlatform

#: alias so downstream users import one name for the result type
OuterProductPlan = StrategyResult


def available_strategies() -> tuple[str, ...]:
    """Names of every registered outer-product strategy."""
    return registry.available("strategy")


def plan_outer_product(
    platform: StarPlatform,
    N: float,
    strategy: str = "het",
    imbalance_target: float = 0.01,
    session: PlannerSession | None = None,
    **params: Any,
) -> OuterProductPlan:
    """Plan the distribution of an ``N × N`` outer product.

    ``strategy`` names any registered strategy (see
    :func:`available_strategies`); the built-ins are:

    * ``"hom"`` — Homogeneous Blocks (§4.1.1),
    * ``"hom/k"`` — refined Homogeneous Blocks with the paper's
      ``e <= imbalance_target`` stopping rule (§4.3),
    * ``"het"`` — Heterogeneous Blocks via PERI-SUM (§4.1.2).

    Extra keyword arguments are forwarded to the strategy's
    constructor when its signature accepts them.  Planning goes through
    ``session`` (default: the process-wide cached serial session), so
    repeated identical queries are served from the plan cache.
    """
    request = PlanRequest(
        platform=platform,
        N=N,
        strategy=strategy,
        params={"imbalance_target": imbalance_target, **params},
    )
    return (session or default_session()).plan(request).plan


def work_coverage(
    plan: OuterProductPlan, cost_model: "str | CostModel"
) -> float:
    """Fraction of the whole job's work one round of ``plan`` covers.

    The §2 vanishing-fraction lens applied to a *concrete* plan: the
    plan's chunks are scored under ``cost_model`` (a registered name or
    a :class:`~repro.core.cost_models.CostModel` instance) as
    :math:`\\sum_j \\text{work}(a_j) / \\text{work}(\\sum_j a_j)`.

    Chunk sizes come from the plan itself: block strategies record
    their chunk count (``detail["n_blocks"]`` — identical chunks by
    construction), anything else is scored at its per-worker shares
    recovered from the finish times (``amount_i = finish_i * s_i``, the
    linear accounting every strategy uses).

    Linear models score 1 for every plan; super-additive models score
    below 1 — the more a strategy fragments the domain, the less of the
    job one distribution round covers (``hom/k``'s many small blocks
    fall furthest), which is exactly the no-free-lunch trade a
    non-linear workload imposes on the Figure-4 strategies.
    """
    if isinstance(cost_model, str):
        cost_model = registry.create("cost_model", cost_model)
    shares = np.asarray(plan.finish_times, dtype=float) * np.asarray(
        plan.speeds, dtype=float
    )
    total = float(shares.sum())
    if total <= 0.0:
        return 1.0
    n_blocks = int(plan.detail.get("n_blocks", 0))
    if n_blocks > 0:
        amounts = np.full(n_blocks, total / n_blocks)
    else:
        amounts = shares
    whole = float(cost_model.work(total))
    if whole == 0.0:
        return 1.0
    return float(np.sum(cost_model.work(amounts))) / whole


@dataclass(frozen=True)
class StrategyComparison:
    """Every compared strategy on one instance, ready for a table row."""

    N: float
    plans: Dict[str, OuterProductPlan]

    @property
    def ratios(self) -> Dict[str, float]:
        """Ratio-to-lower-bound per strategy (Figure 4's quantity)."""
        return {
            name: plan.ratio_to_lower_bound for name, plan in self.plans.items()
        }

    @property
    def rho(self) -> float:
        """Measured :math:`\\rho = Comm_{hom} / Comm_{het}` (§4.1.3)."""
        missing = {"hom", "het"} - set(self.plans)
        if missing:
            raise ValueError(
                f"rho needs both 'hom' and 'het' plans; comparison is "
                f"missing {sorted(missing)}"
            )
        return self.plans["hom"].comm_volume / self.plans["het"].comm_volume

    def work_coverage(
        self, cost_model: "str | CostModel"
    ) -> Dict[str, float]:
        """Per-strategy :func:`work_coverage` under one cost model."""
        if isinstance(cost_model, str):
            cost_model = registry.create("cost_model", cost_model)
        return {
            name: work_coverage(plan, cost_model)
            for name, plan in self.plans.items()
        }

    def summary(self) -> str:
        lines = [f"Outer product N={self.N:g}:"]
        for plan in self.plans.values():
            lines.append(f"  {plan.summary()}")
        if "hom" in self.plans and "het" in self.plans:
            lines.append(f"  rho = Comm_hom/Comm_het = {self.rho:.3f}")
        return "\n".join(lines)


def compare_strategies(
    platform: StarPlatform,
    N: float,
    imbalance_target: float = 0.01,
    strategies: Sequence[str] | None = None,
    session: PlannerSession | None = None,
) -> StrategyComparison:
    """Run all registered strategies on the same instance (one Figure-4 cell).

    ``strategies`` restricts the sweep; by default every strategy in the
    registry participates.  ``session`` selects the execution backend
    and plan cache (default: the process-wide cached serial session).
    """
    sweep = (session or default_session()).sweep(
        platform,
        N,
        strategies=strategies,
        imbalance_target=imbalance_target,
    )
    plans = {name: res.plan for name, res in sweep.results.items()}
    return StrategyComparison(N=float(N), plans=plans)
