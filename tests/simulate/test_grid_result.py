"""Tests for GridScheduleResult metrics and remaining edge cases."""

import numpy as np
import pytest

from repro.platform.star import StarPlatform
from repro.simulate.affinity import run_grid_demand_driven


class TestGridScheduleResult:
    def test_load_imbalance_balanced(self):
        plat = StarPlatform.homogeneous(2)
        res = run_grid_demand_driven(plat, grid=4)
        assert res.load_imbalance == pytest.approx(0.0)

    def test_load_imbalance_starved(self):
        plat = StarPlatform.homogeneous(5)
        res = run_grid_demand_driven(plat, grid=2)  # 4 cells, 5 workers
        assert res.load_imbalance == float("inf")

    def test_single_worker_imbalance_zero(self):
        plat = StarPlatform.homogeneous(1)
        res = run_grid_demand_driven(plat, grid=3)
        assert res.load_imbalance == 0.0

    def test_total_shipped_consistent_with_per_worker(self):
        plat = StarPlatform.from_speeds([1.0, 3.0])
        res = run_grid_demand_driven(plat, grid=6, policy="affinity")
        assert res.total_shipped == pytest.approx(float(res.shipped.sum()))

    def test_block_side_scales_volume(self):
        plat = StarPlatform.from_speeds([1.0, 2.0])
        small = run_grid_demand_driven(plat, grid=5, block_side=1.0)
        big = run_grid_demand_driven(plat, grid=5, block_side=3.0)
        assert big.total_shipped == pytest.approx(3.0 * small.total_shipped)

    def test_grid_validated(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            run_grid_demand_driven(plat, grid=0)
