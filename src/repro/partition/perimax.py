"""Column-based PERI-MAX partitioning (the other 2002 objective).

PERI-MAX minimises the *largest* half-perimeter — the communication
volume of the most-loaded link rather than the total.  The paper's
strategy uses PERI-SUM (total volume); PERI-MAX ships as an extension
so the two objectives can be compared on the same platforms.

Within a column of width :math:`w` holding areas
:math:`a_{i_1} \\dots a_{i_k}`, the largest half-perimeter is
:math:`w + \\max_r a_{i_r}/w`.  We run the analogous :math:`O(p^2)` DP
over contiguous groups of the sorted areas, minimising the max over
columns.  (Sorted-contiguous grouping is a standard heuristic here; for
PERI-MAX it is not provably optimal among all column-based layouts, so
this is labelled a heuristic and tests only check feasibility and
domination over the trivial strip layout.)
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.partition.rectangle import Partition, Rectangle, stack_column
from repro.registry import register
from repro.util.validation import check_probability_vector


@register(
    "partitioner",
    "peri-max",
    summary="Column-based heuristic minimising the max half-perimeter",
)
def peri_max_partition(areas: Sequence[float]) -> Partition:
    """Column-based partition minimising the max half-perimeter (heuristic)."""
    a = check_probability_vector(areas, "areas")
    p = a.size
    order = np.argsort(a, kind="stable")
    sorted_a = a[order]
    prefix = np.concatenate([[0.0], np.cumsum(sorted_a)])

    INF = float("inf")
    f = np.full(p + 1, INF)  # f[k] = min over groupings of max column cost
    f[0] = 0.0
    choice = np.zeros(p + 1, dtype=int)
    for k in range(1, p + 1):
        best_cost, best_j = INF, 0
        for j in range(k):
            width = prefix[k] - prefix[j]
            if width <= 0:
                continue
            # Largest area in the (sorted) group j..k-1 is sorted_a[k-1].
            col_cost = width + float(sorted_a[k - 1]) / width
            cost = max(f[j], col_cost)
            if cost < best_cost - 1e-15:
                best_cost, best_j = cost, j
        f[k] = best_cost
        choice[k] = best_j

    groups: List[List[int]] = []
    k = p
    while k > 0:
        j = int(choice[k])
        groups.append([int(order[t]) for t in range(j, k)])
        k = j
    groups.reverse()

    rects: List[Rectangle] = []
    x = 0.0
    for g_idx, group in enumerate(groups):
        width = float(sum(a[i] for i in group))
        if g_idx == len(groups) - 1:
            width = 1.0 - x
        rects.extend(stack_column(x, width, [a[i] for i in group], group))
        x += width
    part = Partition(tuple(rects), side=1.0)
    part.validate(expected_areas=a)
    return part
