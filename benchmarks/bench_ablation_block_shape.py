"""Ablation: square vs rectangular chunks in Homogeneous Blocks (§4.1.1).

The paper chooses square ``D × D`` chunks "in order to minimize the
communication costs: for a given computation size (D²), the square is
the shape that minimizes the data size (2D)".  This bench makes the
claim executable: among ``a × b`` chunks of fixed area, data per chunk
``a + b`` is minimised at ``a = b``, and the end-to-end Comm_hom volume
degrades with the chunk aspect ratio exactly as predicted.

Also covers the 2.5D comparison (§4.2's exception): replicated-memory
schemes shave a √c factor that no 2D layout can reach.
"""

import numpy as np
import pytest

from repro.matmul.two_five_d import two_five_d_volume, volume_vs_replication
from repro.util.tables import format_table


def test_square_chunks_minimise_input(benchmark):
    def run():
        area = 64.0
        rows = []
        for aspect in (1.0, 2.0, 4.0, 16.0):
            a = np.sqrt(area * aspect)
            b = area / a
            rows.append([aspect, a, b, a + b])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["aspect ratio", "a", "b", "input per chunk (a+b)"],
            rows,
            title="Ablation: chunk shape at fixed area 64 (§4.1.1's choice):",
        )
    )
    inputs = [r[3] for r in rows]
    assert inputs == sorted(inputs)  # monotone in aspect ratio
    assert inputs[0] == pytest.approx(16.0)  # 2*sqrt(area): the square


def test_two_five_d_replication_curve(benchmark):
    """The §4.2 'notable exception': volume falls as 1/√c with memory
    rising as c — outside the 2D no-free-lunch trade-off."""
    N, p = 1000, 64
    vols = benchmark.pedantic(
        volume_vs_replication, args=(N, p), iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["c", "total volume", "per-proc volume", "per-proc memory"],
            [
                [v.c, v.total_volume, v.per_processor, v.memory_per_processor]
                for v in vols
            ],
            title=f"2.5D replication sweep (N={N}, p={p}):",
        )
    )
    assert vols[0].total_volume == pytest.approx(
        two_five_d_volume(N, p, 1).total_volume
    )
    assert vols[-1].total_volume == pytest.approx(
        vols[0].total_volume / np.sqrt(vols[-1].c)
    )
