"""Heterogeneous master–worker star platform substrate.

The paper's model (§1.2): a master :math:`P_0` and workers
:math:`P_1 \\dots P_p`.  Worker :math:`P_i` has incoming bandwidth
:math:`1/c_i` (so sending ``X`` data units takes :math:`c_i X`) and
processing speed :math:`s_i = 1/w_i` (so ``X`` units of *work* take
:math:`w_i X`).  Communications may all proceed in parallel
(:class:`ParallelLinks`, the paper's default), sequentially from the
master (:class:`OnePort`), or share the master's uplink
(:class:`BoundedMultiport`).
"""

from repro.platform.processor import Processor
from repro.platform.star import StarPlatform
from repro.platform.tree import TreeNode, TreePlatform
from repro.platform.graph import (
    make_cluster_graph,
    random_cluster,
    best_spanning_tree,
    widest_paths_tree,
    to_tree_platform,
    schedule_on_graph,
)
from repro.platform.comm_models import (
    CommunicationModel,
    ParallelLinks,
    OnePort,
    BoundedMultiport,
)
from repro.platform.generators import (
    SpeedModel,
    homogeneous_speeds,
    uniform_speeds,
    lognormal_speeds,
    half_fast_speeds,
    make_speeds,
    SPEED_MODELS,
)

__all__ = [
    "Processor",
    "StarPlatform",
    "TreeNode",
    "TreePlatform",
    "make_cluster_graph",
    "random_cluster",
    "best_spanning_tree",
    "widest_paths_tree",
    "to_tree_platform",
    "schedule_on_graph",
    "CommunicationModel",
    "ParallelLinks",
    "OnePort",
    "BoundedMultiport",
    "SpeedModel",
    "homogeneous_speeds",
    "uniform_speeds",
    "lognormal_speeds",
    "half_fast_speeds",
    "make_speeds",
    "SPEED_MODELS",
]
