"""Entry-point discovery: third-party plugins via ``repro.plugins``."""

import importlib.metadata
import types

import pytest

from repro.registry import ENTRY_POINT_GROUP, Registry


class _StubEntryPoint:
    """Minimal stand-in for ``importlib.metadata.EntryPoint``."""

    def __init__(self, name, payload):
        self.name = name
        self.group = ENTRY_POINT_GROUP
        self._payload = payload
        self.load_count = 0

    def load(self):
        self.load_count += 1
        return self._payload


@pytest.fixture
def stub_entry_points(monkeypatch):
    """Patch importlib.metadata.entry_points to serve a controllable list."""
    served = []

    def fake_entry_points(*, group=None):
        assert group == ENTRY_POINT_GROUP
        return list(served)

    monkeypatch.setattr(
        importlib.metadata, "entry_points", fake_entry_points
    )
    return served


class TestEntryPointDiscovery:
    def test_callable_plugin_registers_components(self, stub_entry_points):
        def install(registry):
            registry.add("strategy", "ep-strategy", lambda: "from plugin")
            registry.add("backend", "ep-backend", lambda jobs=None: "backend")

        stub_entry_points.append(_StubEntryPoint("my-plugin", install))
        reg = Registry()
        reg.enable_entry_point_discovery()
        assert "ep-strategy" in reg.available("strategy")
        assert "ep-backend" in reg.available("backend")
        assert reg.create("strategy", "ep-strategy") == "from plugin"

    def test_discovery_is_lazy_and_runs_once(self, stub_entry_points):
        ep = _StubEntryPoint("lazy-plugin", lambda registry: None)
        stub_entry_points.append(ep)
        reg = Registry()
        reg.enable_entry_point_discovery()
        # enabling alone must not load anything
        assert ep.load_count == 0
        reg.available("strategy")
        assert ep.load_count == 1
        # further queries (any kind) do not reload
        reg.available("partitioner")
        reg.available("strategy")
        assert ep.load_count == 1

    def test_module_entry_point_loads_by_import(self, stub_entry_points):
        # a module-valued entry point registers via its import-time
        # decorators; loading it is the whole job
        module = types.ModuleType("fake_repro_plugin")
        stub_entry_points.append(_StubEntryPoint("mod-plugin", module))
        reg = Registry()
        reg.enable_entry_point_discovery()
        # no error, nothing registered (the stub module registers nothing)
        assert reg.available("strategy") == ()

    def test_broken_plugin_does_not_poison_loaded_siblings(
        self, stub_entry_points
    ):
        """A failing entry point re-raises its own error on retry; the
        plugins that already registered are not re-invoked (which would
        surface as a spurious DuplicateComponentError)."""

        def install_good(registry):
            registry.add("strategy", "good-ep", lambda: "ok")

        class _Broken:
            name = "z-broken"  # sorts after the good one
            group = ENTRY_POINT_GROUP

            def load(self):
                raise ImportError("plugin is broken")

        stub_entry_points.append(_StubEntryPoint("a-good", install_good))
        stub_entry_points.append(_Broken())
        reg = Registry()
        reg.enable_entry_point_discovery()
        for _ in range(2):  # the second query must raise the same error
            with pytest.raises(ImportError, match="plugin is broken"):
                reg.available("strategy")
        # the good plugin registered exactly once despite the retries
        assert reg._components["strategy"].keys() == {"good-ep"}

    def test_without_discovery_nothing_is_scanned(self, stub_entry_points):
        ep = _StubEntryPoint("unused", lambda registry: None)
        stub_entry_points.append(ep)
        reg = Registry()  # discovery NOT enabled
        reg.available("strategy")
        assert ep.load_count == 0

    def test_plugin_registered_strategy_is_planable(
        self, stub_entry_points, heterogeneous_platform
    ):
        """An entry-point strategy flows through a session end to end."""
        from repro.blocks.metrics import StrategyResult
        from repro.core.session import PlannerSession
        from repro.registry import default_registry

        class EPStrategy:
            def plan(self, platform, N):
                import numpy as np

                return StrategyResult(
                    strategy="ep-planable",
                    N=float(N),
                    speeds=platform.speeds,
                    comm_volume=2.0 * N * platform.size,
                    finish_times=np.ones(platform.size),
                    imbalance=0.0,
                )

        def install(registry):
            registry.add("strategy", "ep-planable", EPStrategy)

        stub_entry_points.append(_StubEntryPoint("planable", install))
        # simulate a fresh process: force the default registry to rescan
        default_registry._entry_points_loaded = False
        try:
            from repro.core.pipeline import PlanRequest

            with PlannerSession() as session:
                result = session.plan(
                    PlanRequest(
                        platform=heterogeneous_platform,
                        N=100.0,
                        strategy="ep-planable",
                    )
                )
            assert result.comm_volume == 2.0 * 100.0 * heterogeneous_platform.size
        finally:
            default_registry.unregister("strategy", "ep-planable")
            default_registry._entry_points_loaded = True
