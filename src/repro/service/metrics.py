"""Operability primitives for the service layer: metrics + admission.

Two small, stdlib-only building blocks both the single-server
:class:`~repro.service.server.PlanServer` and the cluster-mode
:class:`~repro.cluster.coordinator.ClusterCoordinator` share:

* :class:`ServerMetrics` — per-endpoint request counters and latency
  histograms behind one lock, served as plain JSON from ``/metrics``
  so ``curl``/dashboards need no client library.  Payloads carry the
  *raw* counters (count, errors, total time, bucket counts, exact max)
  plus derived convenience fields (mean/p50/p99); :func:`merge_metrics`
  re-derives the percentiles after summing raw counters, which is how
  a coordinator aggregates its workers' histograms losslessly.
* :class:`AdmissionGate` — a queue-depth limiter for graceful
  degradation under bursts: at most ``limit`` planning requests are in
  flight at once, the rest are refused so the server can answer ``429``
  with a ``Retry-After`` hint instead of queueing unboundedly and
  timing everyone out.  ``limit=None`` admits everything (the
  default), ``limit=0`` refuses everything (drain mode).
* :class:`AccessLog` — structured one-line-per-request access logging
  (``repro serve --log`` and the coordinator equivalent).  Both
  servers route every handled response through one
  ``observe_request`` hook that feeds :class:`ServerMetrics` *and*,
  when enabled, appends an access line — so the log and the
  histograms can never disagree about what was served.  Lines are
  logfmt-style ``key=value`` pairs (:func:`format_access_line`), and
  :func:`parse_access_line` is the inverse tools and tests use.

Latency buckets are fixed and log-spaced (sub-millisecond to tens of
seconds) so histograms from different processes are always mergeable
bucket-by-bucket; the exact maximum is tracked alongside so percentile
estimates clamp to a real observation rather than a bucket edge.
"""

from __future__ import annotations

import datetime
import sys
import threading
import time
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional

#: histogram bucket upper bounds in seconds; one overflow bucket follows
LATENCY_BUCKETS_S: tuple = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _EndpointCounters:
    """Raw counters for one endpoint (guarded by the owning metrics lock)."""

    __slots__ = ("count", "errors", "total_s", "max_s", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.buckets = [0] * (len(LATENCY_BUCKETS_S) + 1)

    def observe(self, status: int, elapsed_s: float) -> None:
        self.count += 1
        if status >= 400:
            self.errors += 1
        self.total_s += elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s
        for i, bound in enumerate(LATENCY_BUCKETS_S):
            if elapsed_s <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1


def _quantile_s(buckets: List[int], count: int, max_s: float, q: float) -> float:
    """Estimate the ``q`` quantile from bucket counts (upper-bound rule).

    Returns the upper bound of the first bucket whose cumulative count
    reaches ``q * count``; observations in the overflow bucket clamp to
    the tracked exact maximum, so the estimate is never an invented
    bound past anything actually seen.
    """
    if count <= 0:
        return 0.0
    target = q * count
    cumulative = 0
    for i, n in enumerate(buckets):
        cumulative += n
        if cumulative >= target:
            if i < len(LATENCY_BUCKETS_S):
                return min(LATENCY_BUCKETS_S[i], max_s)
            return max_s
    return max_s


def _derived(raw: Mapping[str, Any]) -> Dict[str, Any]:
    """One endpoint's JSON view: raw counters + derived latency fields."""
    count = int(raw["count"])
    total_s = float(raw["total_s"])
    max_s = float(raw["max_s"])
    buckets = [int(b) for b in raw["buckets"]]
    return {
        "count": count,
        "errors": int(raw["errors"]),
        "total_s": round(total_s, 6),
        "max_s": round(max_s, 6),
        "buckets": buckets,
        "mean_ms": round(1000.0 * total_s / count, 3) if count else 0.0,
        "p50_ms": round(1000.0 * _quantile_s(buckets, count, max_s, 0.50), 3),
        "p99_ms": round(1000.0 * _quantile_s(buckets, count, max_s, 0.99), 3),
    }


class ServerMetrics:
    """Thread-safe per-endpoint request counters and latency histograms.

    ``observe(endpoint, status, elapsed_s)`` is called once per handled
    request (every response path, including errors and 429 refusals);
    ``payload()`` renders the JSON the ``/metrics`` endpoint serves.
    Endpoint names should come from a fixed route table (the handlers
    normalise unknown paths to ``"other"``) so cardinality stays
    bounded whatever clients probe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointCounters] = {}
        # monotonic, not wall-clock: an NTP step must never make
        # uptime_s jump or go negative (it feeds `repro cluster
        # status` and the loadtest cross-checks)
        self._started = time.monotonic()

    def observe(self, endpoint: str, status: int, elapsed_s: float) -> None:
        with self._lock:
            counters = self._endpoints.get(endpoint)
            if counters is None:
                counters = self._endpoints[endpoint] = _EndpointCounters()
            counters.observe(int(status), float(elapsed_s))

    def payload(self) -> Dict[str, Any]:
        """The ``/metrics`` JSON: per-endpoint raw + derived counters."""
        with self._lock:
            endpoints = {
                name: _derived(
                    {
                        "count": c.count,
                        "errors": c.errors,
                        "total_s": c.total_s,
                        "max_s": c.max_s,
                        "buckets": c.buckets,
                    }
                )
                for name, c in sorted(self._endpoints.items())
            }
            started = self._started
        return {
            "uptime_s": round(time.monotonic() - started, 3),
            "latency_buckets_s": list(LATENCY_BUCKETS_S),
            "endpoints": endpoints,
        }


def merge_metrics(payloads: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Sum several ``/metrics`` payloads into one aggregate view.

    Counters and histogram buckets add; the exact max is the max of
    maxima; mean/p50/p99 are re-derived from the merged raw counters —
    so a coordinator's cluster-wide histogram is exactly what one
    server observing all the traffic would have reported (percentile
    resolution bounded by the shared bucket grid).  Payloads from
    servers with different bucket grids are rejected loudly rather
    than summed wrongly.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    uptime = 0.0
    for payload in payloads:
        grid = list(payload.get("latency_buckets_s", LATENCY_BUCKETS_S))
        if grid != list(LATENCY_BUCKETS_S):
            raise ValueError(
                "cannot merge /metrics payloads with a different "
                f"latency bucket grid: {grid!r}"
            )
        uptime = max(uptime, float(payload.get("uptime_s", 0.0)))
        for name, ep in payload.get("endpoints", {}).items():
            agg = merged.get(name)
            if agg is None:
                merged[name] = {
                    "count": int(ep["count"]),
                    "errors": int(ep["errors"]),
                    "total_s": float(ep["total_s"]),
                    "max_s": float(ep["max_s"]),
                    "buckets": [int(b) for b in ep["buckets"]],
                }
            else:
                agg["count"] += int(ep["count"])
                agg["errors"] += int(ep["errors"])
                agg["total_s"] += float(ep["total_s"])
                agg["max_s"] = max(agg["max_s"], float(ep["max_s"]))
                agg["buckets"] = [
                    a + int(b) for a, b in zip(agg["buckets"], ep["buckets"])
                ]
    return {
        "uptime_s": round(uptime, 3),
        "latency_buckets_s": list(LATENCY_BUCKETS_S),
        "endpoints": {
            name: _derived(raw) for name, raw in sorted(merged.items())
        },
    }


def prometheus_exposition(payload: Mapping[str, Any]) -> str:
    """Render a ``/metrics`` JSON payload as Prometheus text format.

    Served from ``/metrics?format=prometheus`` on both servers so any
    standard scraper works without a client library.  The JSON payload
    stays the source of truth (and the loadtest cross-check's input);
    this is a pure rendering of the same counters:

    * ``repro_requests_total`` / ``repro_request_errors_total`` —
      per-endpoint counters;
    * ``repro_request_duration_seconds`` — a conventional histogram:
      per-bucket counts become *cumulative* ``le``-labelled series
      (our buckets are disjoint internally; Prometheus buckets are
      "everything ≤ bound"), the overflow bucket becomes ``le="+Inf"``,
      plus ``_sum`` and ``_count``;
    * ``repro_uptime_seconds`` — a gauge.

    Works on any payload shaped like :meth:`ServerMetrics.payload`,
    including :func:`merge_metrics` output — the coordinator exposes
    its cluster-wide aggregate this way.
    """
    bounds = [float(b) for b in payload.get(
        "latency_buckets_s", LATENCY_BUCKETS_S
    )]
    lines = [
        "# HELP repro_uptime_seconds Seconds since the server started.",
        "# TYPE repro_uptime_seconds gauge",
        f"repro_uptime_seconds {float(payload.get('uptime_s', 0.0))}",
        "# HELP repro_requests_total Requests handled, by endpoint.",
        "# TYPE repro_requests_total counter",
    ]
    endpoints = payload.get("endpoints", {})
    for name in sorted(endpoints):
        lines.append(
            f'repro_requests_total{{endpoint="{name}"}} '
            f"{int(endpoints[name]['count'])}"
        )
    lines += [
        "# HELP repro_request_errors_total Responses with status >= 400.",
        "# TYPE repro_request_errors_total counter",
    ]
    for name in sorted(endpoints):
        lines.append(
            f'repro_request_errors_total{{endpoint="{name}"}} '
            f"{int(endpoints[name]['errors'])}"
        )
    lines += [
        "# HELP repro_request_duration_seconds Request latency histogram.",
        "# TYPE repro_request_duration_seconds histogram",
    ]
    for name in sorted(endpoints):
        ep = endpoints[name]
        cumulative = 0
        for bound, n in zip(bounds, ep["buckets"]):
            cumulative += int(n)
            lines.append(
                f"repro_request_duration_seconds_bucket"
                f'{{endpoint="{name}",le="{bound}"}} {cumulative}'
            )
        cumulative += int(ep["buckets"][len(bounds)])
        lines.append(
            f"repro_request_duration_seconds_bucket"
            f'{{endpoint="{name}",le="+Inf"}} {cumulative}'
        )
        lines.append(
            f'repro_request_duration_seconds_sum{{endpoint="{name}"}} '
            f"{float(ep['total_s'])}"
        )
        lines.append(
            f'repro_request_duration_seconds_count{{endpoint="{name}"}} '
            f"{int(ep['count'])}"
        )
    return "\n".join(lines) + "\n"


#: field order of an access-log line; parse_access_line requires them all
ACCESS_LOG_FIELDS = (
    "ts", "endpoint", "status", "elapsed_ms", "wire", "bytes", "trace",
)


def format_access_line(
    endpoint: str,
    status: int,
    elapsed_s: float,
    *,
    wire: str = "-",
    nbytes: int = 0,
    trace: str = "-",
    ts: Optional[str] = None,
) -> str:
    """One structured access-log line (logfmt-style ``key=value``).

    ``ts`` is an ISO-8601 UTC wall-clock stamp — logs are for humans
    correlating with the outside world, unlike the monotonic uptime
    the metrics use.  ``trace`` is the request's trace id when it
    carried a sampled ``X-Repro-Trace`` context (``-`` otherwise), so
    log lines join against ``--trace`` span files by id.  None of the
    built-in field values can contain a space, so the line splits back
    losslessly.
    """
    if ts is None:
        ts = datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="milliseconds"
        )
    return (
        f"ts={ts} endpoint={endpoint} status={int(status)} "
        f"elapsed_ms={1000.0 * elapsed_s:.3f} wire={wire or '-'} "
        f"bytes={int(nbytes)} trace={trace or '-'}"
    )


def parse_access_line(line: str) -> Dict[str, Any]:
    """Parse one :func:`format_access_line` line back into a dict.

    Raises ``ValueError`` on anything that is not a complete access
    line, so log-processing tools (and the CI smoke) fail loudly on
    interleaved or truncated output instead of mis-counting.
    """
    fields: Dict[str, str] = {}
    for token in line.split():
        key, sep, value = token.partition("=")
        if not sep:
            raise ValueError(f"not an access-log token {token!r} in {line!r}")
        fields[key] = value
    missing = [name for name in ACCESS_LOG_FIELDS if name not in fields]
    if missing:
        raise ValueError(
            f"access-log line missing field(s) {missing}: {line!r}"
        )
    return {
        "ts": fields["ts"],
        "endpoint": fields["endpoint"],
        "status": int(fields["status"]),
        "elapsed_ms": float(fields["elapsed_ms"]),
        "wire": fields["wire"],
        "bytes": int(fields["bytes"]),
        "trace": fields["trace"],
    }


class AccessLog:
    """Append structured access lines to a stream or file, thread-safely.

    ``AccessLog()`` writes to stderr (the ``--log`` default — it
    composes with shell redirection); ``AccessLog.open(path)`` appends
    to a file it owns (and :meth:`close` closes).  ``record`` is wired
    into both servers' ``observe_request`` hook, one call per handled
    response, errors and 429 refusals included.  Lines are flushed per
    record so a tailing operator (or the loadtest smoke) never waits
    on a buffer.
    """

    def __init__(
        self, stream: Optional[IO[str]] = None, *, _owns_stream: bool = False
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._owns_stream = _owns_stream
        self._lock = threading.Lock()
        #: lines ever written (handy for tests and status displays)
        self.lines_written = 0

    @classmethod
    def open(cls, path: str) -> "AccessLog":
        """An access log appending to ``path`` (created if missing)."""
        return cls(open(path, "a", encoding="utf-8"), _owns_stream=True)

    def record(
        self,
        endpoint: str,
        status: int,
        elapsed_s: float,
        *,
        wire: str = "-",
        nbytes: int = 0,
        trace: str = "-",
    ) -> None:
        line = format_access_line(
            endpoint, status, elapsed_s, wire=wire, nbytes=nbytes, trace=trace
        )
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except ValueError:
                # the stream was closed under us (shutdown race): a
                # lost log line must never fail the request it logs
                pass
            else:
                self.lines_written += 1

    def close(self) -> None:
        """Close an owned file stream (stderr is never closed)."""
        if self._owns_stream:
            with self._lock:
                self._stream.close()


class AdmissionGate:
    """Bounded in-flight admission: try_acquire / release around work.

    The planning endpoints wrap their handling in::

        if not gate.try_acquire():
            reply 429, Retry-After: gate.retry_after
        try: ... finally: gate.release()

    so at most ``limit`` requests plan concurrently and the excess is
    refused *immediately* — the client-visible contract bursts degrade
    to (the :class:`~repro.service.client.ServiceClient` retry path
    honours the hint).  ``limit=None`` admits everything.
    """

    def __init__(self, limit: int | None, retry_after: float = 0.5) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"max_inflight must be >= 0, got {limit}")
        if retry_after <= 0:
            raise ValueError(f"retry_after must be > 0, got {retry_after}")
        self.limit = limit
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def try_acquire(self) -> bool:
        """Admit one request, or refuse when the queue depth is reached."""
        with self._lock:
            if self.limit is not None and self._inflight >= self.limit:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1
