"""Dispatch policies: which worker gets which planning item.

Registered under the new ``dispatch`` registry kind, so policies are
chosen by spec string exactly like backends and caches
(``repro cluster up --dispatch consistent-hash``) and third-party
policies plug in with one ``@register`` decorator.

A policy sees only two things and is trivially testable with neither a
coordinator nor a socket in sight:

* a *digest* — the stable sha256 hex of the item's plan content key
  (:func:`item_digest`; the PR-4 digest durable stores key rows by),
* the *candidate workers* — lightweight :class:`Candidate` views
  ``(url, load)`` the coordinator builds per assignment pass, with
  tentative loads incremented as items are placed so a batch spreads
  instead of dog-piling the momentarily-least-loaded replica.

Built-ins:

* ``least-loaded`` — raw throughput: always the candidate with the
  fewest in-flight items (URL tie-break keeps assignment
  deterministic).
* ``consistent-hash`` — cache affinity: a hash ring keyed on the
  content digest, so the same request always lands on the same worker
  while that worker lives, keeping its warm sqlite/tiered store
  sticky; when a worker dies only ~1/N of the key space moves.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro.registry import RegistryError, register


@dataclass
class Candidate:
    """One assignable worker as a dispatch policy sees it."""

    url: str
    #: in-flight items, including tentative assignments this pass
    load: int = 0


class DispatchPolicy:
    """Base contract: pick one candidate for one item digest."""

    name = "?"

    def choose(
        self, digest: str, workers: Sequence[Candidate]
    ) -> Candidate:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


@register(
    "dispatch",
    "least-loaded",
    summary="Send each item to the worker with the fewest in-flight items",
)
class LeastLoadedDispatch(DispatchPolicy):
    """Throughput-first: always the least busy candidate.

    Ties break on URL so a batch assigned against an idle pool spreads
    deterministically (item 1 → first worker, which now carries load 1,
    item 2 → second worker, …) instead of depending on dict order.
    """

    name = "least-loaded"

    def choose(
        self, digest: str, workers: Sequence[Candidate]
    ) -> Candidate:
        if not workers:
            raise ValueError("no candidate workers to dispatch to")
        return min(workers, key=lambda w: (w.load, w.url))


def _ring_point(token: str) -> int:
    """A stable 64-bit position on the hash ring for ``token``."""
    return int(hashlib.sha256(token.encode("utf-8")).hexdigest()[:16], 16)


@register(
    "dispatch",
    "consistent-hash",
    summary="Pin each content digest to a worker via a hash ring",
)
class ConsistentHashDispatch(DispatchPolicy):
    """Cache-affinity routing on a consistent-hash ring.

    Each worker URL contributes ``replicas`` virtual points; an item
    goes to the first point at or after its digest (wrapping).  The
    digest is already a sha256 hex string, so its leading 64 bits are
    uniform ring positions for free.  Load is ignored by design — the
    point is that re-asking for the same plan hits the same worker's
    warm store, and virtual points keep per-worker share near 1/N.

    ``replicas`` comes from the spec tail (``consistent-hash:256``).
    """

    name = "consistent-hash"

    def __init__(self, replicas: int = 64) -> None:
        replicas = int(replicas)
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        # ring cache per candidate-set: assignment passes call choose()
        # once per item over the same worker set, so rebuild only when
        # the alive set actually changes
        self._ring_for: Tuple[str, ...] = ()
        self._points: List[int] = []
        self._owners: List[str] = []

    def _ring(
        self, workers: Sequence[Candidate]
    ) -> Tuple[List[int], List[str]]:
        urls = tuple(sorted(w.url for w in workers))
        if urls != self._ring_for:
            pairs = sorted(
                (_ring_point(f"{url}#{k}"), url)
                for url in urls
                for k in range(self.replicas)
            )
            self._ring_for = urls
            self._points = [p for p, _ in pairs]
            self._owners = [u for _, u in pairs]
        return self._points, self._owners

    def choose(
        self, digest: str, workers: Sequence[Candidate]
    ) -> Candidate:
        if not workers:
            raise ValueError("no candidate workers to dispatch to")
        points, owners = self._ring(workers)
        position = int(digest[:16], 16)
        index = bisect.bisect_left(points, position) % len(points)
        owner = owners[index]
        for worker in workers:
            if worker.url == owner:
                return worker
        raise AssertionError(f"ring owner {owner!r} not in candidates")


def dispatch_from_spec(spec: "str | DispatchPolicy") -> DispatchPolicy:
    """Resolve a ``--dispatch`` spec through the registry.

    A bare name (``least-loaded`` / ``consistent-hash``) instantiates
    that policy; ``name:ARG`` passes the remainder to the factory
    (``consistent-hash:256`` tunes the virtual-point count).  An
    already-constructed policy passes through unchanged.  Malformed
    specs raise :class:`~repro.registry.RegistryError` — a user error
    the CLI reports without a traceback.
    """
    if not isinstance(spec, str):
        return spec
    from repro import registry

    name, _, arg = spec.partition(":")
    factory = registry.get("dispatch", name)  # unknown names fail clean
    try:
        return factory(arg) if arg else factory()
    except (TypeError, ValueError) as exc:
        raise RegistryError(f"bad dispatch spec {spec!r}: {exc}") from None


def item_digest(item: Any) -> str:
    """The routing digest of one ``/plan_batch`` item (or cache key).

    For a :class:`~repro.core.pipeline.PlanRequest` this is the sha256
    of its *plan content key* — the same digest durable stores key
    rows by — so ``/plan`` routing and explicit ``/cache/get|put``
    routing agree: the worker a plan is computed on is the worker its
    cache entry is later looked up on.  A
    :class:`~repro.core.vectorize.VectorGroup` routes by its first
    request (one group, one worker — the coordinator shards groups
    *before* dispatch).  Anything else (an explicit cache key, already
    content-shaped) digests via
    :func:`~repro.core.cache.encode_key` directly.
    """
    from repro.core.cache import encode_key, plan_cache_key
    from repro.core.pipeline import PlanRequest
    from repro.core.vectorize import VectorGroup

    if isinstance(item, VectorGroup):
        item = item.requests[0]
    if isinstance(item, PlanRequest):
        from repro import registry
        from repro.registry import RegistryError as _RegistryError

        try:
            factory = registry.get("strategy", item.strategy)
        except _RegistryError:
            # an unregistered strategy still needs *stable* routing;
            # the server will reject it with its own clear 400
            return hashlib.sha256(repr(item).encode("utf-8")).hexdigest()
        return encode_key(plan_cache_key(item, factory))
    return encode_key(item)


def available_dispatch() -> Sequence[str]:
    """Names of every registered dispatch policy."""
    from repro import registry

    return registry.available("dispatch")
