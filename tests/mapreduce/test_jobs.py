"""Tests for repro.mapreduce.jobs — the executable paper examples."""

from collections import Counter

import numpy as np
import pytest

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.jobs import (
    assemble_block_output,
    block_matmul_job,
    naive_matmul_job,
    outer_product_job,
    word_count_job,
)
from repro.matmul.mapreduce_layouts import hama_block_volume
from repro.partition.column_based import peri_sum_partition


class TestWordCount:
    LINES = ["the quick brown fox", "the lazy dog", "the fox"]

    def test_counts(self):
        job, make_inputs = word_count_job()
        out = MapReduceEngine().run(job, make_inputs(self.LINES))
        expected = Counter(w for line in self.LINES for w in line.split())
        assert out == dict(expected)

    def test_linear_shuffle_volume(self):
        """Linear workload: shuffle ≈ input words (with combiner, less)."""
        job, make_inputs = word_count_job(combine=False)
        _, m = MapReduceEngine().run_with_metrics(job, make_inputs(self.LINES))
        n_words = sum(len(line.split()) for line in self.LINES)
        assert m.shuffle_records == n_words

    def test_combiner_cuts_duplicates(self):
        with_c, make_inputs = word_count_job(combine=True)
        _, m = MapReduceEngine().run_with_metrics(
            with_c, make_inputs(["a a a a b"])
        )
        assert m.shuffle_records == 2  # 'a' combined, 'b'


class TestNaiveMatmul:
    def test_correct_product(self):
        rng = np.random.default_rng(0)
        A, B = rng.normal(size=(6, 6)), rng.normal(size=(6, 6))
        job, inputs = naive_matmul_job(A, B)
        out = MapReduceEngine().run(job, inputs)
        C = np.empty((6, 6))
        for (i, j), v in out.items():
            C[i, j] = v
        assert np.allclose(C, A @ B)

    def test_cubic_shuffle(self):
        """The §1.1 pathology: N³ records cross the shuffle."""
        n = 5
        A = np.eye(n)
        job, inputs = naive_matmul_job(A, A)
        _, m = MapReduceEngine().run_with_metrics(job, inputs)
        assert m.map_input_records == n**3
        assert m.shuffle_records == n**3


class TestBlockMatmul:
    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_correct_product(self, q):
        rng = np.random.default_rng(q)
        n = 6
        A, B = rng.normal(size=(n, n)), rng.normal(size=(n, n))
        job, inputs = block_matmul_job(A, B, q)
        out = MapReduceEngine().run(job, inputs)
        C = assemble_block_output(out, n, q)
        assert np.allclose(C, A @ B)

    def test_shuffle_volume_matches_closed_form(self):
        """Metered volume == 2 q N² (the hama_block_volume formula)."""
        n, q = 12, 3
        rng = np.random.default_rng(1)
        A, B = rng.normal(size=(n, n)), rng.normal(size=(n, n))
        job, inputs = block_matmul_job(A, B, q)
        _, m = MapReduceEngine().run_with_metrics(job, inputs)
        assert m.shuffle_volume == pytest.approx(hama_block_volume(n, q))

    def test_divisibility_checked(self):
        A = np.zeros((5, 5))
        with pytest.raises(ValueError, match="divide"):
            block_matmul_job(A, A, 2)


class TestOuterProduct:
    def test_correct_and_volume_is_half_perimeter(self):
        n = 20
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=n), rng.normal(size=n)
        part = peri_sum_partition([0.3, 0.3, 0.4])
        job, inputs = outer_product_job(a, b, part)
        out, m = MapReduceEngine().run_with_metrics(job, inputs)

        # reassemble and compare with np.outer
        full = np.full((n, n), np.nan)
        for owner, (rows, cols, block) in out.items():
            full[np.ix_(rows, cols)] = block
        assert np.allclose(full, np.outer(a, b))

        # the metered shuffle equals the scaled half-perimeter sum
        expected = part.scaled(n).sum_half_perimeters
        assert m.shuffle_volume == pytest.approx(expected, rel=0.15)

    def test_vector_length_mismatch(self):
        with pytest.raises(ValueError):
            outer_product_job(np.zeros(3), np.zeros(4), peri_sum_partition([1.0]))
