"""Tests for repro.core.almost_linear — the §3 cost accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.almost_linear import (
    heterogeneous_bucket_fractions,
    recommended_oversampling,
    sample_sort_cost_breakdown,
    sorting_partial_work,
    sorting_residual_fraction,
    sorting_work,
    theorem_b4_epsilon,
    theorem_b4_max_bucket_bound,
)


class TestSortingWork:
    def test_value(self):
        assert sorting_work(8.0) == pytest.approx(24.0)

    def test_degenerate(self):
        assert sorting_work(1.0) == 0.0

    def test_partial_identity(self):
        """p (N/p) log(N/p) = N log N - N log p — §3.1 verbatim."""
        N, p = 2.0**20, 16
        assert sorting_partial_work(N, p) == pytest.approx(
            sorting_work(N) - N * np.log2(p)
        )


class TestResidue:
    def test_formula(self):
        assert sorting_residual_fraction(2**10, 2**2) == pytest.approx(0.2)

    def test_vanishes_in_N(self):
        vals = [sorting_residual_fraction(2**e, 16) for e in (8, 12, 16, 24)]
        assert vals == sorted(vals, reverse=True)
        assert vals[-1] < 0.2

    def test_grows_in_p(self):
        assert sorting_residual_fraction(2**16, 64) > sorting_residual_fraction(
            2**16, 4
        )

    @given(
        e=st.integers(min_value=4, max_value=40),
        q=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_for_powers_of_two(self, e, q):
        assert sorting_residual_fraction(2**e, 2**q) == pytest.approx(q / e)

    def test_contrast_with_section2(self):
        """Sorting's residue falls in N; N^alpha's residue doesn't."""
        from repro.core.nonlinear import residual_fraction

        sort_small = sorting_residual_fraction(2**30, 64)
        assert sort_small < 0.25
        # quadratic load on 64 workers leaves >98% regardless of N
        assert residual_fraction(64, 2.0) > 0.98


class TestOversampling:
    def test_paper_value(self):
        assert recommended_oversampling(2**16) == 256  # (log2 2^16)^2

    def test_tiny_N(self):
        assert recommended_oversampling(2) == 1

    def test_b4_epsilon_decreasing(self):
        eps = [theorem_b4_epsilon(10.0**k) for k in (2, 4, 8)]
        assert eps == sorted(eps, reverse=True)

    def test_b4_bound_above_mean(self):
        assert theorem_b4_max_bucket_bound(10_000, 10) > 1000


class TestBreakdown:
    def test_consistency(self):
        costs = sample_sort_cost_breakdown(2**16, 16)
        assert costs.s == 256
        assert costs.step2_bucketing == pytest.approx(2**16 * 4)
        assert costs.makespan_estimate == pytest.approx(
            costs.step1_sample_sort
            + costs.step2_bucketing
            + costs.step3_expected_local_sort
        )
        assert costs.step3_whp_bound >= costs.step3_expected_local_sort

    def test_speedup_below_p_above_one(self):
        costs = sample_sort_cost_breakdown(2**20, 8)
        assert 1.0 < costs.speedup_estimate < 8.0

    def test_preprocessing_fraction_shrinks_with_N(self):
        small = sample_sort_cost_breakdown(2**12, 8).preprocessing_fraction
        large = sample_sort_cost_breakdown(2**24, 8).preprocessing_fraction
        assert large < small

    def test_single_worker_degenerates(self):
        costs = sample_sort_cost_breakdown(1024, 1)
        assert costs.step2_bucketing == 0.0


class TestHeterogeneousFractions:
    def test_proportional(self):
        f = heterogeneous_bucket_fractions(np.array([1.0, 3.0]))
        assert np.allclose(f, [0.25, 0.75])

    def test_sum_to_one(self):
        f = heterogeneous_bucket_fractions(np.array([2.0, 5.0, 3.0]))
        assert f.sum() == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            heterogeneous_bucket_fractions(np.array([1.0, 0.0]))
