"""Execution backends: how a session fans planning work out.

A *backend* is a registered component (kind ``"backend"``) with one
method, ``map(fn, items)`` — order-preserving, like the builtin
``map`` but free to run items concurrently.  Sessions hand backends
only cache *misses*, already expressed as picklable
:class:`~repro.core.pipeline.PlanRequest` objects planned by the
module-level :func:`~repro.core.pipeline.plan_request`, so the same
sweep can run in-process, across a thread pool, or across worker
processes by switching one name:

* ``serial``   — plan in the calling thread (the default; zero overhead,
  exact timings);
* ``threaded`` — ``ThreadPoolExecutor`` fan-out; NumPy releases the GIL
  in its kernels, so multi-strategy sweeps and large batches overlap;
* ``process``  — ``ProcessPoolExecutor`` fan-out; true parallelism for
  CPU-bound planning.  Worker processes import the library afresh, so
  only importable (built-in or installed-plugin) strategies are
  plannable there — strategies registered dynamically in the parent
  are not.

Backends accepting a pool keep it alive across calls (amortising
spawn cost over a session's lifetime) and release it on ``shutdown()``
— sessions call that from :meth:`PlannerSession.close`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Sequence, TypeVar

from repro.registry import register

T = TypeVar("T")
R = TypeVar("R")


class Backend:
    """Base: order-preserving ``map`` plus pool lifecycle hooks.

    ``map(fn, items)`` is the whole contract: apply ``fn`` to each item
    and return the results in order, running items wherever the backend
    likes.  Sessions feed it scalar :func:`~repro.core.pipeline.plan_request`
    calls and — on the vectorised path — whole
    :class:`~repro.core.vectorize.VectorGroup` items, both picklable,
    so any conforming backend (including plugin-registered ones)
    composes with caching and vectorisation for free.
    """

    #: registered name, set by subclasses for error messages/repr
    name: str = "abstract"

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def map(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> List[R]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        jobs = "" if self.jobs is None else f"(jobs={self.jobs})"
        return f"<{type(self).__name__} {self.name!r}{jobs}>"


@register(
    "backend",
    "serial",
    summary="Plan every request in the calling thread, one at a time",
)
class SerialBackend(Backend):
    """The zero-overhead reference backend (and planning-time oracle)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class _PooledBackend(Backend):
    """Shared machinery for executor-backed backends."""

    def __init__(self, jobs: int | None = None) -> None:
        super().__init__(jobs)
        self._executor: Executor | None = None
        # plan servers drive one backend from many handler threads;
        # guard the lazy spin-up so racing first calls share one pool
        self._pool_lock = threading.Lock()

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            # nothing to overlap; skip pool spin-up for single requests
            return [fn(item) for item in items]
        with self._pool_lock:
            if self._executor is None:
                self._executor = self._make_executor()
            executor = self._executor
        return list(executor.map(fn, items))

    def shutdown(self) -> None:
        with self._pool_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None


@register(
    "backend",
    "threaded",
    summary="Fan requests out across a ThreadPoolExecutor",
)
class ThreadedBackend(_PooledBackend):
    """Thread fan-out: cheap to start, overlaps NumPy's GIL-free kernels."""

    name = "threaded"

    def _make_executor(self) -> Executor:
        workers = self.jobs or min(32, (os.cpu_count() or 1) + 4)
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-plan"
        )


@register(
    "backend",
    "process",
    summary="Fan requests out across a ProcessPoolExecutor",
)
class ProcessBackend(_PooledBackend):
    """Process fan-out: true parallelism for CPU-bound planning.

    Requests and the raw planner are pickled to worker processes, which
    re-import the library; dynamically registered (non-importable)
    strategies are not visible there.
    """

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.jobs)


def create_backend(name: str, jobs: int | None = None) -> Backend:
    """Instantiate a registered backend by name."""
    from repro import registry

    return registry.create("backend", name, jobs=jobs)


def backend_from_spec(
    spec: "str | Backend", jobs: int | None = None
) -> Backend:
    """Resolve a ``--backend`` spec to a backend through the registry.

    A bare name (``serial`` / ``threaded`` / ``process`` / ``asyncio``)
    instantiates that backend; ``name:ARG`` passes the remainder to the
    factory — the service layer's ``remote:HOST:PORT`` is the built-in
    user.  An already-constructed backend passes through unchanged, so
    APIs accept ``backend="remote:host:9000"`` and ``backend=my_backend``
    alike.  Malformed specs raise
    :class:`~repro.registry.RegistryError` — a user error the CLI
    reports without a traceback, like an unknown component name.
    """
    if not isinstance(spec, str):
        return spec
    from repro import registry
    from repro.registry import RegistryError

    name, _, arg = spec.partition(":")
    factory = registry.get("backend", name)  # unknown names fail clean here
    try:
        return factory(arg, jobs=jobs) if arg else factory(jobs=jobs)
    except (TypeError, ValueError) as exc:
        raise RegistryError(f"bad backend spec {spec!r}: {exc}") from None


def available_backends() -> Sequence[str]:
    """Names of every registered execution backend."""
    from repro import registry

    return registry.available("backend")
