"""Execution traces and a text Gantt renderer.

A :class:`Trace` is a list of ``(worker, kind, start, end)`` intervals;
:func:`render_gantt` draws them as rows of characters, one row per
worker — enough to eyeball a schedule in a terminal and to regression-
test schedule *shapes* (tests compare rendered strings for tiny
platforms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

#: glyph per activity kind in the Gantt view
_GLYPHS = {"recv": "=", "compute": "#", "idle": ".", "send": ">"}


@dataclass(frozen=True)
class TraceRecord:
    """One activity interval of one worker."""

    worker: str
    kind: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval ends before it starts: [{self.start}, {self.end}]"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """An append-only collection of :class:`TraceRecord`."""

    records: List[TraceRecord] = field(default_factory=list)

    def add(self, worker: str, kind: str, start: float, end: float) -> None:
        self.records.append(TraceRecord(worker, kind, start, end))

    @property
    def makespan(self) -> float:
        return max((r.end for r in self.records), default=0.0)

    def by_worker(self) -> Dict[str, List[TraceRecord]]:
        out: Dict[str, List[TraceRecord]] = {}
        for r in self.records:
            out.setdefault(r.worker, []).append(r)
        for recs in out.values():
            recs.sort(key=lambda r: (r.start, r.end))
        return out

    def busy_time(self, worker: str, kinds: Iterable[str] = ("compute",)) -> float:
        """Total time ``worker`` spent in the given activity kinds."""
        kinds = set(kinds)
        return sum(
            r.duration
            for r in self.records
            if r.worker == worker and r.kind in kinds
        )


def render_gantt(trace: Trace, width: int = 60) -> str:
    """Render a trace as an ASCII Gantt chart.

    ``=`` receive, ``#`` compute, ``.`` idle.  Rows are labelled by
    worker and sorted by name; the time axis is scaled to ``width``
    columns.  Overlapping records of one worker overwrite left-to-right
    (later kinds win), which is fine for the well-formed schedules the
    simulators emit.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    span = trace.makespan
    rows = trace.by_worker()
    if not rows or span <= 0:
        return "(empty trace)"
    scale = width / span
    lines = []
    label_w = max(len(name) for name in rows)
    for name in sorted(rows):
        buf = [_GLYPHS["idle"]] * width
        for rec in rows[name]:
            a = int(rec.start * scale)
            b = max(a + 1, int(round(rec.end * scale)))
            glyph = _GLYPHS.get(rec.kind, "?")
            for i in range(a, min(b, width)):
                buf[i] = glyph
        lines.append(f"{name.rjust(label_w)} |{''.join(buf)}|")
    axis = " " * label_w + f" 0{' ' * (width - 2 - len(f'{span:.3g}'))}{span:.3g}"
    lines.append(axis)
    return "\n".join(lines)
