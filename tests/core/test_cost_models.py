"""Tests for repro.core.cost_models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_models import (
    AffineCost,
    CallableCost,
    LinearCost,
    NLogNCost,
    PiecewiseCost,
    PowerLawCost,
)

pos_floats = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


class TestLinearCost:
    def test_work(self):
        assert LinearCost(rate=2.0).work(5.0) == 10.0

    def test_is_linear(self):
        assert LinearCost().is_linear

    def test_split_loss_zero(self):
        assert LinearCost().split_loss(100.0, 7) == pytest.approx(0.0)

    def test_inverse_closed_form(self):
        assert LinearCost(rate=4.0).inverse(8.0) == pytest.approx(2.0)

    def test_vectorised(self):
        out = LinearCost().work(np.array([1.0, 2.0]))
        assert np.array_equal(out, [1.0, 2.0])

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            LinearCost(rate=0.0)


class TestPowerLawCost:
    def test_quadratic(self):
        assert PowerLawCost(alpha=2.0).work(3.0) == 9.0

    def test_split_loss_positive_for_superlinear(self):
        """The "no free lunch": splitting destroys super-linear work."""
        loss = PowerLawCost(alpha=2.0).split_loss(100.0, 10)
        # work(100) - 10*work(10) = 10000 - 1000 = 9000
        assert loss == pytest.approx(9000.0)

    def test_split_loss_zero_when_alpha_one(self):
        assert PowerLawCost(alpha=1.0).split_loss(50.0, 5) == pytest.approx(0.0)

    def test_split_loss_negative_for_sublinear(self):
        assert PowerLawCost(alpha=0.5).split_loss(100.0, 4) < 0

    def test_inverse(self):
        assert PowerLawCost(alpha=3.0).inverse(27.0) == pytest.approx(3.0)

    def test_is_linear_only_at_one(self):
        assert PowerLawCost(alpha=1.0).is_linear
        assert not PowerLawCost(alpha=2.0).is_linear

    @given(n=pos_floats, alpha=st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_superadditive(self, n, alpha):
        """work(a) + work(b) <= work(a + b) for alpha >= 1."""
        cost = PowerLawCost(alpha=alpha)
        a, b = 0.3 * n, 0.7 * n
        assert cost.work(a) + cost.work(b) <= cost.work(n) * (1 + 1e-9)


class TestNLogNCost:
    def test_zero_below_one(self):
        assert NLogNCost().work(0.5) == 0.0
        assert NLogNCost().work(1.0) == 0.0

    def test_value(self):
        assert NLogNCost().work(8.0) == pytest.approx(24.0)  # 8*log2(8)

    def test_vectorised(self):
        out = NLogNCost().work(np.array([2.0, 4.0]))
        assert np.allclose(out, [2.0, 8.0])

    def test_residue_matches_paper(self):
        """p * work(N/p) = N log N - N log p (the §3 identity)."""
        N, p = 2.0**16, 8
        cost = NLogNCost()
        partial = p * cost.work(N / p)
        assert partial == pytest.approx(N * np.log2(N) - N * np.log2(p))

    def test_inverse_bisection(self):
        cost = NLogNCost()
        n = cost.inverse(24.0)
        assert n == pytest.approx(8.0, rel=1e-6)


class TestAffineCost:
    def test_latency_added(self):
        assert AffineCost(rate=1.0, latency=5.0).work(2.0) == 7.0

    def test_zero_input_free(self):
        assert AffineCost(rate=1.0, latency=5.0).work(np.array([0.0]))[0] == 0.0

    def test_linear_iff_no_latency(self):
        assert AffineCost(latency=0.0).is_linear
        assert not AffineCost(latency=1.0).is_linear


class TestCallableCost:
    def test_wraps_function(self):
        cost = CallableCost(fn=lambda n: n**1.5, name="n15")
        assert cost.work(4.0) == pytest.approx(8.0)
        assert cost.name == "n15"

    def test_linear_flag(self):
        assert CallableCost(fn=lambda n: n, linear=True).is_linear


class TestInverseGeneric:
    def test_inverse_zero(self):
        assert PowerLawCost(alpha=2.0).inverse(0.0) == 0.0

    def test_inverse_rejects_negative(self):
        with pytest.raises(ValueError):
            LinearCost().inverse(-1.0)

    @given(target=pos_floats)
    @settings(max_examples=40, deadline=None)
    def test_inverse_roundtrip_nlogn(self, target):
        cost = NLogNCost()
        n = cost.inverse(target)
        assert cost.work(max(n, 1.0000001)) == pytest.approx(
            max(target, 0.0), rel=1e-4, abs=1e-4
        ) or n <= 1.0


class TestPiecewiseCost:
    """The decorator-registered piecewise-linear model (ROADMAP item)."""

    def test_registered_under_cost_model_kind(self):
        from repro import registry

        assert "piecewise" in registry.available("cost_model")
        model = registry.create("cost_model", "piecewise")
        assert isinstance(model, PiecewiseCost)

    def test_interpolates_between_breakpoints(self):
        cost = PiecewiseCost(breakpoints=((0, 0), (10, 10), (20, 50)))
        assert cost.work(5.0) == pytest.approx(5.0)
        assert cost.work(10.0) == pytest.approx(10.0)
        assert cost.work(15.0) == pytest.approx(30.0)

    def test_extrapolates_last_slope(self):
        cost = PiecewiseCost(breakpoints=((0, 0), (10, 10), (20, 50)))
        # final segment has slope 4, so it keeps climbing at 4/unit
        assert cost.work(30.0) == pytest.approx(50.0 + 4.0 * 10.0)

    def test_vectorised(self):
        cost = PiecewiseCost(breakpoints=((0, 0), (10, 10), (20, 50)))
        out = cost.work(np.array([5.0, 15.0, 30.0]))
        assert np.allclose(out, [5.0, 30.0, 90.0])

    def test_default_is_superadditive(self):
        """The cache-knee default destroys work when chunks are split —
        the §2 shape realised as a table."""
        cost = PiecewiseCost()
        assert cost.split_loss(100_000.0, 8) > 0.0
        assert not cost.is_linear

    def test_colinear_breakpoints_report_linear(self):
        assert PiecewiseCost(breakpoints=((0, 0), (5, 10), (10, 20))).is_linear

    def test_inverse_bisection_roundtrip(self):
        cost = PiecewiseCost()
        target = cost.work(9999.0)
        assert cost.inverse(target) == pytest.approx(9999.0, rel=1e-6)

    def test_rejects_bad_breakpoints(self):
        with pytest.raises(ValueError, match=">= 2 breakpoints"):
            PiecewiseCost(breakpoints=((0, 0),))
        with pytest.raises(ValueError, match="strictly increase"):
            PiecewiseCost(breakpoints=((0, 0), (0, 5)))
        with pytest.raises(ValueError, match="non-decreasing"):
            PiecewiseCost(breakpoints=((0, 0), (5, 10), (10, 5)))
        with pytest.raises(ValueError, match=">= 0"):
            PiecewiseCost(breakpoints=((-1, 0), (5, 10)))
