"""Provider table for the library's built-in components.

Maps each component kind to the modules that register components of
that kind when imported.  The registry imports these lazily on the
first query of a kind — nothing here triggers an import by itself, so
``import repro.registry`` never pulls in NumPy-heavy modules.

Adding a new built-in component is a two-line change: decorate the
factory with ``@register(kind, name)`` in its own module and list that
module here (third-party plugins skip even that — they just import
:mod:`repro.registry` and decorate).
"""

from __future__ import annotations

from repro.registry.core import Registry

#: kind → modules whose import registers that kind's built-ins
PROVIDER_MODULES: dict[str, tuple[str, ...]] = {
    "cost_model": ("repro.core.cost_models",),
    "strategy": (
        "repro.blocks.homogeneous",
        "repro.blocks.refined",
        "repro.blocks.heterogeneous",
    ),
    "partitioner": (
        "repro.partition.column_based",
        "repro.partition.perimax",
        "repro.partition.recursive",
        "repro.partition.naive",
    ),
    "dlt_solver": (
        "repro.dlt.single_round",
        "repro.dlt.nonlinear_solver",
        "repro.dlt.multi_round",
        "repro.dlt.tree_solver",
    ),
    "simulation": (
        "repro.simulate.master_worker",
        "repro.simulate.demand_driven",
        "repro.simulate.affinity",
        "repro.mapreduce.scheduler",
    ),
    "backend": (
        "repro.core.backends",
        "repro.service.asyncio_backend",
        "repro.service.client",
    ),
    "cache": (
        "repro.core.cache",
        "repro.service.client",
    ),
    "dispatch": ("repro.cluster.dispatch",),
}


def install_builtin_providers(registry: Registry) -> None:
    """Declare every built-in provider module on ``registry``."""
    for kind, modules in PROVIDER_MODULES.items():
        registry.register_provider_modules(kind, modules)
