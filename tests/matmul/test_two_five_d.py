"""Tests for repro.matmul.two_five_d."""

import numpy as np
import pytest

from repro.matmul.mapreduce_layouts import matmul_lower_bound
from repro.matmul.two_five_d import (
    crossover_with_heterogeneous_partitioning,
    max_replication,
    two_five_d_volume,
    volume_vs_replication,
)


class TestVolumes:
    def test_c1_matches_2d_lower_bound(self):
        """c=1 degenerates to the 2D outer-product volume 2N²√p."""
        N, p = 100, 16
        vol = two_five_d_volume(N, p, c=1)
        assert vol.total_volume == pytest.approx(
            matmul_lower_bound(N, np.ones(p))
        )

    def test_sqrt_c_gain(self):
        N, p = 100, 64
        v1 = two_five_d_volume(N, p, 1)
        v4 = two_five_d_volume(N, p, 4)
        assert v4.total_volume == pytest.approx(v1.total_volume / 2.0)
        assert v4.speeddown_vs_2d == pytest.approx(0.5)

    def test_memory_scales_linearly_in_c(self):
        N, p = 100, 64
        assert two_five_d_volume(N, p, 4).memory_per_processor == pytest.approx(
            4 * two_five_d_volume(N, p, 1).memory_per_processor
        )

    def test_c_cannot_exceed_p(self):
        with pytest.raises(ValueError):
            two_five_d_volume(10, 4, 8)


class TestReplicationSweep:
    def test_max_replication_cbrt(self):
        assert max_replication(64) == 4
        assert max_replication(27) == 3
        assert max_replication(2) == 1

    def test_sweep_monotone_decreasing_volume(self):
        vols = volume_vs_replication(200, 64)
        totals = [v.total_volume for v in vols]
        assert totals == sorted(totals, reverse=True)
        assert len(vols) == 4


class TestCrossover:
    def test_heterogeneous_2d_vs_homogeneous_25d(self):
        """On a strongly heterogeneous platform, 2.5D's √c gain can be
        offset by heterogeneity-aware 2D partitioning — the comparison
        the paper gestures at in §4.2."""
        rng = np.random.default_rng(0)
        speeds = rng.uniform(1, 100, 64)
        out1 = crossover_with_heterogeneous_partitioning(100, speeds, c=1)
        # at c=1 the heterogeneous 2D volume (~LB for the speed mix) is
        # below the homogeneous 2N²√p  — fewer "effective" squares
        assert out1["het_2d_volume"] < out1["hom_25d_volume"] * 1.05
        out4 = crossover_with_heterogeneous_partitioning(100, speeds, c=4)
        # replication eventually wins on volume (at a memory cost)
        assert out4["hom_25d_volume"] < out1["hom_25d_volume"]
