"""Replay a DLT allocation on the star platform, event by event.

Rather than trusting the closed forms of :mod:`repro.dlt`, this module
*executes* an allocation on the event engine: the master starts sends
according to the platform's communication model, each worker computes
once its data is in.  The resulting per-worker timelines must agree
with the analytic receive/finish times — that agreement is asserted in
the integration tests, which is how the library validates both the
solver and the simulator against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.cost_models import CostModel, LinearCost
from repro.platform.comm_models import OnePort, ParallelLinks
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.simulate.engine import Simulator
from repro.simulate.trace import Trace


@dataclass(frozen=True)
class WorkerTimeline:
    """Simulated timeline of one worker for one allocation."""

    worker: str
    amount: float
    recv_start: float
    recv_end: float
    compute_end: float


@register(
    "simulation",
    "master-worker",
    summary="Replay a DLT allocation event-by-event on the star platform",
)
def simulate_allocation(
    platform: StarPlatform,
    amounts: Sequence[float],
    cost_model: CostModel | None = None,
    order: Sequence[int] | None = None,
) -> tuple[list[WorkerTimeline], Trace, float]:
    """Run one single-round distribution + computation on the engine.

    Parameters
    ----------
    platform:
        The star; its ``comm_model`` decides transfer timing
        (parallel links or one-port are supported here).
    amounts:
        Data units per worker.
    cost_model:
        Chunk-size → work mapping; defaults to :class:`LinearCost`.
        Worker *i* computes for ``cycle_time[i] * cost_model.work(n_i)``.
    order:
        One-port service order (ignored for parallel links).

    Returns ``(timelines, trace, makespan)``.
    """
    cost_model = cost_model or LinearCost()
    amounts = np.asarray(amounts, dtype=float)
    p = platform.size
    if amounts.shape != (p,):
        raise ValueError(f"expected {p} amounts, got shape {amounts.shape}")
    if np.any(amounts < 0):
        raise ValueError("amounts must be non-negative")

    c = platform.comm_times
    w = platform.cycle_times
    model = platform.comm_model

    sim = Simulator()
    trace = Trace()
    timelines: list[WorkerTimeline | None] = [None] * p

    def make_compute_handler(i: int, recv_start: float, recv_end: float) -> Callable:
        def on_recv_done(s: Simulator) -> None:
            compute_time = float(w[i] * cost_model.work(amounts[i]))
            done = s.now + compute_time

            def on_compute_done(s2: Simulator) -> None:
                name = platform[i].name
                trace.add(name, "recv", recv_start, recv_end)
                if compute_time > 0:
                    trace.add(name, "compute", recv_end, done)
                timelines[i] = WorkerTimeline(
                    worker=name,
                    amount=float(amounts[i]),
                    recv_start=recv_start,
                    recv_end=recv_end,
                    compute_end=done,
                )

            s.schedule_at(done, on_compute_done, kind=f"compute-done:{i}")

        return on_recv_done

    if isinstance(model, OnePort):
        if order is None:
            order = np.argsort(c, kind="stable")
        t = 0.0
        for idx in np.asarray(order, dtype=int):
            start = t
            t += float(c[idx] * amounts[idx])
            sim.schedule_at(
                t, make_compute_handler(int(idx), start, t), kind=f"recv-done:{idx}"
            )
    elif isinstance(model, ParallelLinks):
        ends = model.receive_end_times(c, amounts)
        for i in range(p):
            sim.schedule_at(
                float(ends[i]),
                make_compute_handler(i, 0.0, float(ends[i])),
                kind=f"recv-done:{i}",
            )
    else:
        raise NotImplementedError(
            f"simulate_allocation supports parallel-links and one-port, "
            f"got {model.name}"
        )

    makespan = sim.run()
    done = [tl for tl in timelines if tl is not None]
    if len(done) != p:
        raise RuntimeError("simulation ended with unfinished workers")
    return done, trace, float(makespan)
