"""Provider that registers slowly — exercises concurrent lazy loading.

Like ``_lazy_provider``, registration goes to ``_hooks.TARGET``; the
deliberate pause widens the race window between a thread that starts
the provider import and others querying the same kind mid-load.
"""

import time

from tests.registry import _hooks

_hooks.IMPORT_COUNT += 1
time.sleep(0.05)

if _hooks.TARGET is not None:
    _hooks.TARGET.add("strategy", "slow-strategy", lambda: "loaded slowly")
