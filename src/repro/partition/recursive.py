"""Recursive-bisection partitioner — the classic alternative baseline.

Berger–Bokhari-style divide and conquer: split the processor set into
two groups of (approximately) equal total area, cut the rectangle along
its longer side proportionally, recurse.  Unlike the column-based DP it
has no constant-factor guarantee for PERI-SUM, but — not being confined
to column layouts — it is empirically competitive (both land within a
few % of the lower bound on random instances; see
`benchmarks/bench_ablation_partitioners.py`).  The library ships it as
the comparison point practical systems actually use.

The two-group split minimises the imbalance of a *contiguous prefix* of
the areas sorted descending — a classic LPT-flavoured heuristic that
keeps big rectangles intact.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.partition.rectangle import Partition, Rectangle
from repro.registry import register
from repro.util.validation import check_probability_vector


def _split_indices(order: List[int], areas: np.ndarray) -> tuple[List[int], List[int]]:
    """Split ``order`` (sorted by descending area) into a prefix/suffix
    whose area totals are as balanced as possible."""
    totals = np.cumsum([areas[i] for i in order])
    grand = totals[-1]
    # choose the prefix length minimising |prefix - grand/2|, at least 1
    # and at most len-1 so both sides are non-empty
    best_k, best_gap = 1, float("inf")
    for k in range(1, len(order)):
        gap = abs(totals[k - 1] - grand / 2)
        if gap < best_gap:
            best_k, best_gap = k, gap
    return order[:best_k], order[best_k:]


def _recurse(
    x: float,
    y: float,
    w: float,
    h: float,
    order: List[int],
    areas: np.ndarray,
    out: List[Rectangle],
) -> None:
    if len(order) == 1:
        out.append(Rectangle(x=x, y=y, w=w, h=h, owner=order[0]))
        return
    left, right = _split_indices(order, areas)
    frac = float(sum(areas[i] for i in left)) / float(
        sum(areas[i] for i in order)
    )
    if w >= h:
        # cut vertically: left group gets the left slab
        w_left = w * frac
        _recurse(x, y, w_left, h, left, areas, out)
        _recurse(x + w_left, y, w - w_left, h, right, areas, out)
    else:
        h_bottom = h * frac
        _recurse(x, y, w, h_bottom, left, areas, out)
        _recurse(x, y + h_bottom, w, h - h_bottom, right, areas, out)


@register(
    "partitioner",
    "recursive",
    summary="Recursive proportional bisection (no guarantee)",
)
def recursive_bisection_partition(areas: Sequence[float]) -> Partition:
    """Partition the unit square by recursive proportional bisection.

    Areas are exact by construction (each cut is proportional); the
    objective value is whatever the cuts produce — no guarantee.
    """
    a = check_probability_vector(areas, "areas")
    order = sorted(range(a.size), key=lambda i: -a[i])
    out: List[Rectangle] = []
    _recurse(0.0, 0.0, 1.0, 1.0, order, a, out)
    part = Partition(tuple(out), side=1.0)
    part.validate(expected_areas=a)
    return part
