"""repro — reproduction of *Non-Linear Divisible Loads: There is No Free
Lunch* (Beaumont, Larchevêque, Marchal; IPDPS 2013 / INRIA RR-8170).

The library implements, from scratch:

* the heterogeneous master–worker star platform and its communication
  models (:mod:`repro.platform`);
* classical and non-linear Divisible Load Theory solvers
  (:mod:`repro.dlt`) plus a discrete-event simulator validating them
  (:mod:`repro.simulate`);
* the §2 no-free-lunch analysis (:mod:`repro.core.nonlinear`);
* executable parallel sample sort for the §3 almost-linear case
  (:mod:`repro.sorting`);
* PERI-SUM rectangle partitioning, the three §4 block strategies for
  outer product / matrix multiplication, and a metered MapReduce engine
  (:mod:`repro.partition`, :mod:`repro.blocks`, :mod:`repro.matmul`,
  :mod:`repro.mapreduce`);
* the experiment harness regenerating every paper table/figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import StarPlatform, plan_outer_product
    platform = StarPlatform.from_speeds([1, 2, 4, 8])
    plan = plan_outer_product(platform, N=10_000, strategy="het")
    print(plan.summary())

Batched / concurrent / cached planning goes through a session
(see :mod:`repro.core.session` and ``examples/session_tour.py``)::

    from repro import PlannerSession
    with PlannerSession(backend="threaded") as session:
        sweep = session.sweep(platform, N=10_000)

Planning also runs as a network service (:mod:`repro.service`,
``examples/remote_planning.py``): ``repro serve`` exposes a session
over HTTP, ``PlannerSession(backend="remote:HOST:PORT")`` offloads
sweeps to it, and ``cache="http://HOST:PORT"`` shares its warm plan
store across client processes.
"""

from repro import registry
from repro.platform import StarPlatform, Processor
from repro.core import (
    PlanRequest,
    PlanResult,
    PlanSweep,
    PlannerSession,
    PlanCache,
    PlanStore,
    MemoryPlanCache,
    SQLitePlanCache,
    TieredPlanCache,
    default_session,
    plan_request,
    available_strategies,
    plan_outer_product,
    compare_strategies,
    residual_fraction,
    partial_work_fraction,
    sorting_residual_fraction,
    lower_bound_comm,
    LinearCost,
    PowerLawCost,
    NLogNCost,
)
from repro.dlt import (
    solve_linear_parallel,
    solve_linear_one_port,
    solve_nonlinear_parallel,
)
from repro.partition import peri_sum_partition
from repro.sorting import sample_sort

__version__ = "2.0.0"

__all__ = [
    "registry",
    "StarPlatform",
    "Processor",
    "PlanRequest",
    "PlanResult",
    "PlanSweep",
    "PlannerSession",
    "PlanCache",
    "PlanStore",
    "MemoryPlanCache",
    "SQLitePlanCache",
    "TieredPlanCache",
    "default_session",
    "plan_request",
    "available_strategies",
    "plan_outer_product",
    "compare_strategies",
    "residual_fraction",
    "partial_work_fraction",
    "sorting_residual_fraction",
    "lower_bound_comm",
    "LinearCost",
    "PowerLawCost",
    "NLogNCost",
    "solve_linear_parallel",
    "solve_linear_one_port",
    "solve_nonlinear_parallel",
    "peri_sum_partition",
    "sample_sort",
    "__version__",
]
