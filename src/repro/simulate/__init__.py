"""Discrete-event simulation substrate.

The paper's evaluation is simulation-based; this package provides the
execution machinery:

* :mod:`repro.simulate.engine` — a generic event-queue simulator;
* :mod:`repro.simulate.master_worker` — replay a DLT allocation on a
  star platform (used to *validate* the closed forms in
  :mod:`repro.dlt` rather than trust them);
* :mod:`repro.simulate.demand_driven` — the MapReduce execution model:
  a bag of equal tasks, workers pull the next task when free (used by
  the Homogeneous-Blocks strategies of §4);
* :mod:`repro.simulate.trace` — execution traces and a text Gantt view.
"""

from repro.simulate.engine import Event, Simulator
from repro.simulate.master_worker import simulate_allocation, WorkerTimeline
from repro.simulate.demand_driven import (
    Task,
    DemandDrivenResult,
    run_demand_driven,
    uniform_tasks,
)
from repro.simulate.trace import Trace, TraceRecord, render_gantt
from repro.simulate.affinity import (
    GridScheduleResult,
    run_grid_demand_driven,
    affinity_savings,
)
from repro.simulate.failures import (
    FailureEvent,
    FaultyRunResult,
    run_with_failures,
    random_failures,
)

__all__ = [
    "GridScheduleResult",
    "run_grid_demand_driven",
    "affinity_savings",
    "FailureEvent",
    "FaultyRunResult",
    "run_with_failures",
    "random_failures",
    "Event",
    "Simulator",
    "simulate_allocation",
    "WorkerTimeline",
    "Task",
    "DemandDrivenResult",
    "run_demand_driven",
    "uniform_tasks",
    "Trace",
    "TraceRecord",
    "render_gantt",
]
