"""Tests for the Figure-4 harness — the paper's headline experiment."""

import numpy as np
import pytest

from repro.experiments.figure4 import (
    run_figure4,
    run_figure4_point,
)


class TestPoint:
    def test_point_structure(self):
        point = run_figure4_point(10, "uniform", np.random.default_rng(0))
        assert set(point.ratios) == {"het", "hom", "hom/k"}
        assert all(r >= 1.0 - 1e-9 for r in point.ratios.values())
        assert point.imbalances["hom/k"] <= 0.01

    def test_homogeneous_point_all_at_one(self):
        point = run_figure4_point(25, "homogeneous", np.random.default_rng(0))
        for name, r in point.ratios.items():
            assert r == pytest.approx(1.0, abs=0.02), name

    def test_hom_k_at_least_hom(self):
        point = run_figure4_point(30, "lognormal", np.random.default_rng(1))
        assert point.ratios["hom/k"] >= point.ratios["hom"] - 1e-9


class TestPanels:
    def test_figure4a_shape(self):
        """Homogeneous: all strategies ≈ 1 (paper's Figure 4a)."""
        res = run_figure4("homogeneous", processors=(10, 50), trials=3, seed=0)
        for name in ("het", "hom", "hom/k"):
            assert np.all(res.means[name] < 1.05), name

    def test_figure4b_shape(self):
        """Uniform speeds: het near 1, hom/k explodes (Figure 4b)."""
        res = run_figure4("uniform", processors=(10, 60), trials=8, seed=1)
        assert np.all(res.means["het"] < 1.10)
        assert res.means["hom/k"][-1] > 10.0
        assert res.final_ratio("hom/k") > res.final_ratio("hom") > res.final_ratio("het")

    def test_figure4c_shape(self):
        """Lognormal speeds: same qualitative picture (Figure 4c)."""
        res = run_figure4("lognormal", processors=(10, 60), trials=8, seed=2)
        assert np.all(res.means["het"] < 1.10)
        assert res.means["hom/k"][-1] > 10.0

    def test_het_ratio_improves_with_p(self):
        """More processors → finer partition → closer to the bound."""
        res = run_figure4("uniform", processors=(10, 100), trials=6, seed=3)
        assert res.means["het"][-1] < res.means["het"][0]

    def test_render_contains_all_columns(self):
        res = run_figure4("uniform", processors=(10,), trials=2, seed=4)
        text = res.render()
        assert "het mean" in text and "hom/k std" in text
        assert "uniform" in text

    def test_reproducible(self):
        a = run_figure4("uniform", processors=(10,), trials=3, seed=5)
        b = run_figure4("uniform", processors=(10,), trials=3, seed=5)
        assert np.array_equal(a.means["hom/k"], b.means["hom/k"])

    def test_confidence_interval_width(self):
        res = run_figure4("uniform", processors=(10, 40), trials=10, seed=6)
        ci = res.ci_half_width("het")
        assert ci.shape == (2,)
        assert np.all(ci >= 0)
        # het's ratio concentrates: CI well under the mean
        assert np.all(ci < res.means["het"])

    def test_ci_zero_for_deterministic_series(self):
        res = run_figure4("homogeneous", processors=(16,), trials=5, seed=7)
        assert res.ci_half_width("hom")[0] == pytest.approx(0.0)

    def test_ci_degenerate_single_trial(self):
        res = run_figure4("uniform", processors=(10,), trials=1, seed=8)
        assert res.ci_half_width("het")[0] == 0.0
