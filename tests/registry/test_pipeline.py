"""Tests for the PlanRequest → PlanResult pipeline."""

import pytest

from repro.core.pipeline import (
    PlanRequest,
    PlanResult,
    plan_request,
    supported_kwargs,
)
from repro.core.session import default_session


class TestSupportedKwargs:
    def test_filters_unknown_parameters(self):
        def factory(imbalance_target=0.01):
            return imbalance_target

        params = {"imbalance_target": 0.5, "other": 1}
        assert supported_kwargs(factory, params) == {"imbalance_target": 0.5}

    def test_var_keyword_receives_everything(self):
        def factory(**kwargs):
            return kwargs

        params = {"a": 1, "b": 2}
        assert supported_kwargs(factory, params) == params

    def test_no_parameters(self):
        def factory():
            return None

        assert supported_kwargs(factory, {"a": 1}) == {}


class TestSessionPlan:
    def test_single_request(self, heterogeneous_platform):
        result = default_session().plan(
            PlanRequest(platform=heterogeneous_platform, N=1000.0, strategy="het")
        )
        assert isinstance(result, PlanResult)
        assert result.strategy == "het"
        assert result.comm_volume > 0
        assert result.ratio_to_lower_bound >= 1.0 - 1e-9
        assert result.elapsed_s >= 0.0
        # the default session may have planned this exact instance for
        # an earlier test, in which case the plan is served from cache
        summary = result.summary()
        assert "planned in" in summary or "served from cache" in summary

    def test_params_routed_to_accepting_strategy(self, heterogeneous_platform):
        result = default_session().plan(
            PlanRequest(
                platform=heterogeneous_platform,
                N=1000.0,
                strategy="hom/k",
                params={"imbalance_target": 0.5},
            )
        )
        converged = result.plan.detail.get("converged", True)
        assert result.imbalance <= 0.5 or not converged

    def test_unknown_strategy_raises_with_available(
        self, heterogeneous_platform
    ):
        with pytest.raises(ValueError, match="unknown strategy 'nope'"):
            default_session().plan(
                PlanRequest(
                    platform=heterogeneous_platform, N=100.0, strategy="nope"
                )
            )

    def test_with_strategy_rebinds(self, heterogeneous_platform):
        req = PlanRequest(platform=heterogeneous_platform, N=100.0)
        assert req.with_strategy("hom").strategy == "hom"
        assert req.with_strategy("hom").N == req.N


class TestSessionSweep:
    def test_sweeps_every_registered_strategy(self, heterogeneous_platform):
        sweep = default_session().sweep(heterogeneous_platform, 1000.0)
        assert set(sweep.results) == {"hom", "hom/k", "het"}

    def test_best_is_lowest_comm_volume(self, heterogeneous_platform):
        sweep = default_session().sweep(heterogeneous_platform, 1000.0)
        best = sweep.best
        assert all(
            best.comm_volume <= r.comm_volume for r in sweep.results.values()
        )
        # on a heterogeneous platform het wins (the paper's point)
        assert best.strategy == "het"

    def test_subset_selection(self, heterogeneous_platform):
        sweep = default_session().sweep(
            heterogeneous_platform, 1000.0, strategies=("hom", "het")
        )
        assert set(sweep.results) == {"hom", "het"}

    def test_render_mentions_every_strategy(self, heterogeneous_platform):
        text = default_session().sweep(heterogeneous_platform, 500.0).render()
        for name in ("hom", "hom/k", "het"):
            assert name in text
        assert "ratio to LB" in text

    def test_empty_sweep_best_raises_cleanly(self, heterogeneous_platform):
        sweep = default_session().sweep(
            heterogeneous_platform, 100.0, strategies=()
        )
        with pytest.raises(ValueError, match="empty sweep"):
            sweep.best

    def test_ratios_match_plans(self, heterogeneous_platform):
        sweep = default_session().sweep(heterogeneous_platform, 1000.0)
        for name, res in sweep.results.items():
            assert sweep.ratios[name] == res.plan.ratio_to_lower_bound

    def test_iteration_order_sorted(self, heterogeneous_platform):
        """Serial and concurrent backends must render identical tables."""
        sweep = default_session().sweep(
            heterogeneous_platform, 1000.0, strategies=("hom/k", "het", "hom")
        )
        assert list(sweep.results) == ["het", "hom", "hom/k"]


class TestShimsRemoved:
    """The 1.x ``execute`` / ``execute_all`` shims are gone in 2.0."""

    def test_pipeline_no_longer_exports_shims(self):
        import repro.core.pipeline as pipeline

        assert not hasattr(pipeline, "execute")
        assert not hasattr(pipeline, "execute_all")

    def test_package_no_longer_exports_shims(self):
        import repro

        assert not hasattr(repro, "execute")
        assert not hasattr(repro, "execute_all")
        assert "execute" not in repro.__all__
        assert "execute_all" not in repro.__all__


class TestRawPlanner:
    def test_plan_request_never_caches(self, heterogeneous_platform):
        request = PlanRequest(platform=heterogeneous_platform, N=777.0)
        first = plan_request(request)
        second = plan_request(request)
        assert not first.cached and not second.cached
        assert first.comm_volume == second.comm_volume
