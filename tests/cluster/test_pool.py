"""WorkerPool: membership, liveness accounting, the heartbeat monitor."""

import threading
import time

import pytest

from repro.cluster.pool import WorkerPool, normalize_worker_url

URL_A = "http://127.0.0.1:9001"
URL_B = "http://127.0.0.1:9002"


class TestMembership:
    def test_register_and_list(self):
        pool = WorkerPool()
        info = pool.register(URL_A)
        assert info.url == URL_A
        assert info.alive
        assert [w.url for w in pool.workers()] == [URL_A]

    def test_register_idempotent_by_url(self):
        pool = WorkerPool()
        first = pool.register(URL_A)
        again = pool.register(URL_A + "/")  # trailing slash normalised
        assert again.id == first.id
        assert len(pool.workers()) == 1

    def test_register_revives_dead_worker(self):
        pool = WorkerPool()
        pool.register(URL_A)
        pool.mark_dead(URL_A, "test")
        assert not pool.alive()
        pool.register(URL_A)
        assert [w.url for w in pool.alive()] == [URL_A]

    def test_register_rejects_non_http(self):
        with pytest.raises(ValueError):
            WorkerPool().register("127.0.0.1:9001")

    def test_mark_dead_records_reason_and_failure(self):
        pool = WorkerPool()
        pool.register(URL_A)
        pool.mark_dead(URL_A, "connection refused")
        (info,) = pool.workers()
        assert not info.alive
        assert info.reason == "connection refused"
        assert info.failures == 1
        # marking an already-dead worker dead again is not a new failure
        pool.mark_dead(URL_A, "again")
        assert pool.workers()[0].failures == 1

    def test_heartbeat_revives_and_autoregisters(self):
        pool = WorkerPool()
        pool.register(URL_A)
        pool.mark_dead(URL_A, "test")
        pool.heartbeat(URL_A)
        assert pool.workers()[0].alive
        # unknown URL: auto-register
        pool.heartbeat(URL_B)
        assert {w.url for w in pool.alive()} == {URL_A, URL_B}


class TestUrlNormalisation:
    """Every lookup must accept any spelling register() accepts.

    Regression: mark_dead/acquire/release used to look up the *raw*
    URL while register/heartbeat normalised — a coordinator passing a
    trailing-slash URL silently no-opped mark_dead, so a dead worker
    kept receiving dispatch and inflight accounting drifted.
    """

    def test_normalize_worker_url(self):
        assert normalize_worker_url(f"  {URL_A}/ ") == URL_A
        assert normalize_worker_url(URL_A) == URL_A

    def test_mark_dead_normalises_trailing_slash(self):
        pool = WorkerPool()
        pool.register(URL_A)
        pool.mark_dead(URL_A + "/", "transport failure")
        assert not pool.alive()
        (info,) = pool.workers()
        assert info.reason == "transport failure"
        assert info.failures == 1

    def test_mark_dead_normalises_whitespace(self):
        pool = WorkerPool()
        pool.register(URL_A + "/")  # stored normalised
        pool.mark_dead(f" {URL_A} ")
        assert not pool.alive()

    def test_acquire_release_normalise(self):
        pool = WorkerPool()
        pool.register(URL_A)
        pool.acquire(URL_A + "/", 3)
        (info,) = pool.workers()
        assert info.inflight == 3
        assert info.dispatched == 3
        pool.release(URL_A + "/", 3)
        assert pool.workers()[0].inflight == 0

    def test_heartbeat_trailing_slash_does_not_duplicate(self):
        pool = WorkerPool()
        pool.register(URL_A)
        pool.mark_dead(URL_A, "test")
        info = pool.heartbeat(URL_A + "/")
        assert info.alive
        assert len(pool.workers()) == 1


class TestLoadAccounting:
    def test_acquire_release(self):
        pool = WorkerPool()
        pool.register(URL_A)
        pool.acquire(URL_A, 3)
        (info,) = pool.workers()
        assert info.inflight == 3
        assert info.dispatched == 3
        pool.release(URL_A, 3)
        assert pool.workers()[0].inflight == 0
        assert pool.workers()[0].dispatched == 3

    def test_release_never_goes_negative(self):
        pool = WorkerPool()
        pool.register(URL_A)
        pool.release(URL_A, 5)
        assert pool.workers()[0].inflight == 0

    def test_unknown_url_is_a_noop(self):
        pool = WorkerPool()
        pool.acquire(URL_A)  # nothing registered: must not raise
        pool.release(URL_A)


class TestSnapshot:
    def test_snapshot_shape(self):
        pool = WorkerPool(max_missed=3)
        pool.register(URL_A)
        pool.register(URL_B)
        pool.mark_dead(URL_B, "test")
        snap = pool.snapshot()
        assert snap["total"] == 2
        assert snap["alive"] == 1
        assert snap["max_missed"] == 3
        by_url = {w["url"]: w for w in snap["workers"]}
        assert by_url[URL_B]["alive"] is False
        assert by_url[URL_B]["reason"] == "test"

    def test_snapshot_is_json_able(self):
        import json

        pool = WorkerPool()
        pool.register(URL_A)
        json.dumps(pool.snapshot())


class TestMonitor:
    def test_marks_dead_after_max_missed_probes(self):
        pool = WorkerPool(max_missed=2)
        pool.register(URL_A)
        pool.start_monitor(lambda url: False, interval=0.05)
        try:
            deadline = time.time() + 5
            while pool.alive() and time.time() < deadline:
                time.sleep(0.02)
            (info,) = pool.workers()
            assert not info.alive
            assert info.missed >= 2
            assert "missed heartbeats" in info.reason
        finally:
            pool.stop_monitor()

    def test_probe_success_revives(self):
        pool = WorkerPool(max_missed=1)
        pool.register(URL_A)
        healthy = threading.Event()
        pool.start_monitor(lambda url: healthy.is_set(), interval=0.05)
        try:
            deadline = time.time() + 5
            while pool.alive() and time.time() < deadline:
                time.sleep(0.02)
            assert not pool.alive()
            healthy.set()
            deadline = time.time() + 5
            while not pool.alive() and time.time() < deadline:
                time.sleep(0.02)
            assert pool.alive()
        finally:
            pool.stop_monitor()

    def test_probe_exception_counts_as_miss(self):
        pool = WorkerPool(max_missed=1)
        pool.register(URL_A)

        def explode(url):
            raise OSError("probe failed")

        pool.start_monitor(explode, interval=0.05)
        try:
            deadline = time.time() + 5
            while pool.alive() and time.time() < deadline:
                time.sleep(0.02)
            assert not pool.alive()
        finally:
            pool.stop_monitor()

    def test_start_monitor_twice_is_noop(self):
        pool = WorkerPool()
        pool.start_monitor(lambda url: True, interval=10)
        try:
            pool.start_monitor(lambda url: True, interval=10)
        finally:
            pool.stop_monitor()

    def test_stop_monitor_without_start(self):
        WorkerPool().stop_monitor()  # must not raise


class TestValidation:
    def test_max_missed_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(max_missed=0)

    def test_monitor_interval_must_be_positive(self):
        pool = WorkerPool()
        with pytest.raises(ValueError):
            pool.start_monitor(lambda url: True, interval=0)
