"""The Homogeneous Blocks strategy (``Comm_hom``, §4.1.1).

The computational domain (``N × N`` products :math:`a_i b_j`) is cut
into identical square chunks of side :math:`D = \\sqrt{x_1} N`, sized so
the *slowest* worker processes exactly one.  Chunks are assigned demand-
driven (workers pull a chunk when free).  MapReduce ships each chunk's
input independently, so the communication volume counts :math:`2D` per
chunk with **no reuse** even when a worker's chunks share rows/columns
— that redundancy is precisely the §4 critique.

Idealised accounting (all counts integral):

.. math:: \\#\\text{blocks} = 1/x_1, \\qquad
          Comm_{hom} = \\frac{2N}{\\sqrt{x_1}}
                     = 2N\\sqrt{\\sum_i s_i / s_1}.

The executable strategy rounds the block count to an integer and really
runs the greedy demand-driven schedule, so the load imbalance ``e`` that
§4.3 measures is produced by simulation rather than assumed away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.blocks.metrics import (
    StrategyResult,
    batch_platform_groups,
    load_imbalance,
)
from repro.core.bounds import comm_hom_ideal
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.simulate.demand_driven import (
    Task,
    identical_task_schedule,
    run_demand_driven,
)
from repro.util.validation import check_positive


@register(
    "strategy",
    "hom",
    summary="Homogeneous Blocks: identical chunks, demand-driven (§4.1.1)",
    section="§4.1.1",
)
@dataclass(frozen=True)
class HomogeneousBlocksStrategy:
    """Plan an outer product with MapReduce-style homogeneous chunks.

    Parameters
    ----------
    subdivision:
        Divide the natural block side ``D`` by this integer ``k >= 1``
        (``k = 1`` is plain ``Comm_hom``; the refinement loop of
        :class:`repro.blocks.RefinedHomogeneousStrategy` sweeps ``k``).
    """

    subdivision: int = 1

    def __post_init__(self) -> None:
        if self.subdivision < 1:
            raise ValueError(
                f"subdivision must be >= 1, got {self.subdivision}"
            )

    def block_side(self, platform: StarPlatform, N: float) -> float:
        """Side :math:`D/k` with :math:`D = \\sqrt{x_1}\\,N`."""
        check_positive(N, "N")
        x1 = float(platform.normalized_speeds.min())
        return float(np.sqrt(x1) * N / self.subdivision)

    def n_blocks(self, platform: StarPlatform, N: float) -> int:
        """Number of chunks: domain area over chunk area, rounded **up**.

        ``ceil(N² / side²) = ceil(k² / x_1)`` — rounding up keeps the
        chunks covering the whole domain (rounding to nearest could drop
        a fractional block and under-count communication below the lower
        bound).  A small tolerance absorbs float noise so exact integer
        ratios (homogeneous platforms) stay exact.  At least one block
        per worker is *not* forced — if rounding starves a worker the
        imbalance metric reports ``inf`` and the refinement loop reacts.
        """
        side = self.block_side(platform, N)
        return max(1, int(np.ceil((N / side) ** 2 - 1e-9)))

    #: above this many chunks, use the O(p log) closed form of the
    #: greedy schedule instead of the heap (identical results — the
    #: equivalence is property-tested)
    _FAST_PATH_THRESHOLD = 4096

    def plan(self, platform: StarPlatform, N: float) -> StrategyResult:
        """Run the demand-driven schedule and account communications."""
        check_positive(N, "N")
        side = self.block_side(platform, N)
        B = self.n_blocks(platform, N)
        work = side * side  # elementary products per chunk
        if B > self._FAST_PATH_THRESHOLD:
            counts, finish_times = identical_task_schedule(platform, B, work)
        else:
            tasks = [Task(work=work, data=2.0 * side, tag=b) for b in range(B)]
            result = run_demand_driven(platform, tasks)
            counts, finish_times = result.counts, result.finish_times
        return self._result(platform, float(N), side, B, counts, finish_times)

    def plan_batch(
        self,
        platforms: Sequence[StarPlatform],
        Ns: Sequence[float],
    ) -> List[StrategyResult]:
        """Plan a whole batch, sharing schedules across identical platforms.

        For identical tasks the greedy demand-driven schedule's *counts*
        depend only on the platform's relative cycle times and the block
        count ``B`` — both scale-invariant in ``N`` — so requests on
        content-identical platforms with equal ``B`` share one schedule
        (one heap run or one closed-form solve per group).  Finish times
        are then rebuilt per request by a vectorised cumulative sum that
        replays the heap's per-worker float additions in the same order,
        so results match the scalar path bit-for-bit whenever the shared
        counts do (always, barring sub-ulp ties between worker free
        times; the documented batch tolerance is ``rtol = 1e-12``).
        """
        results: List[StrategyResult | None] = [None] * len(platforms)
        for idxs in batch_platform_groups(platforms, Ns).values():
            platform = platforms[idxs[0]]
            # B is computed per request with the exact scalar formula
            # (its float noise is absorbed by n_blocks' tolerance, but
            # knife-edge cases must land where the scalar path puts
            # them), then requests sub-group by block count.
            sides = {i: self.block_side(platform, float(Ns[i])) for i in idxs}
            by_blocks: dict[int, List[int]] = {}
            for i in idxs:
                by_blocks.setdefault(
                    self.n_blocks(platform, float(Ns[i])), []
                ).append(i)
            for B, members in by_blocks.items():
                self._plan_members(
                    platforms, Ns, members, sides, B, results
                )
        return results  # type: ignore[return-value]

    def _plan_members(
        self,
        platforms: Sequence[StarPlatform],
        Ns: Sequence[float],
        members: List[int],
        sides: dict,
        B: int,
        results: List,
    ) -> None:
        """Schedule once, rebuild finish times for every member."""
        platform = platforms[members[0]]
        w = platform.cycle_times
        ref_side = sides[members[0]]
        ref_work = ref_side * ref_side
        if B > self._FAST_PATH_THRESHOLD:
            counts, _ = identical_task_schedule(platform, B, ref_work)
            closed_form = True
        else:
            tasks = [
                Task(work=ref_work, data=2.0 * ref_side, tag=b)
                for b in range(B)
            ]
            counts = run_demand_driven(platform, tasks).counts
            closed_form = False
        max_count = int(counts.max())
        active = np.arange(platform.size)[counts > 0]
        for i in members:
            side = sides[i]
            d = (side * side) * w
            if closed_form:
                # mirrors identical_task_schedule's `counts * d`
                finish = counts * d
            else:
                # replay the heap's per-worker additions: worker j's
                # finish is d[j] added counts[j] times sequentially,
                # which repeated-addition cumsum reproduces exactly
                partial = np.add.accumulate(
                    np.broadcast_to(d[active], (max_count, active.size)),
                    axis=0,
                )
                finish = np.zeros(platform.size)
                finish[active] = partial[counts[active] - 1, np.arange(active.size)]
            results[i] = self._result(
                platforms[i], float(Ns[i]), side, B, counts.copy(), finish
            )

    def _result(
        self,
        platform: StarPlatform,
        N: float,
        side: float,
        B: int,
        counts: np.ndarray,
        finish_times: np.ndarray,
    ) -> StrategyResult:
        comm = B * 2.0 * side
        return StrategyResult(
            strategy=f"hom/k={self.subdivision}" if self.subdivision > 1 else "hom",
            N=N,
            speeds=platform.speeds,
            comm_volume=float(comm),
            finish_times=finish_times,
            imbalance=load_imbalance(finish_times),
            detail={
                "block_side": side,
                "n_blocks": B,
                "subdivision": self.subdivision,
                "counts": counts,
            },
        )

    @staticmethod
    def ideal_volume(platform: StarPlatform, N: float) -> float:
        """Closed-form :math:`2N\\sqrt{\\sum s_i/s_1}` (§4.1.1)."""
        return comm_hom_ideal(N, platform.speeds)
