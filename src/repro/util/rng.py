"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (speed generators, sample-sort
splitter sampling, experiment sweeps) takes either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the figure-4 harness runs 100 trials per point
and must produce identical series across runs for the same seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing ``Generator`` returns it unchanged (shared state),
    which lets a caller thread one stream through several components.
    ``None`` produces OS-entropy seeding, for exploratory use only —
    experiments and tests should always pass an explicit seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so per-trial streams
    are statistically independent; trial *i* of a sweep always sees the
    same stream regardless of how many other trials run.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream; reproducible
        # given the generator state at call time.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def trial_seeds(seed: SeedLike, n: int) -> list[int]:
    """Produce ``n`` reproducible integer seeds (for logging / replay)."""
    rng = make_rng(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n)]


def permutation(
    rng: np.random.Generator, n: int, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """A random permutation of ``range(n)``; thin wrapper for testability."""
    p = rng.permutation(n)
    if out is not None:
        out[:] = p
        return out
    return p


def sample_without_replacement(
    rng: np.random.Generator, population: Sequence, k: int
) -> np.ndarray:
    """Sample ``k`` items without replacement from ``population``."""
    arr = np.asarray(population)
    if k > arr.size:
        raise ValueError(f"cannot sample {k} items from population of {arr.size}")
    idx = rng.choice(arr.size, size=k, replace=False)
    return arr[idx]
