"""Multi-installment (multi-round) DLT for linear loads — extension.

The paper restricts itself to single-round distribution (§1.2) but
mentions multi-round delivery ("the communications will be shorter ...
and the workers will be able to compute the current chunk while
receiving data for the next one").  We implement the standard *uniform*
multi-round scheme for linear loads under parallel links so the library
can quantify the pipelining gain — and tests can confirm that rounds do
**not** rescue super-linear loads (each round still covers only a
:math:`P^{1-\\alpha}` share of the work *it* distributes, so the total
work performed stays linear in the data shipped).

Scheme (per round ``r`` of ``R``): the master sends each worker its
share of ``N/R`` using the single-round closed form; a worker may
receive round ``r+1`` while computing round ``r``.  Under parallel
links worker *i*'s timeline is the max-plus recurrence::

    recv_end[i, r]    = recv_end[i, r-1] + c_i * amount[i, r]
    compute_end[i, r] = max(recv_end[i, r], compute_end[i, r-1])
                        + w_i * amount[i, r]

With an :class:`repro.core.cost_models.AffineCost` communication latency
the classic trade-off appears: more rounds pipeline better but pay more
latency, and an interior optimum exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlt.single_round import solve_linear_parallel
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_integer, check_positive


@dataclass(frozen=True)
class MultiRoundSchedule:
    """Timeline of a uniform multi-installment schedule.

    Arrays are ``(p, R)``: entry ``[i, r]`` concerns worker *i*, round
    *r*.
    """

    amounts: np.ndarray
    receive_end: np.ndarray
    compute_end: np.ndarray
    makespan: float
    rounds: int
    comm_latency: float

    @property
    def total(self) -> float:
        """Total data distributed across all rounds."""
        return float(self.amounts.sum())

    def worker_finish(self) -> np.ndarray:
        """Final compute-completion time of each worker."""
        return self.compute_end[:, -1]


@register(
    "dlt_solver",
    "multi-round",
    summary="Multi-installment schedule for linear loads",
)
def solve_multi_round(
    platform: StarPlatform,
    N: float,
    rounds: int,
    comm_latency: float = 0.0,
) -> MultiRoundSchedule:
    """Uniform multi-round schedule of a linear load.

    Each round distributes ``N/rounds`` with the optimal single-round
    proportions; ``comm_latency`` is a fixed per-message start-up cost
    added to every transfer (set it > 0 to expose the rounds trade-off).
    """
    check_positive(N, "N")
    check_integer(rounds, "rounds", minimum=1)
    if comm_latency < 0:
        raise ValueError(f"comm_latency must be >= 0, got {comm_latency}")

    p = platform.size
    c = platform.comm_times
    w = platform.cycle_times
    per_round = solve_linear_parallel(platform, N / rounds).amounts

    amounts = np.tile(per_round[:, None], (1, rounds))
    receive_end = np.empty((p, rounds), dtype=float)
    compute_end = np.empty((p, rounds), dtype=float)
    for r in range(rounds):
        prev_recv = receive_end[:, r - 1] if r > 0 else np.zeros(p)
        prev_comp = compute_end[:, r - 1] if r > 0 else np.zeros(p)
        receive_end[:, r] = prev_recv + comm_latency + c * amounts[:, r]
        compute_end[:, r] = (
            np.maximum(receive_end[:, r], prev_comp) + w * amounts[:, r]
        )
    return MultiRoundSchedule(
        amounts=amounts,
        receive_end=receive_end,
        compute_end=compute_end,
        makespan=float(compute_end[:, -1].max()),
        rounds=rounds,
        comm_latency=float(comm_latency),
    )


def best_round_count(
    platform: StarPlatform,
    N: float,
    comm_latency: float,
    max_rounds: int = 64,
) -> tuple[int, float]:
    """Scan round counts 1..max_rounds, return ``(best_R, makespan)``.

    With zero latency the makespan is non-increasing in ``R`` (pure
    pipelining gain); positive latency creates an interior optimum.
    """
    check_integer(max_rounds, "max_rounds", minimum=1)
    best_r, best_t = 1, np.inf
    for r in range(1, max_rounds + 1):
        t = solve_multi_round(platform, N, r, comm_latency).makespan
        if t < best_t - 1e-15:
            best_r, best_t = r, t
    return best_r, float(best_t)


def multi_round_nonlinear_coverage(
    platform: StarPlatform, N: float, alpha: float, rounds: int
) -> float:
    """Work fraction covered by ``rounds`` equal installments, cost N^α.

    Each round hands worker *i* chunk :math:`n_{i,r}`; independent
    chunks contribute :math:`\\sum n_{i,r}^\\alpha`.  For homogeneous
    platforms this equals :math:`(PR)^{1-\\alpha} N^\\alpha /
    N^\\alpha = (PR)^{1-\\alpha}` — *worse* per shipped byte than one
    round, confirming §2: more rounds of finer chunks destroy even more
    super-linear work.
    """
    check_positive(N, "N")
    check_positive(alpha, "alpha")
    check_integer(rounds, "rounds", minimum=1)
    per_round = solve_linear_parallel(platform, N / rounds).amounts
    covered = rounds * float(np.sum(per_round**alpha))
    return covered / float(N**alpha)
