"""Benchmarks for the PERI-SUM partitioner: experiment E10.

§4.1.2's guarantee is 7/4; §4.3 observes ≤ 1.02 in practice.  This
bench measures both the quality distribution on realistic speed vectors
and the DP's runtime scaling.
"""

import numpy as np
import pytest

from repro.partition.column_based import peri_sum_cost, peri_sum_partition
from repro.partition.lower_bound import peri_sum_lower_bound
from repro.util.tables import format_table


def test_peri_sum_quality_distribution(benchmark):
    def run():
        rng = np.random.default_rng(0)
        rows = []
        for p in (10, 30, 100):
            ratios = []
            for _ in range(30):
                speeds = rng.uniform(1, 100, p)
                areas = speeds / speeds.sum()
                ratios.append(peri_sum_cost(areas) / peri_sum_lower_bound(areas))
            ratios = np.array(ratios)
            rows.append([p, ratios.mean(), ratios.max()])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["p", "mean ratio to LB", "worst ratio"],
            rows,
            title="PERI-SUM column-based DP quality (uniform speeds)",
        )
    )
    for p, mean_ratio, worst in rows:
        assert worst <= 7.0 / 4.0  # the §4.1.2 guarantee
        assert mean_ratio < 1.05  # §4.3's observed "within 2%"
    # quality improves with p
    assert rows[-1][1] < rows[0][1]


def test_peri_sum_runtime_p100(benchmark):
    """DP runtime at the paper's largest platform (p = 100)."""
    rng = np.random.default_rng(1)
    speeds = rng.uniform(1, 100, 100)
    areas = speeds / speeds.sum()
    part = benchmark(peri_sum_partition, areas)
    part.validate(expected_areas=areas)


def test_peri_sum_cost_only_runtime(benchmark):
    """The geometry-free DP used inside sweeps (p = 200)."""
    rng = np.random.default_rng(2)
    speeds = rng.lognormal(0, 1, 200)
    areas = speeds / speeds.sum()
    cost = benchmark(peri_sum_cost, areas)
    assert cost >= peri_sum_lower_bound(areas) - 1e-9
