"""Shared utilities: seeded RNG management, ASCII tables, validation.

These helpers are deliberately dependency-light so every other subpackage
can import them without cycles.
"""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import format_table, format_series
from repro.util.ascii_plot import ascii_chart, figure4_chart
from repro.util.validation import (
    check_positive,
    check_positive_array,
    check_probability_vector,
    check_in_range,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "ascii_chart",
    "figure4_chart",
    "format_table",
    "format_series",
    "check_positive",
    "check_positive_array",
    "check_probability_vector",
    "check_in_range",
]
