"""Block-distribution strategies for the outer product (§4.1).

Three strategies over the ``N × N`` computational domain of
:math:`a^T \\times b`:

* :class:`HomogeneousBlocksStrategy` (``Comm_hom``) — §4.1.1: square
  chunks sized so the *slowest* worker gets exactly one; demand-driven
  assignment; communication counts each block's ``2D`` input with no
  reuse across blocks (MapReduce semantics).
* :class:`RefinedHomogeneousStrategy` (``Comm_hom/k``) — §4.3: shrink
  the block side by ``k = 1, 2, 3, …`` until the demand-driven load
  imbalance ``e`` drops to the threshold (1% in the paper).
* :class:`HeterogeneousBlocksStrategy` (``Comm_het``) — §4.1.2: one
  rectangle per worker from the PERI-SUM partitioner; communication is
  the scaled sum of half-perimeters.

All strategies return a :class:`StrategyResult` carrying the volume,
the ratio to the lower bound (Figure 4's y-axis) and the imbalance.
"""

from repro.blocks.metrics import StrategyResult, load_imbalance
from repro.blocks.homogeneous import HomogeneousBlocksStrategy
from repro.blocks.refined import RefinedHomogeneousStrategy
from repro.blocks.heterogeneous import HeterogeneousBlocksStrategy
from repro.blocks.footprint import (
    block_footprint_volume,
    naive_block_volume,
    assignment_footprints,
)
from repro.blocks.one_port import OnePortPlan, plan_het_one_port

__all__ = [
    "OnePortPlan",
    "plan_het_one_port",
    "StrategyResult",
    "load_imbalance",
    "HomogeneousBlocksStrategy",
    "RefinedHomogeneousStrategy",
    "HeterogeneousBlocksStrategy",
    "block_footprint_volume",
    "naive_block_volume",
    "assignment_footprints",
]
