"""Tests for repro.matmul.numeric — the algorithms really multiply."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matmul.layouts import BlockCyclicLayout, RectangleLayout
from repro.matmul.numeric import (
    mapreduce_matmul_reference,
    outer_product_matmul,
    partitioned_matmul,
)
from repro.partition.column_based import peri_sum_partition
from repro.partition.naive import grid_partition


def random_matrices(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, n)), rng.normal(size=(n, n))


class TestPartitionedMatmul:
    def test_grid_partition_exact(self):
        A, B = random_matrices(12)
        C = partitioned_matmul(A, B, grid_partition(4))
        assert np.allclose(C, A @ B)

    def test_heterogeneous_partition_exact(self):
        A, B = random_matrices(20, seed=1)
        part = peri_sum_partition([0.1, 0.2, 0.3, 0.4])
        C = partitioned_matmul(A, B, part)
        assert np.allclose(C, A @ B)

    @given(
        seed=st.integers(0, 1000),
        p=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=4, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_partitions(self, seed, p, n):
        rng = np.random.default_rng(seed)
        areas = rng.dirichlet(np.ones(p))
        A, B = random_matrices(n, seed=seed)
        part = peri_sum_partition(areas)
        assert np.allclose(partitioned_matmul(A, B, part), A @ B)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            partitioned_matmul(np.zeros((2, 3)), np.zeros((3, 3)), grid_partition(1))


class TestOuterProductMatmul:
    def test_rectangle_layout_exact(self):
        A, B = random_matrices(10, seed=2)
        layout = RectangleLayout(peri_sum_partition([0.5, 0.5]), n=10)
        assert np.allclose(outer_product_matmul(A, B, layout), A @ B)

    def test_block_cyclic_layout_exact(self):
        A, B = random_matrices(8, seed=3)
        layout = BlockCyclicLayout(n=8, p_rows=2, p_cols=2, block=2)
        assert np.allclose(outer_product_matmul(A, B, layout), A @ B)

    def test_order_mismatch_rejected(self):
        A, B = random_matrices(6)
        layout = BlockCyclicLayout(n=8, p_rows=2, p_cols=2)
        with pytest.raises(ValueError):
            outer_product_matmul(A, B, layout)


class TestMapReduceReference:
    def test_matches_numpy(self):
        A, B = random_matrices(7, seed=4)
        assert np.allclose(mapreduce_matmul_reference(A, B), A @ B)

    def test_identity(self):
        eye = np.eye(5)
        M = np.arange(25.0).reshape(5, 5)
        assert np.allclose(mapreduce_matmul_reference(eye, M), M)
