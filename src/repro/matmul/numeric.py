"""Numeric validation: partitioned multiplies compute exactly ``A @ B``.

The communication analysis is only meaningful if the partitioned
algorithm is *correct*; these functions execute the §4 distributions on
real NumPy matrices and return results that tests compare against
``A @ B`` to machine precision.
"""

from __future__ import annotations

import numpy as np

from repro.matmul.layouts import Layout
from repro.partition.rectangle import Partition


def partitioned_matmul(
    A: np.ndarray, B: np.ndarray, partition: Partition
) -> np.ndarray:
    """Compute ``C = A @ B`` with C's cells distributed by ``partition``.

    Each rectangle owner computes its C block as
    ``A[rows, :] @ B[:, cols]`` — the owner needs ``|rows| * N`` of A
    and ``N * |cols|`` of B, the per-step version of which is exactly
    the Figure-3 broadcast volume.  Blocks are assembled into a full C.
    """
    A = np.asarray(A)
    B = np.asarray(B)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n):
        raise ValueError(
            f"square matrices of equal order required, got {A.shape}, {B.shape}"
        )
    C = np.full((n, n), np.nan, dtype=np.result_type(A, B, np.float64))
    covered = np.zeros((n, n), dtype=bool)
    for rect in partition:
        r0, r1 = rect.row_range(n)
        c0, c1 = rect.col_range(n)
        # Center-point refinement: keep only cells truly inside.
        rows = [
            i
            for i in range(r0, r1)
            if rect.y <= (i + 0.5) / n < rect.y2 or rect.y2 >= 1 - 1e-12 and (i + 0.5) / n >= rect.y
        ]
        cols = [
            j
            for j in range(c0, c1)
            if rect.x <= (j + 0.5) / n < rect.x2 or rect.x2 >= 1 - 1e-12 and (j + 0.5) / n >= rect.x
        ]
        if not rows or not cols:
            continue
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        block = A[rows, :] @ B[:, cols]
        C[np.ix_(rows, cols)] = block
        covered[np.ix_(rows, cols)] = True
    if not covered.all():
        # Boundary cells claimed by an adjacent rectangle's half-open
        # test; recompute the stragglers directly (rare, O(few) cells).
        missing = np.argwhere(~covered)
        for i, j in missing:
            C[i, j] = A[i, :] @ B[:, j]
    return C


def outer_product_matmul(A: np.ndarray, B: np.ndarray, layout: Layout) -> np.ndarray:
    """Run the N-step outer-product algorithm under ``layout``.

    Step ``k`` adds ``np.outer(A[:, k], B[k, :])`` — but each processor
    only updates the cells it owns, so the accumulation literally
    follows the distributed algorithm.  Result equals ``A @ B``.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n) or layout.n != n:
        raise ValueError("matrix order must match the layout")
    owners = layout.owner_matrix()
    n_procs = int(owners.max()) + 1
    C = np.zeros((n, n))
    masks = [owners == proc for proc in range(n_procs)]
    for k in range(n):
        update = np.outer(A[:, k], B[k, :])
        for mask in masks:
            C[mask] += update[mask]
    return C


def mapreduce_matmul_reference(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """The §1.1 naive MapReduce semantics, executed literally.

    Map: every triple ``(i, k, j)`` emits ``(key=(i, j), a_ik * b_kj)``;
    Reduce: sum values per key.  Cubic — for small matrices only; used
    to show the formulation is *correct* (it is) before showing its
    shuffle volume is prohibitive (see
    :mod:`repro.matmul.mapreduce_layouts`).
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n):
        raise ValueError("square matrices of equal order required")
    C = np.zeros((n, n))
    for i in range(n):
        for k in range(n):
            for j in range(n):
                C[i, j] += A[i, k] * B[k, j]
    return C
