"""A mini MapReduce engine with shuffle-volume metering.

The paper motivates its analysis with MapReduce ([23, 26]); this package
implements an executable (single-process) MapReduce so the volume claims
can be *measured* on real jobs rather than asserted:

* :mod:`repro.mapreduce.engine` — map → combine → shuffle → reduce over
  key–value pairs, pluggable partitioner, full metrics;
* :mod:`repro.mapreduce.scheduler` — demand-driven placement of map
  tasks on heterogeneous workers (the Hadoop model §4 describes);
* :mod:`repro.mapreduce.jobs` — word count (linear baseline), the naive
  all-pairs matmul, HAMA-style block matmul and the paper's partitioned
  outer product.
"""

from repro.mapreduce.engine import (
    MapReduceEngine,
    MapReduceJob,
    MapReduceMetrics,
    hash_partitioner,
)
from repro.mapreduce.jobs import (
    word_count_job,
    naive_matmul_job,
    block_matmul_job,
    outer_product_job,
)
from repro.mapreduce.scheduler import schedule_map_tasks
from repro.mapreduce.chained import (
    ChainResult,
    run_chain,
    two_pass_matmul,
)

__all__ = [
    "ChainResult",
    "run_chain",
    "two_pass_matmul",
    "MapReduceEngine",
    "MapReduceJob",
    "MapReduceMetrics",
    "hash_partitioner",
    "word_count_job",
    "naive_matmul_job",
    "block_matmul_job",
    "outer_product_job",
    "schedule_map_tasks",
]
