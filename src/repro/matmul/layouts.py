"""Processor layouts over the ``N × N`` matrix index space.

A *layout* assigns every matrix cell ``(i, j)`` to a processor; A, B and
C share the layout (§4.2: "all 3 matrices share the same layout").  Two
families:

* :class:`RectangleLayout` — each processor owns one contiguous
  rectangle (from :mod:`repro.partition`); the heterogeneity-aware
  choice.
* :class:`BlockCyclicLayout` — a ``P_r × P_c`` processor grid with
  blocks dealt cyclically (the ScaLAPACK / MapReduce default); with a
  homogeneous grid this is the classical virtualised layout the paper
  describes ("blocks are scattered in a cyclic fashion along both grid
  dimensions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.rectangle import Partition
from repro.util.validation import check_integer


class Layout:
    """Interface: map cells to owners, report per-owner row/col coverage."""

    n: int
    n_procs: int

    def owner_of(self, i: int, j: int) -> int:
        raise NotImplementedError

    def owner_matrix(self) -> np.ndarray:
        """Dense ``n × n`` int matrix of owners (test/debug helper)."""
        out = np.empty((self.n, self.n), dtype=int)
        for i in range(self.n):
            for j in range(self.n):
                out[i, j] = self.owner_of(i, j)
        return out

    def rows_of(self, proc: int) -> np.ndarray:
        """Sorted distinct row indices owned (any column) by ``proc``."""
        raise NotImplementedError

    def cols_of(self, proc: int) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class RectangleLayout(Layout):
    """One rectangle per processor, scaled from a unit-square partition.

    The unit square maps onto the index grid: cell ``(i, j)`` belongs to
    the rectangle containing the point
    ``((j + 0.5)/n, (i + 0.5)/n)`` (x = columns, y = rows).  Rectangles
    tile the square, so ownership is total; cells are resolved once and
    cached as a dense matrix for ``n`` up to a few thousand.
    """

    partition: Partition
    n: int

    def __post_init__(self) -> None:
        check_integer(self.n, "n", minimum=1)
        owners = np.full((self.n, self.n), -1, dtype=int)
        for rect in self.partition:
            r0, r1 = rect.row_range(self.n)
            c0, c1 = rect.col_range(self.n)
            # Center-point test refines the (possibly overlapping)
            # integer ranges so each cell gets exactly one owner.
            for i in range(r0, r1):
                y = (i + 0.5) / self.n
                if not (rect.y <= y < rect.y2 or (rect.y2 >= 1.0 - 1e-12 and y >= rect.y)):
                    continue
                for j in range(c0, c1):
                    x = (j + 0.5) / self.n
                    if rect.x <= x < rect.x2 or (rect.x2 >= 1.0 - 1e-12 and x >= rect.x):
                        owners[i, j] = rect.owner
        if np.any(owners < 0):
            missing = np.argwhere(owners < 0)[:5]
            raise ValueError(
                f"layout leaves cells unowned (e.g. {missing.tolist()}); "
                "partition does not tile the unit square"
            )
        object.__setattr__(self, "_owners", owners)
        object.__setattr__(
            self, "n_procs", int(max(r.owner for r in self.partition)) + 1
        )

    def owner_of(self, i: int, j: int) -> int:
        return int(self._owners[i, j])

    def owner_matrix(self) -> np.ndarray:
        return self._owners.copy()

    def rows_of(self, proc: int) -> np.ndarray:
        mask = (self._owners == proc).any(axis=1)
        return np.flatnonzero(mask)

    def cols_of(self, proc: int) -> np.ndarray:
        mask = (self._owners == proc).any(axis=0)
        return np.flatnonzero(mask)


@dataclass(frozen=True)
class BlockCyclicLayout(Layout):
    """``P_r × P_c`` grid, blocks of side ``block`` dealt cyclically."""

    n: int
    p_rows: int
    p_cols: int
    block: int = 1

    def __post_init__(self) -> None:
        check_integer(self.n, "n", minimum=1)
        check_integer(self.p_rows, "p_rows", minimum=1)
        check_integer(self.p_cols, "p_cols", minimum=1)
        check_integer(self.block, "block", minimum=1)
        object.__setattr__(self, "n_procs", self.p_rows * self.p_cols)

    def owner_of(self, i: int, j: int) -> int:
        if not (0 <= i < self.n and 0 <= j < self.n):
            raise IndexError(f"cell ({i}, {j}) outside {self.n}x{self.n}")
        pr = (i // self.block) % self.p_rows
        pc = (j // self.block) % self.p_cols
        return pr * self.p_cols + pc

    def rows_of(self, proc: int) -> np.ndarray:
        pr = proc // self.p_cols
        rows = [
            i
            for i in range(self.n)
            if (i // self.block) % self.p_rows == pr
        ]
        return np.asarray(rows, dtype=int)

    def cols_of(self, proc: int) -> np.ndarray:
        pc = proc % self.p_cols
        cols = [
            j
            for j in range(self.n)
            if (j // self.block) % self.p_cols == pc
        ]
        return np.asarray(cols, dtype=int)
