"""Tests for repro.matmul.layouts."""

import numpy as np
import pytest

from repro.matmul.layouts import BlockCyclicLayout, RectangleLayout
from repro.partition.column_based import peri_sum_partition
from repro.partition.naive import grid_partition


class TestRectangleLayout:
    def test_total_ownership(self):
        part = peri_sum_partition([0.3, 0.3, 0.4])
        layout = RectangleLayout(part, n=12)
        owners = layout.owner_matrix()
        assert set(np.unique(owners)) <= {0, 1, 2}
        assert np.all(owners >= 0)

    def test_cell_counts_approximate_areas(self):
        part = peri_sum_partition([0.25, 0.75])
        layout = RectangleLayout(part, n=40)
        owners = layout.owner_matrix()
        frac = np.mean(owners == 1)
        assert frac == pytest.approx(0.75, abs=0.05)

    def test_rows_cols_of_grid(self):
        part = grid_partition(4)  # 2x2
        layout = RectangleLayout(part, n=8)
        for proc in range(4):
            assert layout.rows_of(proc).size == 4
            assert layout.cols_of(proc).size == 4

    def test_rectangle_cells_contiguous(self):
        part = peri_sum_partition([0.5, 0.5])
        layout = RectangleLayout(part, n=10)
        for proc in range(2):
            rows = layout.rows_of(proc)
            assert np.array_equal(rows, np.arange(rows.min(), rows.max() + 1))

    def test_owner_of_matches_matrix(self):
        part = grid_partition(4)
        layout = RectangleLayout(part, n=6)
        owners = layout.owner_matrix()
        for i in range(6):
            for j in range(6):
                assert layout.owner_of(i, j) == owners[i, j]


class TestBlockCyclicLayout:
    def test_cyclic_pattern(self):
        layout = BlockCyclicLayout(n=4, p_rows=2, p_cols=2, block=1)
        owners = layout.owner_matrix()
        expected = np.array(
            [[0, 1, 0, 1], [2, 3, 2, 3], [0, 1, 0, 1], [2, 3, 2, 3]]
        )
        assert np.array_equal(owners, expected)

    def test_block_size_respected(self):
        layout = BlockCyclicLayout(n=4, p_rows=2, p_cols=2, block=2)
        owners = layout.owner_matrix()
        assert np.all(owners[:2, :2] == 0)
        assert np.all(owners[2:, 2:] == 3)

    def test_rows_of_every_proc_touches_many_rows(self):
        """Block-cyclic virtualisation: every processor row-set is ~n/p_rows."""
        layout = BlockCyclicLayout(n=12, p_rows=3, p_cols=2, block=1)
        for proc in range(6):
            assert layout.rows_of(proc).size == 4
            assert layout.cols_of(proc).size == 6

    def test_out_of_bounds_rejected(self):
        layout = BlockCyclicLayout(n=4, p_rows=2, p_cols=2)
        with pytest.raises(IndexError):
            layout.owner_of(4, 0)

    def test_n_procs(self):
        assert BlockCyclicLayout(n=4, p_rows=2, p_cols=3).n_procs == 6
