"""ClusterCoordinator against in-process workers: the acceptance contract.

* the coordinator is a drop-in plan server: remote sessions pointed at
  it reproduce local planning bit-identically (rtol=1e-12), on both
  wire profiles, scalar and vectorised;
* killing a worker mid-pool transparently reroutes to survivors with
  identical results;
* consistent-hash keeps plans and their cache entries on one worker;
* admission control answers 429 + Retry-After; no workers answers 503;
* worker protocol errors are relayed, not retried;
* /metrics aggregates workers into one cluster histogram.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import registry
from repro.cluster.coordinator import ClusterCoordinator, NoWorkersError
from repro.core.cache import plan_cache_key
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.platform.star import StarPlatform
from repro.service.client import PlanServiceError, ServiceClient
from repro.service.server import PlanServer


@pytest.fixture()
def platform():
    return StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])


@pytest.fixture()
def workers():
    servers = [PlanServer(port=0, cache="memory").start() for _ in range(3)]
    yield servers
    for server in servers:
        server.close()


@pytest.fixture()
def coordinator(workers):
    coord = ClusterCoordinator(
        port=0,
        workers=[w.url for w in workers],
        heartbeat_interval=0.2,
        max_missed=2,
    )
    with coord:
        yield coord


def _requests(platform, count, strategy="het"):
    return [
        PlanRequest(platform=platform, N=1000.0 + i, strategy=strategy)
        for i in range(count)
    ]


def assert_same_results(actual, expected):
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert a.request == b.request
        np.testing.assert_allclose(
            a.plan.finish_times, b.plan.finish_times, rtol=1e-12
        )
        np.testing.assert_allclose(
            a.plan.makespan, b.plan.makespan, rtol=1e-12
        )


class TestFrontDoor:
    def test_healthz_shape(self, coordinator):
        health = ServiceClient(coordinator.url).healthz()
        assert health["status"] == "ok"
        assert health["role"] == "coordinator"
        assert health["workers_alive"] == 3
        assert health["workers_total"] == 3
        assert "binary-v2" in health["wire_profiles"]

    def test_status_payload(self, coordinator):
        status = json.loads(
            urllib.request.urlopen(
                f"{coordinator.url}/cluster/status", timeout=5
            )
            .read()
            .decode()
        )
        assert status["dispatch"] == "least-loaded"
        assert status["pool"]["alive"] == 3
        assert len(status["pool"]["workers"]) == 3

    def test_single_plan_roundtrip(self, coordinator, platform):
        request = PlanRequest(platform=platform, N=1234.0, strategy="het")
        via_cluster = ServiceClient(coordinator.url).plan(request)
        with PlannerSession(cache=False) as session:
            local = session.plan(request)
        assert_same_results([via_cluster], [local])

    def test_unknown_endpoint_404(self, coordinator):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{coordinator.url}/nope", timeout=5)
        assert err.value.code == 404


class TestEquivalence:
    @pytest.mark.parametrize("profile", ["pickle-v1", "binary-v2"])
    def test_remote_session_matches_local(
        self, coordinator, platform, profile
    ):
        requests = _requests(platform, 10)
        address = f"{coordinator.host}:{coordinator.port}"
        from repro.service.client import RemoteBackend

        backend = RemoteBackend(address, wire_profile=profile)
        with PlannerSession(backend=backend, cache=False) as remote:
            actual = remote.plan_batch(requests)
        with PlannerSession(cache=False) as local:
            expected = local.plan_batch(requests)
        assert_same_results(actual, expected)

    def test_vectorized_sweep_shards_and_matches(
        self, coordinator, workers, platform
    ):
        # a vectorised client fuses the sweep into one VectorGroup;
        # the coordinator must shard it across workers (scale-out!)
        # and reassemble bit-identically
        requests = _requests(platform, 12)
        address = f"{coordinator.host}:{coordinator.port}"
        with PlannerSession(
            backend=f"remote:{address}", cache=False, vectorize=True
        ) as remote:
            actual = remote.plan_batch(requests)
        with PlannerSession(cache=False, vectorize=False) as local:
            expected = local.plan_batch(requests)
        assert_same_results(actual, expected)
        planned_by = [
            w for w in workers if w.metrics.payload()["endpoints"]
        ]
        assert len(planned_by) > 1, "sweep was not sharded across workers"

    def test_mixed_strategies_batch(self, coordinator, platform):
        requests = _requests(platform, 4, "het") + _requests(
            platform, 4, "hom"
        )
        address = f"{coordinator.host}:{coordinator.port}"
        with PlannerSession(backend=f"remote:{address}", cache=False) as remote:
            actual = remote.plan_batch(requests)
        with PlannerSession(cache=False) as local:
            expected = local.plan_batch(requests)
        assert_same_results(actual, expected)

    def test_empty_batch(self, coordinator):
        assert ServiceClient(coordinator.url).plan_items([]) == []


class TestReroute:
    def test_worker_death_mid_pool_reroutes(
        self, coordinator, workers, platform
    ):
        requests = _requests(platform, 8)
        address = f"{coordinator.host}:{coordinator.port}"
        with PlannerSession(cache=False) as local:
            expected = local.plan_batch(requests)
        with PlannerSession(backend=f"remote:{address}", cache=False) as remote:
            assert_same_results(remote.plan_batch(requests), expected)
            workers[0].close()  # dies without deregistering
            assert_same_results(remote.plan_batch(requests), expected)
        snapshot = coordinator.pool.snapshot()
        dead = [w for w in snapshot["workers"] if not w["alive"]]
        assert len(dead) == 1
        assert "unreachable" in dead[0]["reason"]

    def test_all_workers_dead_is_503(self, coordinator, workers, platform):
        for worker in workers:
            worker.close()
        request = PlanRequest(platform=platform, N=10.0, strategy="het")
        client = ServiceClient(coordinator.url, retries=0)
        with pytest.raises(PlanServiceError) as err:
            client.plan(request)
        assert err.value.code == 503

    def test_heartbeat_monitor_marks_dead_without_traffic(
        self, coordinator, workers
    ):
        import time

        workers[1].close()
        deadline = time.time() + 10
        while time.time() < deadline:
            if len(coordinator.pool.alive()) == 2:
                break
            time.sleep(0.05)
        assert len(coordinator.pool.alive()) == 2

    def test_worker_rejoins_after_heartbeat(self, coordinator, workers):
        import time

        url = workers[2].url
        coordinator.pool.mark_dead(url, "test")
        deadline = time.time() + 10
        while time.time() < deadline:
            if len(coordinator.pool.alive()) == 3:
                break
            time.sleep(0.05)
        assert len(coordinator.pool.alive()) == 3  # pull probe revived it


class TestCacheRouting:
    def test_consistent_hash_cache_stickiness(self, workers, platform):
        coord = ClusterCoordinator(
            port=0,
            workers=[w.url for w in workers],
            dispatch="consistent-hash",
            heartbeat_interval=5.0,
        )
        with coord:
            client = ServiceClient(coord.url)
            request = PlanRequest(
                platform=platform, N=777.0, strategy="het"
            )
            first = client.plan(request)
            second = client.plan(request)  # same worker → warm hit
            assert_same_results([second], [first])
            total_hits = sum(
                w.session.cache_stats().hits for w in workers
            )
            assert total_hits == 1
            # the explicit cache view routes to the same worker
            factory = registry.get("strategy", "het")
            key = plan_cache_key(request, factory)
            cached = client.cache_get(key)
            assert cached is not None
            assert_same_results([cached], [first])

    def test_cache_put_then_get_roundtrip(self, coordinator, platform):
        client = ServiceClient(coordinator.url)
        request = PlanRequest(platform=platform, N=55.0, strategy="het")
        result = client.plan(request)
        client.cache_put(("custom", "key"), result)
        fetched = client.cache_get(("custom", "key"))
        assert_same_results([fetched], [result])

    def test_cache_clear_broadcasts(self, coordinator, workers, platform):
        client = ServiceClient(coordinator.url)
        for n in (10.0, 20.0, 30.0):
            client.plan(
                PlanRequest(platform=platform, N=n, strategy="het")
            )
        assert sum(len(w.store()) for w in workers) == 3
        client.cache_clear()
        assert sum(len(w.store()) for w in workers) == 0

    def test_cache_stats_aggregates(self, coordinator, workers, platform):
        client = ServiceClient(coordinator.url)
        request = PlanRequest(platform=platform, N=42.0, strategy="het")
        client.plan(request)
        client.plan(request)
        stats = client.cache_stats()
        assert stats["cache"] == "on"
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert len(stats["workers"]) == 3


class TestAdmissionAndErrors:
    def test_admission_limit_zero_rejects_with_429(self, workers, platform):
        coord = ClusterCoordinator(
            port=0,
            workers=[w.url for w in workers],
            max_inflight=0,
            retry_after=0.25,
            heartbeat_interval=5.0,
        )
        with coord:
            client = ServiceClient(coord.url, retries=0)
            request = PlanRequest(
                platform=platform, N=10.0, strategy="het"
            )
            with pytest.raises(PlanServiceError) as err:
                client.plan(request)
            assert err.value.code == 429
            assert "over capacity" in str(err.value)

    def test_429_carries_retry_after_header(self, workers):
        coord = ClusterCoordinator(
            port=0,
            workers=[w.url for w in workers],
            max_inflight=0,
            retry_after=0.25,
            heartbeat_interval=5.0,
        )
        with coord:
            from repro.service import wire

            body = wire.pack_as([], wire.PROFILE_BINARY)
            request = urllib.request.Request(
                f"{coord.url}/plan_batch",
                data=body,
                headers={wire.PROFILE_HEADER: wire.PROFILE_BINARY},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=5)
            assert err.value.code == 429
            assert err.value.headers.get("Retry-After") == "0.25"

    def test_worker_protocol_error_relayed_not_retried(
        self, coordinator, platform
    ):
        client = ServiceClient(coordinator.url, retries=0)
        request = PlanRequest(
            platform=platform, N=10.0, strategy="no-such-strategy"
        )
        with pytest.raises(PlanServiceError) as err:
            client.plan(request)
        assert err.value.code == 400
        assert "no-such-strategy" in str(err.value)
        # nothing was marked dead: the worker answered
        assert len(coordinator.pool.alive()) == 3

    def test_malformed_batch_is_400(self, coordinator):
        client = ServiceClient(coordinator.url, retries=0)
        with pytest.raises(PlanServiceError) as err:
            client.post("/plan_batch", "not a list")
        assert err.value.code == 400


class TestMetricsAggregation:
    def test_metrics_payload_merges_workers(
        self, coordinator, workers, platform
    ):
        client = ServiceClient(coordinator.url)
        for n in (1.0, 2.0, 3.0, 4.0):
            client.plan(PlanRequest(platform=platform, N=n, strategy="het"))
        payload = client.get_json("/metrics")
        assert payload["role"] == "coordinator"
        assert payload["coordinator"]["endpoints"]["/plan"]["count"] == 4
        cluster_batches = payload["cluster"]["endpoints"]["/plan_batch"]
        assert cluster_batches["count"] == 4
        assert cluster_batches["errors"] == 0
        assert len(payload["workers"]) == 3

    def test_registration_endpoints(self, coordinator):
        spare = PlanServer(port=0).start()
        try:
            body = json.dumps({"url": spare.url}).encode()
            request = urllib.request.Request(
                f"{coordinator.url}/workers/register",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            reply = json.loads(
                urllib.request.urlopen(request, timeout=5).read().decode()
            )
            assert reply["registered"] is True
            assert coordinator.pool.snapshot()["total"] == 4
            request = urllib.request.Request(
                f"{coordinator.url}/workers/heartbeat",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            reply = json.loads(
                urllib.request.urlopen(request, timeout=5).read().decode()
            )
            assert reply["alive"] is True
        finally:
            spare.close()

    def test_bad_registration_is_400(self, coordinator):
        request = urllib.request.Request(
            f"{coordinator.url}/workers/register",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 400


class TestValidation:
    def test_bad_wire_mode(self):
        with pytest.raises(ValueError):
            ClusterCoordinator(wire_mode="pickle")

    def test_negative_reroutes(self):
        with pytest.raises(ValueError):
            ClusterCoordinator(max_reroutes=-1)

    def test_no_workers_at_all(self, platform):
        with ClusterCoordinator(port=0, heartbeat_interval=5.0) as coord:
            with pytest.raises(NoWorkersError):
                coord.plan_items(
                    [PlanRequest(platform=platform, N=1.0, strategy="het")]
                )
