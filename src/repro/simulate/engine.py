"""A small but real discrete-event simulation engine.

Events carry a callback; the simulator pops them in (time, sequence)
order so simultaneous events run in scheduling order (deterministic).
Handlers may schedule further events.  This is intentionally minimal —
the library's simulations are compute/communication timelines, not
process-interaction models — but it is a genuine engine with an event
log, stop conditions and time-travel protection, and the master–worker
and demand-driven simulations are built on it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

Handler = Callable[["Simulator"], None]


@dataclass(order=True)
class Event:
    """A scheduled occurrence: fires ``handler`` at ``time``.

    Ordering is (time, seq); ``seq`` is a monotone tie-breaker assigned
    by the simulator, so FIFO among simultaneous events.
    """

    time: float
    seq: int
    kind: str = field(compare=False, default="event")
    handler: Optional[Handler] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class Simulator:
    """Event-queue simulator with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        #: (time, kind) tuples of every fired event, for assertions
        self.log: List[tuple[float, str]] = []
        self._running = False

    def schedule(
        self, delay: float, handler: Handler, kind: str = "event"
    ) -> Event:
        """Schedule ``handler`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, handler, kind=kind)

    def schedule_at(
        self, time: float, handler: Handler, kind: str = "event"
    ) -> Event:
        """Schedule ``handler`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        ev = Event(time=time, seq=next(self._counter), kind=kind, handler=handler)
        heapq.heappush(self._queue, ev)
        return ev

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (and not cancelled) events."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def next_event_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` if drained.

        After ``run(until=t)`` stops early this is the resume point —
        pending events stay queryable and a later ``run()`` continues
        from exactly where the horizon cut the timeline.
        """
        return min(
            (ev.time for ev in self._queue if not ev.cancelled),
            default=None,
        )

    def reset(self) -> None:
        """Return the engine to a pristine state for reuse.

        Clears the queue, the log and the clock (and restarts the
        tie-break counter) so one ``Simulator`` can be re-seeded and
        re-run across registered simulation runs without
        re-instantiating.  Refuses to reset mid-``run``.
        """
        if self._running:
            raise RuntimeError("cannot reset while the simulator is running")
        self._queue.clear()
        self._counter = itertools.count()
        self.now = 0.0
        self.log.clear()

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self.now = ev.time
            self.log.append((ev.time, ev.kind))
            if ev.handler is not None:
                ev.handler(self)
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Drain the event queue (optionally stopping at time ``until``).

        Returns the final simulation time.
        """
        if self._running:
            raise RuntimeError("simulator is not re-entrant")
        self._running = True
        try:
            while self._queue:
                nxt = self._queue[0]
                if nxt.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and nxt.time > until:
                    self.now = until
                    break
                self.step()
        finally:
            self._running = False
        return self.now
