"""Experiment harness: one module per paper table/figure.

Every experiment returns a structured result with a ``render()`` method
producing the ASCII table the benchmarks print; see DESIGN.md's
per-experiment index for the mapping to paper figures.
"""

from repro.experiments.runner import SweepResult, sweep_mean_std
from repro.experiments.figure4 import (
    Figure4Point,
    Figure4Result,
    run_figure4,
    run_figure4_point,
)
from repro.experiments.section2 import run_section2, Section2Result
from repro.experiments.section3 import run_section3, Section3Result
from repro.experiments.rho import run_rho_experiment, RhoResult
from repro.experiments.footprint import run_footprint_experiment, FootprintResult
from repro.experiments.report import build_report, Report
from repro.experiments.stats import (
    summarize,
    significantly_greater,
    paired_speedup_summary,
    Summary,
)

__all__ = [
    "run_footprint_experiment",
    "FootprintResult",
    "build_report",
    "Report",
    "summarize",
    "significantly_greater",
    "paired_speedup_summary",
    "Summary",
    "SweepResult",
    "sweep_mean_std",
    "Figure4Point",
    "Figure4Result",
    "run_figure4",
    "run_figure4_point",
    "run_section2",
    "Section2Result",
    "run_section3",
    "Section3Result",
    "run_rho_experiment",
    "RhoResult",
]
