"""Launch, monitor, and tear down a local cluster: ``repro cluster``.

:class:`LocalCluster` spawns N ordinary ``repro serve`` worker
processes on ephemeral ports, fronts them with an in-process
:class:`~repro.cluster.coordinator.ClusterCoordinator`, and knows how
to kill either side — the machinery behind ``repro cluster up``, the
chaos tests, and ``benchmarks/bench_cluster.py``.

Workers are real subprocesses (not threads) on purpose: killing one
with SIGKILL exercises the same mid-batch transport failure a crashed
remote replica produces, and N workers use N CPUs where the host has
them.  Each worker's port is read back from its startup banner
(``repro plan server listening on http://...``), so nothing races on
port allocation.

A JSON *state file* (``--state``, default ``~/.repro-cluster.json``)
records the coordinator URL and every PID, which is what lets
``repro cluster status`` and ``repro cluster down`` find a cluster
started by an earlier ``repro cluster up`` in another terminal.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.cluster.coordinator import ClusterCoordinator
from repro.obs import SpanRecorder

#: what `repro serve` prints once its socket is bound
_BANNER_RE = re.compile(r"repro plan server listening on (http://\S+)")


def default_state_path() -> str:
    """Where ``repro cluster`` records the running cluster by default."""
    return os.path.join(os.path.expanduser("~"), ".repro-cluster.json")


def write_state(path: str, state: Dict[str, Any]) -> None:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(state, indent=2, sort_keys=True) + "\n")


def read_state(path: str) -> Dict[str, Any]:
    """Load a cluster state file; ``FileNotFoundError`` if none exists."""
    return json.loads(Path(path).read_text())


def remove_state(path: str) -> None:
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign pid, still alive
        return True
    return True


class _Worker:
    """One spawned ``repro serve`` replica: process + banner + log tail."""

    def __init__(self, index: int, proc: subprocess.Popen) -> None:
        self.index = index
        self.proc = proc
        self.url: Optional[str] = None
        self.lines: deque = deque(maxlen=50)
        self._banner_seen = threading.Event()
        self._reader = threading.Thread(
            target=self._drain, name=f"repro-worker-{index}-out", daemon=True
        )
        self._reader.start()

    def _drain(self) -> None:
        # drain for the process lifetime so the pipe never blocks it;
        # the first banner line carries the ephemeral port back
        stream = self.proc.stdout
        assert stream is not None
        for raw in stream:
            line = raw.decode("utf-8", errors="replace").rstrip()
            self.lines.append(line)
            if self.url is None:
                match = _BANNER_RE.search(line)
                if match:
                    self.url = match.group(1)
                    self._banner_seen.set()
        self._banner_seen.set()  # EOF: stop any waiter either way

    def wait_ready(self, timeout: float) -> str:
        deadline = time.monotonic() + timeout
        while not self._banner_seen.wait(timeout=0.1):
            if self.proc.poll() is not None:
                break
            if time.monotonic() > deadline:
                break
        if self.url is None:
            tail = "\n  ".join(self.lines) or "(no output)"
            raise RuntimeError(
                f"worker {self.index} (pid {self.proc.pid}) did not "
                f"report a listen address within {timeout:g}s; output:\n"
                f"  {tail}"
            )
        return self.url

    @property
    def pid(self) -> int:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.poll() is None


class LocalCluster:
    """N local ``repro serve`` replicas behind one coordinator.

    ``cache`` is any store spec a worker accepts; a literal ``"{i}"``
    inside it is replaced by the worker index, so
    ``cache="sqlite:/tmp/plans-{i}.db"`` gives each replica its own
    durable store (the natural partner of ``dispatch="consistent-hash"``).
    ``worker_max_inflight`` forwards ``--max-inflight`` to each
    replica; ``max_inflight`` bounds the coordinator itself.

    Use as a context manager, or :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        n: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "serial",
        jobs: int | None = None,
        cache: "str | None" = "memory",
        vectorize: bool = True,
        wire: str = "auto",
        dispatch: str = "least-loaded",
        max_inflight: int | None = None,
        worker_max_inflight: int | None = None,
        heartbeat_interval: float = 0.5,
        max_missed: int = 2,
        max_reroutes: int = 3,
        state_path: str | None = None,
        startup_timeout: float = 30.0,
        access_log: Any = None,
        trace: str | None = None,
        span_recorder: SpanRecorder | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"a cluster needs >= 1 worker, got {n}")
        self.n = int(n)
        self.host = host
        self.port = int(port)
        self.backend = backend
        self.jobs = jobs
        self.cache = cache
        self.vectorize = vectorize
        self.wire = wire
        self.dispatch = dispatch
        self.max_inflight = max_inflight
        self.worker_max_inflight = worker_max_inflight
        self.heartbeat_interval = float(heartbeat_interval)
        self.max_missed = int(max_missed)
        self.max_reroutes = int(max_reroutes)
        self.state_path = state_path
        self.startup_timeout = float(startup_timeout)
        #: optional AccessLog the coordinator writes front-door lines to
        self.access_log = access_log
        #: span-file base path: the coordinator appends JSONL here and
        #: worker i gets ``--trace <trace>.w<i>``, so one ``repro trace
        #: <trace>*`` glob assembles whole cluster-crossing traces
        self.trace = trace
        #: in-process recorder for the coordinator (tests; wins over a
        #: file recorder derived from ``trace``)
        self.span_recorder = span_recorder
        self.workers: List[_Worker] = []
        self.coordinator: Optional[ClusterCoordinator] = None
        self._closed = False

    # -- spawning ---------------------------------------------------------

    def _worker_command(self, index: int) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--backend",
            self.backend,
            "--wire",
            self.wire,
        ]
        if self.jobs is not None:
            command += ["--jobs", str(self.jobs)]
        if self.cache in (None, "off"):
            command.append("--no-cache")
        else:
            command += ["--cache", str(self.cache).replace("{i}", str(index))]
        if not self.vectorize:
            command.append("--no-vectorize")
        if self.worker_max_inflight is not None:
            command += ["--max-inflight", str(self.worker_max_inflight)]
        if self.trace:
            command += ["--trace", f"{self.trace}.w{index}"]
        return command

    def _spawn_env(self) -> Dict[str, str]:
        env = os.environ.copy()
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
        )
        return env

    def start(self) -> "LocalCluster":
        if self.coordinator is not None:
            return self
        env = self._spawn_env()
        try:
            for index in range(self.n):
                proc = subprocess.Popen(
                    self._worker_command(index),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    env=env,
                )
                self.workers.append(_Worker(index, proc))
            urls = [
                worker.wait_ready(self.startup_timeout)
                for worker in self.workers
            ]
            recorder = self.span_recorder
            if recorder is None and self.trace:
                recorder = SpanRecorder.open(
                    self.trace, service="coordinator"
                )
            self.coordinator = ClusterCoordinator(
                host=self.host,
                port=self.port,
                workers=urls,
                dispatch=self.dispatch,
                max_inflight=self.max_inflight,
                heartbeat_interval=self.heartbeat_interval,
                max_missed=self.max_missed,
                max_reroutes=self.max_reroutes,
                wire_mode="safe" if self.wire == "safe" else "auto",
                access_log=self.access_log,
                span_recorder=recorder,
            )
            self.coordinator.start()
        except Exception:
            self.close()
            raise
        if self.state_path:
            write_state(self.state_path, self.state())
        return self

    # -- state ------------------------------------------------------------

    @property
    def url(self) -> str:
        if self.coordinator is None:
            raise RuntimeError("cluster not started")
        return self.coordinator.url

    def worker_urls(self) -> List[str]:
        return [w.url for w in self.workers if w.url]

    def state(self) -> Dict[str, Any]:
        """The JSON the state file records (`repro cluster status/down`)."""
        return {
            "coordinator": {"url": self.url, "pid": os.getpid()},
            "workers": [
                {"index": w.index, "url": w.url, "pid": w.pid}
                for w in self.workers
            ],
            "dispatch": self.dispatch,
            "created_at": time.time(),
        }

    # -- chaos ------------------------------------------------------------

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Kill one replica (default SIGKILL — no goodbye, like a crash)."""
        worker = self.workers[index]
        pid = worker.pid
        try:
            os.kill(pid, sig)
        except ProcessLookupError:
            pass
        return pid

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.coordinator is not None:
            self.coordinator.close()
        for worker in self.workers:
            if worker.alive():
                worker.proc.terminate()
        deadline = time.monotonic() + 5
        for worker in self.workers:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                worker.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait(timeout=5)
        if self.state_path:
            remove_state(self.state_path)

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# -- talking to an already-running cluster (status / down) ----------------


def _get_json(url: str, timeout: float = 5.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _post_json(url: str, timeout: float = 5.0) -> dict:
    request = urllib.request.Request(url, data=b"", method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def cluster_status(coordinator_url: str, timeout: float = 5.0) -> dict:
    """GET ``/cluster/status`` from a running coordinator."""
    return _get_json(f"{coordinator_url.rstrip('/')}/cluster/status", timeout)


def cluster_metrics(coordinator_url: str, timeout: float = 5.0) -> dict:
    """GET the aggregated ``/metrics`` from a running coordinator."""
    return _get_json(f"{coordinator_url.rstrip('/')}/metrics", timeout)


def shutdown_cluster(
    state: Dict[str, Any], *, timeout: float = 10.0
) -> List[int]:
    """Stop the cluster a state file describes; return PIDs killed.

    Asks the coordinator to stop via ``/cluster/shutdown`` (best
    effort — it may already be gone), then escalates SIGTERM → SIGKILL
    on any worker PID still alive.  Safe to call twice.
    """
    coordinator = state.get("coordinator", {})
    url = coordinator.get("url")
    if url:
        try:
            _post_json(f"{str(url).rstrip('/')}/cluster/shutdown")
        except Exception:
            pass  # already down, or unreachable — the kills below decide
    pids = [int(w["pid"]) for w in state.get("workers", ())]
    for pid in pids:
        if _pid_alive(pid):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
    deadline = time.monotonic() + timeout
    killed: List[int] = []
    for pid in pids:
        while _pid_alive(pid) and time.monotonic() < deadline:
            time.sleep(0.05)
        if _pid_alive(pid):
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        killed.append(pid)
    return killed
