"""Section 2 experiment: the vanishing DLT fraction, analytic vs solved.

For each (P, α) the table reports:

* the closed-form covered fraction :math:`P^{1-\\alpha}`;
* the covered fraction *measured* on the genuine equal-finish-time
  allocation computed by :mod:`repro.dlt.nonlinear_solver` — on
  homogeneous platforms the two agree to numerical precision, on
  heterogeneous platforms the solver's fraction is of the same order
  (the sophistication of [33]–[35] cannot beat the exponent);
* the number of repeated rounds a split-recombine scheme would need
  for 99% coverage.

This is the paper's "no free lunch" made numeric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.nonlinear import (
    partial_work_fraction_many,
    rounds_to_finish_many,
)
from repro.core.vectorize import solve_dlt_batch
from repro.platform.generators import make_speeds
from repro.platform.star import StarPlatform
from repro.util.rng import SeedLike, make_rng
from repro.util.tables import format_table


@dataclass(frozen=True)
class Section2Row:
    P: int
    alpha: float
    analytic_fraction: float
    solved_fraction_homogeneous: float
    solved_fraction_heterogeneous: float
    rounds_for_99pct: int


@dataclass(frozen=True)
class Section2Result:
    rows: tuple[Section2Row, ...]
    N: float

    def render(self) -> str:
        headers = [
            "P",
            "alpha",
            "P^(1-a) analytic",
            "solver (homog.)",
            "solver (heterog.)",
            "rounds to 99%",
        ]
        table_rows = [
            [
                r.P,
                r.alpha,
                r.analytic_fraction,
                r.solved_fraction_homogeneous,
                r.solved_fraction_heterogeneous,
                r.rounds_for_99pct,
            ]
            for r in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title=(
                "Section 2: fraction of total work covered by one optimal "
                f"DLT round (N={self.N:g})"
            ),
        )


def run_section2(
    processors: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
    alphas: Sequence[float] = (1.5, 2.0, 3.0),
    N: float = 1000.0,
    seed: SeedLike = 42,
) -> Section2Result:
    """Build the Section-2 table (experiment E1/E2 of DESIGN.md).

    All (P, α) instances of one α run through the batched nonlinear
    solver (:func:`~repro.core.vectorize.solve_dlt_batch`), one stacked
    bisection per platform size; the analytic columns come from the
    vectorised closed forms.  Same numbers as the historical per-cell
    loop, measured minus the Python-level bisection overhead.
    """
    rng = make_rng(seed)
    Ps = np.asarray([int(P) for P in processors])
    rows = []
    for alpha in alphas:
        platforms = []
        for P in processors:
            # platform construction order matches the historical loop,
            # so the rng stream (and the table) is unchanged
            platforms.append(StarPlatform.homogeneous(P))
            platforms.append(
                StarPlatform.from_speeds(make_speeds("uniform", P, rng))
            )
        allocs = solve_dlt_batch(
            "nonlinear-parallel",
            platforms,
            [N] * len(platforms),
            alpha=alpha,
        )
        analytic = partial_work_fraction_many(Ps, alpha)
        rounds = rounds_to_finish_many(Ps, alpha, coverage=0.99)
        for i, P in enumerate(processors):
            rows.append(
                Section2Row(
                    P=int(P),
                    alpha=float(alpha),
                    analytic_fraction=float(analytic[i]),
                    solved_fraction_homogeneous=allocs[2 * i].covered_fraction,
                    solved_fraction_heterogeneous=allocs[
                        2 * i + 1
                    ].covered_fraction,
                    rounds_for_99pct=int(rounds[i]),
                )
            )
    return Section2Result(rows=tuple(rows), N=float(N))
