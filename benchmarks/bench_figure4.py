"""Benchmarks regenerating Figure 4 (a)–(c): experiments E7–E9.

Paper protocol (§4.3): p = 10…100 processors; speeds homogeneous /
uniform[1,100] / lognormal(0,1); 100 trials per point; y-axis = ratio of
communication volume to the lower bound ``LB = 2NΣ√x_i`` for the
``Comm_het``, ``Comm_hom`` and ``Comm_hom/k`` (e ≤ 1%) strategies.

Expected shape assertions (the paper's findings):

* 4(a) homogeneous — every strategy sits at ratio ≈ 1;
* 4(b)/4(c) heterogeneous — ``Comm_het`` within a few %, ``Comm_hom/k``
  reaching 15–30× (we assert > 8× at p = 100 for seed robustness).

Also benchmarks the vectorised batch-planning path
(``test_batch_vectorised_speedup``): a 500-request ``hom``/``het``
batch planned scalar vs through the strategies' batched kernels, with
the plans asserted equivalent and the speedup emitted as a ``BENCH``
JSON line.
"""

import json
import time

import numpy as np
import pytest

from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.experiments.figure4 import run_figure4
from repro.platform.generators import make_speeds
from repro.platform.star import StarPlatform


def _run_panel(speed_model, protocol):
    # the threaded session fans each trial's strategy sweep out and
    # memoises repeated instances; results are identical to serial
    with PlannerSession(backend="threaded") as session:
        return run_figure4(
            speed_model,
            processors=protocol["processors"],
            trials=protocol["trials"],
            seed=2013,
            session=session,
        )


def test_fig4a_homogeneous(benchmark, figure4_protocol):
    result = benchmark.pedantic(
        _run_panel,
        args=("homogeneous", figure4_protocol),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    # Figure 4a: every registered strategy within a percent of the bound
    for name in result.means:
        assert result.final_ratio(name) < 1.01, name
    # het's overhead shrinks with p
    assert result.means["het"][-1] <= result.means["het"][0] + 1e-9


def test_fig4b_uniform(benchmark, figure4_protocol):
    result = benchmark.pedantic(
        _run_panel,
        args=("uniform", figure4_protocol),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.final_ratio("het") < 1.02  # paper: "never more than 2%"
    assert result.final_ratio("hom/k") > 8.0  # paper: 15-30x
    assert result.final_ratio("hom/k") > result.final_ratio("hom")


def _sweep_style_batch(n_platforms=5, p=64, n_sizes=50, seed=2013):
    """A ρ-sweep-shaped batch: few platforms × many N × both strategies.

    This is the workload the vectorised path exists for — the same
    closed-form strategies replanned across a grid of (platform, N)
    points, as in the Figure-4 / ρ protocols.
    """
    rng = np.random.default_rng(seed)
    platforms = [
        StarPlatform.from_speeds(make_speeds("uniform", p, rng))
        for _ in range(n_platforms)
    ]
    sizes = [float(1_000 + 200 * i) for i in range(n_sizes)]
    return [
        PlanRequest(platform=platform, N=size, strategy=strategy)
        for platform in platforms
        for size in sizes
        for strategy in ("hom", "het")
    ]


def test_batch_vectorised_speedup():
    """Scalar vs vectorised planning of one 500-request hom/het batch.

    Asserts the equivalence contract (plans agree within rtol=1e-12)
    and a >= 3x wall-clock speedup, then emits a machine-readable
    ``BENCH {...}`` JSON line for CI trend tracking.  Caching is off in
    both sessions so the comparison times real planning work.
    """
    requests = _sweep_style_batch()
    assert len(requests) == 500

    with PlannerSession(cache=False, vectorize=False) as scalar:
        start = time.perf_counter()
        scalar_results = scalar.plan_batch(requests)
        scalar_s = time.perf_counter() - start
    with PlannerSession(cache=False, vectorize=True) as vectorised:
        start = time.perf_counter()
        vector_results = vectorised.plan_batch(requests)
        vector_s = time.perf_counter() - start

    for a, b in zip(scalar_results, vector_results):
        assert a.strategy == b.strategy
        assert np.isclose(a.comm_volume, b.comm_volume, rtol=1e-12, atol=0)
        assert np.allclose(
            a.plan.finish_times, b.plan.finish_times, rtol=1e-12, atol=0
        )

    speedup = scalar_s / vector_s
    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "batch_vectorised_speedup",
                "requests": len(requests),
                "strategies": ["hom", "het"],
                "scalar_s": round(scalar_s, 4),
                "vector_s": round(vector_s, 4),
                "speedup": round(speedup, 2),
            }
        )
    )
    assert speedup >= 3.0, f"vectorised path only {speedup:.1f}x faster"


def test_batch_partition_kernel_speedup():
    """Scalar vs stacked-DP partitioning for PERI-SUM and PERI-MAX.

    64 distinct p=64 speed vectors partitioned one-by-one vs through
    the ``partition_batch`` kernels; partitions asserted bit-identical
    (the vectorisation contract) and each kernel >= 3x faster, with a
    ``BENCH {...}`` JSON line per objective.
    """
    from repro.partition.column_based import (
        peri_sum_partition,
        peri_sum_partition_batch,
    )
    from repro.partition.perimax import (
        peri_max_partition,
        peri_max_partition_batch,
    )

    rng = np.random.default_rng(2013)
    speeds = [make_speeds("uniform", 64, rng) for _ in range(64)]
    vecs = [x / x.sum() for x in speeds]

    for name, scalar, batch in (
        ("peri-sum", peri_sum_partition, peri_sum_partition_batch),
        ("peri-max", peri_max_partition, peri_max_partition_batch),
    ):
        scalar_s = min(
            _timed(lambda: [scalar(v) for v in vecs]) for _ in range(3)
        )
        batch_s = min(_timed(lambda: batch(vecs)) for _ in range(3))
        for v, part in zip(vecs, batch(vecs)):
            assert part == scalar(v)  # bit-identical rectangles
        speedup = scalar_s / batch_s
        print()
        print(
            "BENCH "
            + json.dumps(
                {
                    "name": f"batch_partition_speedup_{name}",
                    "vectors": len(vecs),
                    "p": 64,
                    "scalar_s": round(scalar_s, 4),
                    "batch_s": round(batch_s, 4),
                    "speedup": round(speedup, 2),
                }
            )
        )
        assert speedup >= 3.0, f"{name} kernel only {speedup:.1f}x faster"


def test_batch_nonlinear_solver_speedup():
    """Scalar vs stacked bisection for the §2 nonlinear DLT solvers.

    64 heterogeneous p=8 instances solved one-by-one vs through the
    ``plan_batch`` kernels; allocations asserted within the rtol=1e-12
    contract and each kernel >= 3x faster, with a ``BENCH {...}`` JSON
    line per model.
    """
    from repro.dlt.nonlinear_solver import (
        solve_nonlinear_one_port,
        solve_nonlinear_one_port_batch,
        solve_nonlinear_parallel,
        solve_nonlinear_parallel_batch,
    )

    rng = np.random.default_rng(2013)
    platforms = [
        StarPlatform.from_speeds(make_speeds("uniform", 8, rng))
        for _ in range(64)
    ]
    Ns = [float(1_000 + 100 * i) for i in range(64)]

    for name, scalar, batch in (
        ("parallel", solve_nonlinear_parallel, solve_nonlinear_parallel_batch),
        ("one_port", solve_nonlinear_one_port, solve_nonlinear_one_port_batch),
    ):
        scalar_s = _timed(
            lambda: [scalar(pl, N, alpha=2.0) for pl, N in zip(platforms, Ns)]
        )
        batch_s = min(
            _timed(lambda: batch(platforms, Ns, alpha=2.0)) for _ in range(3)
        )
        for pl, N, alloc in zip(platforms, Ns, batch(platforms, Ns, alpha=2.0)):
            expected = scalar(pl, N, alpha=2.0)
            assert np.allclose(
                alloc.amounts, expected.amounts, rtol=1e-12, atol=1e-12
            )
            assert np.allclose(
                alloc.finish, expected.finish, rtol=1e-12, atol=1e-12
            )
        speedup = scalar_s / batch_s
        print()
        print(
            "BENCH "
            + json.dumps(
                {
                    "name": f"batch_nonlinear_speedup_{name}",
                    "instances": len(platforms),
                    "p": 8,
                    "scalar_s": round(scalar_s, 4),
                    "batch_s": round(batch_s, 4),
                    "speedup": round(speedup, 2),
                }
            )
        )
        assert speedup >= 3.0, f"{name} kernel only {speedup:.1f}x faster"


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_fig4c_lognormal(benchmark, figure4_protocol):
    result = benchmark.pedantic(
        _run_panel,
        args=("lognormal", figure4_protocol),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.final_ratio("het") < 1.02
    assert result.final_ratio("hom/k") > 8.0
