"""The request stream: determinism, mix handling, op shapes."""

import pytest

from repro.core.pipeline import PlanRequest
from repro.loadtest import (
    DEFAULT_MIX,
    OP_KINDS,
    parse_mix,
    request_stream,
    stream_fingerprint,
)


class TestDeterminism:
    def test_same_seed_identical_stream(self):
        a = request_stream(120, seed=11)
        b = request_stream(120, seed=11)
        assert stream_fingerprint(a) == stream_fingerprint(b)
        assert [op.kind for op in a] == [op.kind for op in b]

    def test_different_seed_different_stream(self):
        a = request_stream(120, seed=11)
        b = request_stream(120, seed=12)
        assert stream_fingerprint(a) != stream_fingerprint(b)

    def test_fingerprint_sensitive_to_problem_sizes(self):
        a = request_stream(60, seed=5, n_lo=1e3, n_hi=2e3)
        b = request_stream(60, seed=5, n_lo=5e3, n_hi=9e3)
        assert stream_fingerprint(a) != stream_fingerprint(b)

    def test_count_independent_prefix(self):
        # the first K ops of a longer stream are the K-op stream:
        # extending a run's duration must not reshuffle early traffic
        short = request_stream(40, seed=3)
        long = request_stream(80, seed=3)
        assert stream_fingerprint(short) == stream_fingerprint(long[:40])


class TestShapes:
    def test_indices_and_endpoints(self):
        ops = request_stream(50, seed=1, batch_size=4)
        assert [op.index for op in ops] == list(range(50))
        for op in ops:
            assert op.kind in OP_KINDS
            if op.kind == "plan":
                assert isinstance(op.payload, PlanRequest)
                assert op.weight == 1
                assert op.endpoint == "/plan"
            elif op.kind == "plan_batch":
                assert len(op.payload) == 4
                assert op.weight == 4
                assert op.endpoint == "/plan_batch"
            else:
                assert op.weight == 1
                assert op.endpoint == "/cache/get"

    def test_mix_respected(self):
        ops = request_stream(80, seed=2, mix={"plan": 1.0})
        assert {op.kind for op in ops} == {"plan"}

    def test_platform_pool_bounded(self):
        ops = request_stream(100, seed=4, platforms=2, mix={"plan": 1.0})
        fingerprints = {op.payload.platform.fingerprint() for op in ops}
        assert len(fingerprints) <= 2

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            request_stream(0)
        with pytest.raises(ValueError):
            request_stream(10, mix={"nonsense": 1.0})
        with pytest.raises(ValueError):
            request_stream(10, mix={"plan": 0.0})
        with pytest.raises(ValueError):
            request_stream(10, n_lo=100.0, n_hi=10.0)


class TestParseMix:
    def test_round_trip_default(self):
        spec = ",".join(f"{k}={v}" for k, v in DEFAULT_MIX.items())
        assert parse_mix(spec) == DEFAULT_MIX

    def test_partial_spec(self):
        assert parse_mix("plan=3,cache_get=1") == {
            "plan": 3.0,
            "cache_get": 1.0,
        }

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="bad mix component"):
            parse_mix("plan=1,delete=2")

    def test_rejects_garbage_weight(self):
        with pytest.raises(ValueError, match="bad mix weight"):
            parse_mix("plan=lots")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_mix("")
        with pytest.raises(ValueError):
            parse_mix("plan=0,plan_batch=0")
