"""Lower bounds for the rectangle-partition objectives.

A rectangle of area ``a`` has half-perimeter at least :math:`2\\sqrt a`
(squares are optimal), so on the unit square:

* PERI-SUM: :math:`\\hat C \\ge LB = \\sum_i 2\\sqrt{a_i}` — and also
  :math:`\\hat C \\ge 2` since the rectangles tile the unit square
  (projections cover both axes).  The paper notes :math:`LB \\ge 2`.
* PERI-MAX: :math:`\\max_i (w_i + h_i) \\ge 2\\sqrt{\\max_i a_i}` and
  at least the width of the widest mandatory column, i.e.
  :math:`\\ge \\max(2\\sqrt{a_{max}}, \\dots)`; we use the simple
  square bound.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import check_positive_array


def peri_sum_lower_bound(areas: Sequence[float]) -> float:
    """:math:`LB = 2\\sum_i\\sqrt{a_i}` (§4.1.2)."""
    a = check_positive_array(areas, "areas")
    return float(2.0 * np.sqrt(a).sum())


def peri_max_lower_bound(areas: Sequence[float]) -> float:
    """:math:`2\\sqrt{\\max_i a_i}` — the biggest rectangle's square bound."""
    a = check_positive_array(areas, "areas")
    return float(2.0 * np.sqrt(a.max()))


def guarantee_gap(cost: float, areas: Sequence[float]) -> float:
    """Ratio of an achieved PERI-SUM cost to its lower bound.

    The paper's guarantee caps this at 7/4; §4.3 observes ≤ 1.02 in
    practice.  Tests assert both.
    """
    lb = peri_sum_lower_bound(areas)
    if cost < lb - 1e-9:
        raise ValueError(
            f"cost {cost} below the lower bound {lb} — impossible partition"
        )
    return float(cost / lb)
