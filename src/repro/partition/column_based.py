"""Optimal column-based PERI-SUM partitioning (§4.1.2).

Column-based partitions split the unit square into vertical columns of
full height; each column is then sliced horizontally, one rectangle per
processor assigned to it.  If column ``c`` has width :math:`w_c` (equal
to the sum of its rectangles' areas) and holds :math:`k_c` rectangles,
its rectangles have half-perimeters :math:`w_c + h_r` with
:math:`\\sum_r h_r = 1`, so the column contributes
:math:`k_c w_c + 1` and the total is

.. math:: \\hat C = \\sum_c (k_c w_c) + \\#\\text{columns}.

Beaumont–Boudet–Rastello–Robert (2002) prove that assigning the areas
*sorted* to *contiguous* groups is optimal among column-based layouts
and give a guaranteed heuristic; here we run the exact :math:`O(p^2)`
dynamic program over contiguous groups of the sorted areas, which is
therefore at least as good as the published heuristic and inherits its
guarantee

.. math:: \\hat C \\le 1 + \\frac{5}{4} LB \\le \\frac{7}{4} LB,
          \\qquad LB = 2\\sum_i \\sqrt{a_i}.

(Why sorted-contiguous is optimal: swapping two rectangles between a
wide and a narrow column so that the larger area lands in the wider
column never increases :math:`\\sum k_c w_c`; iterating yields a sorted
contiguous arrangement.)
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.partition.rectangle import Partition
from repro.registry import register
from repro.util.validation import check_probability_vector


def _backtrack_groups(
    order: np.ndarray, choice: np.ndarray, p: int
) -> List[List[int]]:
    """Recover the contiguous sorted-order groups from a DP choice row."""
    groups: List[List[int]] = []
    k = p
    while k > 0:
        j = int(choice[k])
        groups.append([int(order[t]) for t in range(j, k)])
        k = j
    groups.reverse()
    return groups


def _column_groups_stacked(A: np.ndarray) -> List[List[List[int]]]:
    """The PERI-SUM DP over every row of ``A`` in one stacked pass.

    ``A`` is a ``(B, p)`` matrix of area vectors.  Each DP transition is
    evaluated for all ``B`` rows with one elementwise NumPy expression
    whose op order matches the scalar recurrence exactly, and ties are
    broken by the same first-minimum ``argmin`` rule — so row ``b`` of
    the output is bit-identical to ``column_groups(A[b])``.
    """
    B, p = A.shape
    order = np.argsort(A, axis=1, kind="stable")
    sorted_A = np.take_along_axis(A, order, axis=1)
    prefix = np.concatenate(
        [np.zeros((B, 1)), np.cumsum(sorted_A, axis=1)], axis=1
    )
    INF = float("inf")
    f = np.full((B, p + 1), INF)
    f[:, 0] = 0.0
    choice = np.zeros((B, p + 1), dtype=int)
    rows = np.arange(B)
    for k in range(1, p + 1):
        # vectorised transition over j = 0..k-1, for all rows at once
        j = np.arange(k)
        cand = f[:, :k] + (k - j) * (prefix[:, k : k + 1] - prefix[:, :k]) + 1.0
        best = np.argmin(cand, axis=1)
        f[:, k] = cand[rows, best]
        choice[:, k] = best
    return [_backtrack_groups(order[b], choice[b], p) for b in range(B)]


def column_groups(areas: Sequence[float]) -> List[List[int]]:
    """Optimal contiguous grouping of the (sorted) areas into columns.

    Returns groups of *original* indices, sorted by ascending area
    within the DP's non-decreasing order.  The DP state is
    ``f(k) = min cost of packing the k smallest areas``, with
    transition over the size of the last column:

    ``f(k) = min_{0 <= j < k}  f(j) + (k - j) * (S_k - S_j) + 1``

    where ``S`` are prefix sums of the sorted areas.  ``O(p^2)`` time.
    Delegates to the stacked DP core with a single row, so the scalar
    and batch paths share one implementation by construction.
    """
    a = check_probability_vector(areas, "areas")
    return _column_groups_stacked(a[None, :])[0]


@register(
    "partitioner",
    "peri-sum",
    summary="Column-based DP minimising the sum of half-perimeters (§4.1.2)",
    section="§4.1.2",
)
def peri_sum_partition(areas: Sequence[float]) -> Partition:
    """Partition the unit square into rectangles of the given ``areas``.

    ``areas`` must sum to 1 (normalized speeds).  Returns a validated
    :class:`Partition` whose rectangle ``owner`` fields point back to
    the input indices, so ``partition.by_owner()[i]`` is processor *i*'s
    chunk.
    """
    a = check_probability_vector(areas, "areas")
    return assemble_columns(a, column_groups(a))


def assemble_columns(a: np.ndarray, groups: List[List[int]]) -> Partition:
    """Build and validate the column geometry for a grouping of ``a``.

    Shared by the scalar and batch partitioners (PERI-SUM and PERI-MAX
    alike), so plans from either path go through the identical geometry
    arithmetic — the bit-identity half of the vectorisation contract.

    The whole layout (column widths and left edges, normalised heights,
    stacking offsets, edge snaps) is computed as flat NumPy arrays over
    all rectangles at once — the :func:`stack_column` math without the
    per-column Python loop — and materialised through the fast
    :meth:`Partition.from_arrays` constructor.
    """
    sizes = np.array([len(g) for g in groups], dtype=np.intp)
    if sizes.size and sizes.min() <= 0:
        raise ValueError("every column must hold at least one rectangle")
    owners = np.concatenate([np.asarray(g, dtype=np.intp) for g in groups])
    areas = a[owners]
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    col_area = np.add.reduceat(areas, bounds[:-1])
    lefts = np.concatenate([[0.0], np.cumsum(col_area[:-1])])
    widths = col_area.copy()
    # Snap the final column to the right edge to kill float drift.
    widths[-1] = 1.0 - lefts[-1]
    if widths.min() <= 0:
        bad = float(widths[int(np.argmin(widths))])
        raise ValueError(f"column width must be positive, got {bad}")
    w_rect = np.repeat(widths, sizes)
    x_rect = np.repeat(lefts, sizes)
    heights = areas / w_rect
    col_total = np.add.reduceat(heights, bounds[:-1])
    if col_total.min() <= 0:
        raise ValueError("column must have positive total area")
    heights = heights * np.repeat(1.0 / col_total, sizes)
    cum = np.cumsum(heights)
    y_rect = cum - heights
    y_rect = y_rect - np.repeat(y_rect[bounds[:-1]], sizes)
    # Snap each column's last rectangle to the domain edge.
    last = bounds[1:] - 1
    heights[last] = 1.0 - y_rect[last]
    part = Partition.from_arrays(x_rect, y_rect, w_rect, heights, owners)
    part.validate(expected_areas=a)
    return part


def batch_partitions(
    areas_batch: Sequence[Sequence[float]],
    grouper: Callable[[np.ndarray], List[List[List[int]]]],
) -> List[Partition]:
    """Run a stacked column-DP ``grouper`` over many area vectors.

    The shared machinery behind the ``partition_batch`` kernels:
    vectors are validated individually, deduplicated on exact content
    (duplicates share one frozen :class:`Partition`), grouped by length
    so equal-size rows stack into one ``(B, p)`` DP call, and assembled
    through :func:`assemble_columns` — the same geometry path the
    scalar partitioners use.
    """
    vecs = [check_probability_vector(a, "areas") for a in areas_batch]
    out: List[Partition | None] = [None] * len(vecs)
    first_slot: dict[tuple[int, bytes], int] = {}
    duplicates: dict[tuple[int, bytes], List[int]] = {}
    for i, a in enumerate(vecs):
        key = (a.size, a.tobytes())
        if key in first_slot:
            duplicates.setdefault(key, []).append(i)
        else:
            first_slot[key] = i
    by_len: dict[int, List[int]] = {}
    for (p, _), i in first_slot.items():
        by_len.setdefault(p, []).append(i)
    for idxs in by_len.values():
        A = np.vstack([vecs[i][None, :] for i in idxs])
        for groups, i in zip(grouper(A), idxs):
            out[i] = assemble_columns(vecs[i], groups)
    for key, extras in duplicates.items():
        part = out[first_slot[key]]
        for i in extras:
            out[i] = part  # frozen partitions are safe to share
    return out  # type: ignore[return-value]


def peri_sum_partition_batch(
    areas_batch: Sequence[Sequence[float]],
) -> List[Partition]:
    """Batch kernel: PERI-SUM partitions for many area vectors at once.

    Vectorised objective: amortise the :math:`O(p^2)` column DP across
    the whole batch — every transition runs as one stacked NumPy
    expression over all distinct same-length vectors instead of one
    Python-level DP per request.  Output ``i`` is bit-identical to
    ``peri_sum_partition(areas_batch[i])`` (shared DP core, shared
    geometry assembly), so cache entries from either path are
    interchangeable.
    """
    return batch_partitions(areas_batch, _column_groups_stacked)


# Batch-kernel seam: strategies (and repro.core.vectorize helpers) probe
# for this attribute the same way batch_capable probes for plan_batch.
peri_sum_partition.partition_batch = peri_sum_partition_batch


def peri_sum_cost(areas: Sequence[float]) -> float:
    """The optimal column-based PERI-SUM objective, without geometry.

    Equals ``peri_sum_partition(areas).sum_half_perimeters`` (tested),
    but runs the DP only — used inside the figure-4 sweeps where the
    geometry itself is not needed.
    """
    a = check_probability_vector(areas, "areas")
    p = a.size
    sorted_a = np.sort(a)
    prefix = np.concatenate([[0.0], np.cumsum(sorted_a)])
    INF = float("inf")
    f = np.full(p + 1, INF)
    f[0] = 0.0
    for k in range(1, p + 1):
        j = np.arange(k)
        cand = f[j] + (k - j) * (prefix[k] - prefix[j]) + 1.0
        f[k] = float(cand.min())
    return float(f[p])
