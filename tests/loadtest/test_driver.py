"""The load-test driver against live in-process servers.

The headline acceptance property lives here: the driver's client-side
request count matches the target's own ``/metrics`` count *exactly*,
for a single plan server and for a cluster coordinator front door.
"""

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.loadtest import (
    EndpointCheck,
    LoadtestReport,
    cross_check,
    frontdoor_metrics,
    run_loadtest,
)
from repro.service.metrics import ServerMetrics
from repro.service.server import PlanServer


@pytest.fixture(scope="module")
def server():
    with PlanServer(backend="threaded", jobs=2) as srv:
        yield srv


class TestAgainstPlanServer:
    def test_counts_match_metrics_exactly(self, server):
        report = run_loadtest(
            server.url, rps=60, duration=0.5, threads=4, seed=21
        )
        assert report.sent == 30
        assert report.ok == 30
        assert report.errors == 0
        assert report.unavailable == 0
        assert report.checks, "cross-check ran"
        for check in report.checks:
            assert check.matched, check.as_dict()
        assert report.server_check_ok
        assert report.passed
        assert report.achieved_rps > 0

    def test_same_seed_same_traffic_counts(self, server):
        kwargs = dict(rps=40, duration=0.5, threads=2, seed=77)
        first = run_loadtest(server.url, **kwargs)
        second = run_loadtest(server.url, **kwargs)
        first_counts = {
            c.endpoint: c.attempted for c in first.checks
        }
        second_counts = {
            c.endpoint: c.attempted for c in second.checks
        }
        assert first_counts == second_counts

    def test_report_renders_and_serialises(self, server):
        report = run_loadtest(
            server.url, rps=30, duration=0.3, threads=2, seed=5
        )
        text = report.render()
        assert "verdict: pass" in text
        assert "server cross-check" in text
        payload = report.to_dict()
        assert payload["verdict"] == "pass"
        assert payload["sent"] == report.sent
        assert payload["server_check_ok"] is True

    def test_no_check_skips_metrics(self, server):
        report = run_loadtest(
            server.url,
            rps=30,
            duration=0.2,
            threads=2,
            seed=5,
            check_server=False,
        )
        assert report.checks == []
        assert report.server_check_ok  # vacuously
        assert report.passed

    def test_dead_target_fails_fast(self):
        # a port nothing listens on: the pre-run handshake raises
        # rather than emitting a report full of noise
        from repro.service.client import PlanServiceUnavailable

        with pytest.raises(PlanServiceUnavailable):
            run_loadtest(
                "http://127.0.0.1:9",
                rps=20,
                duration=0.2,
                threads=2,
                timeout=0.2,
            )

    def test_midrun_unavailable_budgeted_and_reconciled(
        self, server, monkeypatch
    ):
        # every op dies in transport mid-run: budgeted as unavailable,
        # and excluded from the server-side expectation — so the
        # cross-check still matches (the server truly saw nothing new)
        from repro.loadtest import driver as driver_module
        from repro.service.client import PlanServiceUnavailable

        def _always_down(client, op, trace=None):
            raise PlanServiceUnavailable("cable cut")

        monkeypatch.setattr(driver_module, "_execute", _always_down)
        report = run_loadtest(
            server.url, rps=30, duration=0.2, threads=2, seed=5
        )
        assert report.sent > 0
        assert report.unavailable == report.sent
        assert report.ok == 0
        assert report.server_check_ok  # expected = sent - unreachable = 0
        assert not report.passed  # but the error budget is blown

    def test_bad_arguments(self, server):
        with pytest.raises(ValueError):
            run_loadtest(server.url, rps=0)
        with pytest.raises(ValueError):
            run_loadtest(server.url, duration=0)
        with pytest.raises(ValueError):
            run_loadtest(server.url, threads=0)


class TestAgainstCoordinator:
    def test_counts_match_merged_metrics_exactly(self):
        with PlanServer(backend="serial") as w1, \
                PlanServer(backend="serial") as w2:
            with ClusterCoordinator(
                workers=[w1.url, w2.url], heartbeat_interval=30.0
            ) as coordinator:
                report = run_loadtest(
                    coordinator.url, rps=50, duration=0.6, threads=4,
                    seed=9,
                )
        assert report.sent == 30
        assert report.errors == 0
        assert report.unavailable == 0
        assert report.checks
        for check in report.checks:
            assert check.matched, check.as_dict()
        assert report.passed

    def test_frontdoor_extraction(self):
        metrics = ServerMetrics()
        metrics.observe("/plan", 200, 0.01)
        plain = metrics.payload()
        assert frontdoor_metrics(plain)["endpoints"]["/plan"]["count"] == 1
        nested = {"role": "coordinator", "coordinator": plain}
        assert frontdoor_metrics(nested)["endpoints"]["/plan"]["count"] == 1


class TestCrossCheck:
    def _payload(self, plan_count):
        metrics = ServerMetrics()
        for _ in range(plan_count):
            metrics.observe("/plan", 200, 0.001)
        return metrics.payload()

    def test_detects_dropped_requests(self):
        checks = cross_check(
            self._payload(0), self._payload(7), {"/plan": 10}, {}
        )
        assert len(checks) == 1
        assert not checks[0].matched
        assert checks[0].expected == 10
        assert checks[0].server_count == 7

    def test_unreachable_excluded_from_expectation(self):
        checks = cross_check(
            self._payload(0),
            self._payload(7),
            {"/plan": 10},
            {"/plan": 3},
        )
        assert checks[0].matched

    def test_mismatch_fails_the_verdict(self):
        report = LoadtestReport(
            target="http://x",
            wire_profile="binary-v2",
            seed=1,
            threads=1,
            target_rps=1.0,
            duration_s=1.0,
            elapsed_s=1.0,
            sent=10,
            ok=10,
            errors=0,
            refused_429=0,
            unavailable=0,
            ok_weight=10,
            error_budget=0.01,
            client_metrics={"endpoints": {}},
            checks=[
                EndpointCheck(
                    endpoint="/plan",
                    attempted=10,
                    unreachable=0,
                    server_count=9,
                )
            ],
        )
        assert not report.server_check_ok
        assert report.verdict == "fail"
        assert "MISMATCH" in report.render()

    def test_error_budget_breach_fails(self):
        report = LoadtestReport(
            target="http://x",
            wire_profile="binary-v2",
            seed=1,
            threads=1,
            target_rps=1.0,
            duration_s=1.0,
            elapsed_s=1.0,
            sent=100,
            ok=97,
            errors=3,
            refused_429=0,
            unavailable=0,
            ok_weight=97,
            error_budget=0.01,
            client_metrics={"endpoints": {}},
        )
        assert report.error_rate == pytest.approx(0.03)
        assert not report.passed

    def test_429s_not_budgeted(self):
        report = LoadtestReport(
            target="http://x",
            wire_profile="binary-v2",
            seed=1,
            threads=1,
            target_rps=1.0,
            duration_s=1.0,
            elapsed_s=1.0,
            sent=100,
            ok=60,
            errors=0,
            refused_429=40,
            unavailable=0,
            ok_weight=60,
            error_budget=0.01,
            client_metrics={"endpoints": {}},
        )
        assert report.error_rate == 0.0
        assert report.passed
