"""Tests for repro.simulate.affinity — the paper's proposed scheduler."""

import numpy as np
import pytest

from repro.platform.star import StarPlatform
from repro.simulate.affinity import (
    affinity_savings,
    run_grid_demand_driven,
)


class TestGridScheduling:
    def test_all_cells_executed_once(self):
        plat = StarPlatform.from_speeds([1.0, 2.0, 3.0])
        res = run_grid_demand_driven(plat, grid=6, policy="plain")
        cells = [c for worker in res.assignment for c in worker]
        assert len(cells) == 36
        assert len(set(cells)) == 36

    def test_policies_execute_same_cells(self):
        plat = StarPlatform.from_speeds([1.0, 4.0])
        a = run_grid_demand_driven(plat, grid=5, policy="plain")
        b = run_grid_demand_driven(plat, grid=5, policy="affinity")
        assert sorted(c for w in a.assignment for c in w) == sorted(
            c for w in b.assignment for c in w
        )

    def test_identical_makespan_across_policies(self):
        """Affinity changes *which* cells a worker gets, never how many
        identical-cost cells it runs — makespan is policy-independent."""
        plat = StarPlatform.from_speeds([1.0, 3.0, 7.0])
        a = run_grid_demand_driven(plat, grid=8, policy="plain")
        b = run_grid_demand_driven(plat, grid=8, policy="affinity")
        assert a.makespan == pytest.approx(b.makespan)
        assert np.array_equal(
            np.sort([len(w) for w in a.assignment]),
            np.sort([len(w) for w in b.assignment]),
        )

    def test_shipped_counts_unique_segments(self):
        plat = StarPlatform.homogeneous(1)
        res = run_grid_demand_driven(plat, grid=4, block_side=2.0)
        # one worker: 4 row segments + 4 col segments, 2.0 each
        assert res.total_shipped == pytest.approx(16.0)

    def test_policy_validated(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError, match="policy"):
            run_grid_demand_driven(plat, grid=2, policy="random")

    def test_single_cell(self):
        plat = StarPlatform.homogeneous(3)
        res = run_grid_demand_driven(plat, grid=1)
        assert res.total_shipped == pytest.approx(2.0)


class TestBoundedCaches:
    def test_unbounded_default_unchanged(self):
        plat = StarPlatform.from_speeds([1.0, 3.0])
        a = run_grid_demand_driven(plat, grid=8, policy="affinity")
        b = run_grid_demand_driven(
            plat, grid=8, policy="affinity", cache_capacity=None
        )
        assert a.total_shipped == pytest.approx(b.total_shipped)

    def test_zero_cache_ships_everything(self):
        """No cache → every chunk refetches both segments (2 per cell)."""
        plat = StarPlatform.from_speeds([1.0, 2.0])
        res = run_grid_demand_driven(
            plat, grid=6, policy="affinity", cache_capacity=0
        )
        assert res.total_shipped == pytest.approx(2.0 * 36)

    def test_savings_monotone_in_capacity(self):
        plat = StarPlatform.from_speeds([1.0, 2.0, 4.0])
        vols = []
        for cap in (0, 2, 8, None):
            res = run_grid_demand_driven(
                plat, grid=10, policy="affinity", cache_capacity=cap
            )
            vols.append(res.total_shipped)
        # shipping volume falls (weakly) as caches grow
        assert vols == sorted(vols, reverse=True)

    def test_capacity_validated(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            run_grid_demand_driven(
                plat, grid=2, policy="affinity", cache_capacity=-1
            )

    def test_huge_cache_equals_unbounded(self):
        plat = StarPlatform.from_speeds([1.0, 5.0])
        capped = run_grid_demand_driven(
            plat, grid=8, policy="affinity", cache_capacity=10_000
        )
        free = run_grid_demand_driven(plat, grid=8, policy="affinity")
        assert capped.total_shipped == pytest.approx(free.total_shipped)


class TestAffinitySavings:
    def test_affinity_never_ships_more(self):
        """The paper's claim, directionally: locality can only help."""
        rng = np.random.default_rng(0)
        for _ in range(5):
            plat = StarPlatform.from_speeds(rng.uniform(1, 10, 4))
            out = affinity_savings(plat, grid=8)
            assert out["affinity"].total_shipped <= out[
                "plain"
            ].total_shipped + 1e-9

    def test_savings_positive_on_heterogeneous_grid(self):
        """With several workers interleaving, plain row-major scatter
        forces refetches that affinity avoids."""
        plat = StarPlatform.from_speeds([1.0, 2.0, 5.0, 9.0])
        out = affinity_savings(plat, grid=12)
        assert out["saved_fraction"] > 0.05

    def test_single_worker_no_savings(self):
        plat = StarPlatform.homogeneous(1)
        out = affinity_savings(plat, grid=5)
        assert out["saved_volume"] == pytest.approx(0.0)

    def test_lower_bounded_by_footprint(self):
        """Even affinity must ship each worker's union footprint."""
        plat = StarPlatform.from_speeds([1.0, 3.0])
        res = run_grid_demand_driven(plat, grid=6, policy="affinity")
        for i, cells in enumerate(res.assignment):
            rows = {r for r, _ in cells}
            cols = {c for _, c in cells}
            assert res.shipped[i] == pytest.approx(
                (len(rows) + len(cols)) * res.block_side
            )
