#!/usr/bin/env python3
"""Section 3 walkthrough: sorting as an almost-divisible load (Figure 1).

Executes the three sample-sort phases on real data, on a homogeneous
and a heterogeneous platform, and prints the cost accounting that makes
the paper's point: the sequential preprocessing shrinks relative to the
divisible local sorts as N grows.

Run: ``python examples/sample_sort_demo.py``
"""

import numpy as np

from repro import StarPlatform, sample_sort, sorting_residual_fraction
from repro.core.almost_linear import theorem_b4_max_bucket_bound
from repro.util.tables import format_table


def narrate(title: str, keys: np.ndarray, platform: StarPlatform, rng) -> None:
    res = sample_sort(keys, platform, rng=rng)
    assert np.array_equal(res.sorted_keys, np.sort(keys)), "sort is broken!"
    N, p = keys.size, platform.size
    print(title)
    print(f"  N={N}, p={p}, oversampling s={res.oversampling} (= log2(N)^2)")
    print(
        f"  Step 1 (sort {res.oversampling * p}-key sample on master): "
        f"{res.step1_time:,.0f}"
    )
    print(f"  Step 2 (bucket by binary search, N log p):  {res.step2_time:,.0f}")
    print(
        f"  Step 3 (parallel local sorts): max "
        f"{float(np.max(res.local_sort_times)):,.0f}"
    )
    print(
        f"  bucket sizes: {res.bucket_sizes.tolist()} "
        f"(B.4 bound for equal buckets: "
        f"{theorem_b4_max_bucket_bound(N, p):,.0f})"
    )
    print(
        f"  makespan {res.makespan:,.0f}, speedup {res.speedup():.2f}x, "
        f"parallel fraction {100 * res.parallel_fraction:.1f}%"
    )
    print()


def main() -> None:
    rng = np.random.default_rng(42)

    # the analytic residue — why sorting *is* amenable to DLT
    rows = [
        [f"2^{e}", p, sorting_residual_fraction(2**e, p)]
        for e in (14, 20, 26)
        for p in (8, 64)
    ]
    print(
        format_table(
            ["N", "p", "non-divisible residue log p / log N"],
            rows,
            title="Sorting residue vanishes as N grows (§3.1):",
        )
    )
    print()

    keys = rng.random(300_000)
    narrate(
        "Homogeneous platform (8 equal workers):",
        keys,
        StarPlatform.homogeneous(8),
        rng,
    )
    narrate(
        "Heterogeneous platform (speeds 1,1,2,4 — §3.2 splitters):",
        keys,
        StarPlatform.from_speeds([1.0, 1.0, 2.0, 4.0]),
        rng,
    )


if __name__ == "__main__":
    main()
