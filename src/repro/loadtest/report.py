"""Load-test results: client-side stats, server cross-check, verdict.

The driver hands this module two things per run: the merged
*client-side* metrics (each worker thread records latencies into its
own :class:`~repro.service.metrics.ServerMetrics` — the same fixed
log-spaced histograms the servers use — merged losslessly by
:func:`~repro.service.metrics.merge_metrics`), and the target's own
``/metrics`` payloads snapshotted before and after the run.  From
those it derives:

* achieved RPS and client-observed p50/p99 per endpoint and overall;
* the error budget verdict — answered non-429 errors and transport
  failures count against ``error_budget``; 429 refusals are reported
  separately (backpressure is the admission gate *working*, not an
  error, but you still want to see it);
* the **server cross-check**: for each planning endpoint, the delta of
  the server's own front-door request counter across the run must
  equal the client's count of requests that reached the server
  (attempted minus transport failures).  A mismatch means dropped or
  double-counted requests — exactly the instrumentation rot this
  harness exists to catch — and fails the verdict.

Works identically against a single :class:`~repro.service.server.
PlanServer` and a :class:`~repro.cluster.coordinator.
ClusterCoordinator`: a coordinator's ``/metrics`` nests its front-door
counters under ``"coordinator"`` (and carries the cluster-wide worker
merge under ``"cluster"``), a server's payload *is* its counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs import Span
from repro.service.metrics import (
    LATENCY_BUCKETS_S,
    _quantile_s,
    merge_metrics,
)

#: endpoints the cross-check reconciles (the ones the stream drives)
CHECKED_ENDPOINTS = ("/plan", "/plan_batch", "/cache/get")


def frontdoor_metrics(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """The request-counting section of any server's ``/metrics``.

    A coordinator's payload nests its own counters under
    ``"coordinator"``; a plain server's payload is already the
    counters.  Both come back normalised through
    :func:`merge_metrics` so downstream code sees one shape.
    """
    if payload.get("role") == "coordinator":
        payload = payload["coordinator"]
    return merge_metrics([payload])


def overall_latency_ms(payload: Mapping[str, Any], q: float) -> float:
    """One quantile over *all* endpoints of a metrics payload merged."""
    buckets = [0] * (len(LATENCY_BUCKETS_S) + 1)
    count = 0
    max_s = 0.0
    for endpoint in payload.get("endpoints", {}).values():
        count += int(endpoint["count"])
        max_s = max(max_s, float(endpoint["max_s"]))
        for i, n in enumerate(endpoint["buckets"]):
            buckets[i] += int(n)
    return round(1000.0 * _quantile_s(buckets, count, max_s, q), 3)


@dataclass
class EndpointCheck:
    """One endpoint's client-vs-server request-count reconciliation."""

    endpoint: str
    #: requests the client attempted (each is exactly one HTTP request)
    attempted: int
    #: attempts that died in transport — the server never saw them
    unreachable: int
    #: the server's own counter delta across the run
    server_count: int

    @property
    def expected(self) -> int:
        return self.attempted - self.unreachable

    @property
    def matched(self) -> bool:
        return self.server_count == self.expected

    def as_dict(self) -> Dict[str, Any]:
        return {
            "endpoint": self.endpoint,
            "attempted": self.attempted,
            "unreachable": self.unreachable,
            "expected": self.expected,
            "server_count": self.server_count,
            "matched": self.matched,
        }


def cross_check(
    before: Mapping[str, Any],
    after: Mapping[str, Any],
    attempted: Mapping[str, int],
    unreachable: Mapping[str, int],
) -> List[EndpointCheck]:
    """Reconcile client-side counts against the server's own counters."""
    counts_before = frontdoor_metrics(before)["endpoints"]
    counts_after = frontdoor_metrics(after)["endpoints"]
    checks: List[EndpointCheck] = []
    for endpoint in CHECKED_ENDPOINTS:
        sent = int(attempted.get(endpoint, 0))
        if sent == 0:
            continue
        old = int(counts_before.get(endpoint, {}).get("count", 0))
        new = int(counts_after.get(endpoint, {}).get("count", 0))
        checks.append(
            EndpointCheck(
                endpoint=endpoint,
                attempted=sent,
                unreachable=int(unreachable.get(endpoint, 0)),
                server_count=new - old,
            )
        )
    return checks


@dataclass
class LoadtestReport:
    """Everything one load-test run measured, renderable and JSON-able."""

    target: str
    wire_profile: str
    seed: int
    threads: int
    target_rps: float
    duration_s: float
    #: wall-clock from first scheduled send to last completion
    elapsed_s: float
    #: operations attempted (one HTTP request each; weight may be >1)
    sent: int
    ok: int
    #: answered non-429 errors (4xx/5xx)
    errors: int
    #: admission refusals (the gate working, reported not budgeted)
    refused_429: int
    #: transport failures — never reached a healthy server
    unavailable: int
    #: flat planned-request units carried by the ok operations
    ok_weight: int
    error_budget: float
    #: merged client-side metrics payload (per-endpoint histograms)
    client_metrics: Dict[str, Any]
    #: server /metrics payloads around the run (raw, as fetched)
    server_before: Dict[str, Any] = field(default_factory=dict)
    server_after: Dict[str, Any] = field(default_factory=dict)
    checks: List[EndpointCheck] = field(default_factory=list)
    #: send-slot lag: how late the open-loop scheduler fired, p99 (ms)
    schedule_lag_p99_ms: float = 0.0
    #: 1-in-N trace sampling rate the run used (``None`` = no tracing)
    trace_sample: Optional[int] = None
    #: client root spans of the sampled operations, one per sampled op
    client_spans: List[Span] = field(default_factory=list)

    @property
    def achieved_rps(self) -> float:
        return self.sent / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def error_rate(self) -> float:
        return (
            (self.errors + self.unavailable) / self.sent if self.sent else 0.0
        )

    @property
    def p50_ms(self) -> float:
        return overall_latency_ms(self.client_metrics, 0.50)

    @property
    def p99_ms(self) -> float:
        return overall_latency_ms(self.client_metrics, 0.99)

    @property
    def server_check_ok(self) -> bool:
        return all(check.matched for check in self.checks)

    def trace_summary(self) -> Optional[Dict[str, Any]]:
        """The sampled-trace section of the report (``None`` untraced).

        The sampled root spans are the *client-observed* latency of the
        sampled operations; joining their trace ids against the
        target's ``--trace`` file (``repro trace``) attributes that
        tail stage by stage server-side.
        """
        if self.trace_sample is None:
            return None
        durations = sorted(span.duration_s for span in self.client_spans)

        def _q(q: float) -> float:
            if not durations:
                return 0.0
            rank = min(len(durations) - 1, int(q * len(durations)))
            return round(1000.0 * durations[rank], 3)

        slowest = sorted(
            self.client_spans, key=lambda s: s.duration_s, reverse=True
        )
        return {
            "sample": self.trace_sample,
            "sampled": len(self.client_spans),
            "p50_ms": _q(0.50),
            "p99_ms": _q(0.99),
            "slowest": [
                {
                    "trace_id": span.trace_id,
                    "name": span.name,
                    "ms": round(1000.0 * span.duration_s, 3),
                }
                for span in slowest[:5]
            ],
            "trace_ids": [span.trace_id for span in self.client_spans],
        }

    @property
    def passed(self) -> bool:
        return self.error_rate <= self.error_budget and self.server_check_ok

    @property
    def verdict(self) -> str:
        return "pass" if self.passed else "fail"

    def to_dict(self) -> Dict[str, Any]:
        trace = self.trace_summary()
        return {
            "target": self.target,
            **({"trace": trace} if trace is not None else {}),
            "wire_profile": self.wire_profile,
            "seed": self.seed,
            "threads": self.threads,
            "target_rps": self.target_rps,
            "duration_s": self.duration_s,
            "elapsed_s": round(self.elapsed_s, 4),
            "sent": self.sent,
            "ok": self.ok,
            "errors": self.errors,
            "refused_429": self.refused_429,
            "unavailable": self.unavailable,
            "ok_weight": self.ok_weight,
            "achieved_rps": round(self.achieved_rps, 2),
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "schedule_lag_p99_ms": round(self.schedule_lag_p99_ms, 3),
            "error_budget": self.error_budget,
            "error_rate": round(self.error_rate, 6),
            "server_check": [check.as_dict() for check in self.checks],
            "server_check_ok": self.server_check_ok,
            "verdict": self.verdict,
            "client_endpoints": self.client_metrics.get("endpoints", {}),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write_client_spans(self, path: str) -> int:
        """Append the sampled client root spans to a JSONL span file.

        ``repro loadtest --trace-file PATH`` uses this so ``repro trace
        PATH SERVER_TRACE...`` can assemble *complete* traces — the
        client span is the root every server-side span hangs from.
        """
        with open(path, "a", encoding="utf-8") as stream:
            for span in self.client_spans:
                stream.write(span.to_json_line() + "\n")
        return len(self.client_spans)

    def render(self) -> str:
        """The human-facing summary ``repro loadtest`` prints."""
        lines = [
            f"loadtest against {self.target} "
            f"(wire={self.wire_profile}, seed={self.seed}, "
            f"threads={self.threads})",
            f"  target: {self.target_rps:g} req/s for {self.duration_s:g}s"
            f" — sent {self.sent} requests in {self.elapsed_s:.2f}s",
            f"  achieved: {self.achieved_rps:.1f} req/s  "
            f"(schedule lag p99 {self.schedule_lag_p99_ms:.1f}ms)",
            f"  client latency: p50={self.p50_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms",
            f"  outcomes: ok={self.ok} errors={self.errors} "
            f"429={self.refused_429} unreachable={self.unavailable}",
        ]
        endpoints = self.client_metrics.get("endpoints", {})
        for name in sorted(endpoints):
            ep = endpoints[name]
            lines.append(
                f"    {name:<12} count={ep['count']:>6} "
                f"errors={ep['errors']:>4} p50={ep['p50_ms']}ms "
                f"p99={ep['p99_ms']}ms"
            )
        if self.checks:
            lines.append("  server cross-check (/metrics deltas):")
            for check in self.checks:
                state = "ok" if check.matched else "MISMATCH"
                lines.append(
                    f"    {check.endpoint:<12} client={check.expected:>6} "
                    f"server={check.server_count:>6} {state}"
                )
        else:
            lines.append("  server cross-check: skipped")
        trace = self.trace_summary()
        if trace is not None:
            lines.append(
                f"  traces: 1-in-{trace['sample']} sampled "
                f"{trace['sampled']} ops — sampled p50={trace['p50_ms']}ms "
                f"p99={trace['p99_ms']}ms"
            )
            for slow in trace["slowest"][:3]:
                lines.append(
                    f"    {slow['trace_id']}  {slow['name']:<18} "
                    f"{slow['ms']:.2f}ms"
                )
        lines.append(
            f"  error budget: {self.error_rate:.4%} observed vs "
            f"{self.error_budget:.4%} allowed — verdict: {self.verdict}"
        )
        return "\n".join(lines)
