"""Tests for repro.partition.recursive — the bisection baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.column_based import peri_sum_partition
from repro.partition.lower_bound import peri_sum_lower_bound
from repro.partition.recursive import recursive_bisection_partition

areas_lists = st.lists(
    st.floats(min_value=1e-3, max_value=1.0), min_size=1, max_size=16
).map(lambda v: (np.asarray(v) / np.sum(v)))


class TestRecursiveBisection:
    @given(areas=areas_lists)
    @settings(max_examples=60, deadline=None)
    def test_partition_is_exact(self, areas):
        recursive_bisection_partition(areas).validate(expected_areas=areas)

    def test_single_area(self):
        part = recursive_bisection_partition([1.0])
        assert part.sum_half_perimeters == pytest.approx(2.0)

    def test_two_equal_halves(self):
        part = recursive_bisection_partition([0.5, 0.5])
        assert part.sum_half_perimeters == pytest.approx(3.0)

    def test_power_of_two_equal_areas_optimal(self):
        """4 equal areas: bisection reproduces the 2x2 grid."""
        part = recursive_bisection_partition([0.25] * 4)
        assert part.sum_half_perimeters == pytest.approx(4.0)

    @given(areas=areas_lists)
    @settings(max_examples=60, deadline=None)
    def test_respects_lower_bound(self, areas):
        part = recursive_bisection_partition(areas)
        assert part.sum_half_perimeters >= peri_sum_lower_bound(areas) - 1e-9

    def test_comparable_to_column_based_but_unguaranteed(self):
        """Empirical ablation finding: bisection (not confined to column
        layouts) is competitive with the column DP on random instances —
        both land within ~5% of LB — but only the column-based algorithm
        carries the paper's 7/4 guarantee."""
        rng = np.random.default_rng(0)
        dp_ratios, rb_ratios = [], []
        for _ in range(20):
            areas = rng.dirichlet(np.ones(10))
            lb = peri_sum_lower_bound(areas)
            dp_ratios.append(
                peri_sum_partition(areas).sum_half_perimeters / lb
            )
            rb_ratios.append(
                recursive_bisection_partition(areas).sum_half_perimeters / lb
            )
        assert np.mean(dp_ratios) < 1.06
        assert np.mean(rb_ratios) < 1.06
        # neither dominates by more than a few percent in aggregate
        assert abs(np.mean(dp_ratios) - np.mean(rb_ratios)) < 0.03

    def test_owner_mapping_complete(self):
        areas = np.array([0.4, 0.35, 0.25])
        owners = recursive_bisection_partition(areas).by_owner()
        assert set(owners) == {0, 1, 2}
