"""Direct unit tests for the plan stores (no session in the loop).

Covers the satellite fix of ISSUE 4: LRU eviction in
``MemoryPlanCache.put`` (evict oldest, count it, leave hit/miss
statistics untouched) and the documented ``clear()``-resets-stats
behaviour — plus the sqlite and tiered stores' contract at the same
altitude.
"""

import pickle

import numpy as np
import pytest

from repro import registry
from repro.core.cache import (
    CacheStats,
    MemoryPlanCache,
    PlanCache,
    PlanStore,
    SQLitePlanCache,
    TieredPlanCache,
    cache_from_spec,
    encode_key,
    plan_cache_key,
)
from repro.core.pipeline import PlanRequest, plan_request
from repro.platform.star import StarPlatform


def make_entry(n: float, strategy: str = "het"):
    """A real (key, PlanResult) pair for a small platform."""
    platform = StarPlatform.from_speeds([1.0, 2.0, 4.0])
    request = PlanRequest(platform=platform, N=n, strategy=strategy)
    factory = registry.get("strategy", strategy)
    return plan_cache_key(request, factory), plan_request(request)


def results_equal(a, b) -> bool:
    """Content equality for PlanResult (ndarray fields need care)."""
    return (
        a.request.strategy == b.request.strategy
        and a.request.N == b.request.N
        and a.plan.strategy == b.plan.strategy
        and a.plan.N == b.plan.N
        and a.plan.comm_volume == b.plan.comm_volume
        and a.plan.imbalance == b.plan.imbalance
        and np.array_equal(a.plan.speeds, b.plan.speeds)
        and np.array_equal(a.plan.finish_times, b.plan.finish_times)
    )


class TestMemoryLRU:
    def test_plancache_alias_preserved(self):
        assert PlanCache is MemoryPlanCache

    def test_eviction_drops_oldest_key_only(self):
        cache = MemoryPlanCache(max_entries=2)
        entries = [make_entry(n) for n in (100.0, 200.0, 300.0)]
        for key, result in entries:
            cache.put(key, result)
        assert len(cache) == 2
        # the oldest key is gone; the two younger ones survive
        assert cache.get(entries[0][0]) is None
        assert cache.get(entries[1][0]) is not None
        assert cache.get(entries[2][0]) is not None

    def test_eviction_reports_and_leaves_hit_miss_stats_unchanged(self):
        cache = MemoryPlanCache(max_entries=2)
        for n in (100.0, 200.0, 300.0, 400.0):
            key, result = make_entry(n)
            cache.put(key, result)
        stats = cache.stats
        # puts past capacity evict and report...
        assert stats.evictions == 2
        assert stats.entries == 2
        # ...but never touch the lookup counters
        assert stats.hits == 0
        assert stats.misses == 0

    def test_get_refreshes_lru_order(self):
        cache = MemoryPlanCache(max_entries=2)
        a, b, c = (make_entry(n) for n in (1.0, 2.0, 3.0))
        cache.put(*a)
        cache.put(*b)
        assert cache.get(a[0]) is not None  # a is now most recent
        cache.put(*c)  # evicts b, not a
        assert cache.get(a[0]) is not None
        assert cache.get(b[0]) is None

    def test_put_existing_key_at_capacity_does_not_evict(self):
        cache = MemoryPlanCache(max_entries=2)
        a, b = (make_entry(n) for n in (1.0, 2.0))
        cache.put(*a)
        cache.put(*b)
        cache.put(*a)  # overwrite, still 2 entries
        assert len(cache) == 2
        assert cache.stats.evictions == 0

    def test_clear_resets_entries_and_all_statistics(self):
        cache = MemoryPlanCache(max_entries=2)
        for n in (1.0, 2.0, 3.0):
            cache.put(*make_entry(n))
        cache.get(object())  # a miss
        cache.clear()
        stats = cache.stats
        assert len(cache) == 0
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            MemoryPlanCache(max_entries=0)


class TestSQLiteStore:
    def test_roundtrip_and_persistence(self, tmp_path):
        path = tmp_path / "plans.db"
        key, result = make_entry(500.0)
        store = SQLitePlanCache(path)
        assert store.get(key) is None  # miss counted
        store.put(key, result)
        assert results_equal(store.get(key), result)
        store.close()
        # a fresh instance (fresh process, after a crash, ...) sees the
        # entry *and* the persisted counters
        reopened = SQLitePlanCache(path)
        assert results_equal(reopened.get(key), result)
        stats = reopened.stats
        assert stats.hits == 2 and stats.misses == 1
        assert stats.entries == len(reopened) == 1
        assert stats.max_entries == 0  # unbounded
        assert "unbounded" in stats.render()
        reopened.close()

    def test_clear_resets_rows_and_persisted_stats(self, tmp_path):
        store = SQLitePlanCache(tmp_path / "plans.db")
        key, result = make_entry(500.0)
        store.put(key, result)
        store.get(key)
        store.clear()
        assert len(store) == 0
        stats = store.stats
        assert (stats.hits, stats.misses) == (0, 0)

    def test_export_import_moves_entries(self, tmp_path):
        src = SQLitePlanCache(tmp_path / "src.db")
        entries = [make_entry(n) for n in (1.0, 2.0, 3.0)]
        for key, result in entries:
            src.put(key, result)
        out = tmp_path / "dump.pkl"
        assert src.export_file(out) == 3
        dst = SQLitePlanCache(tmp_path / "dst.db")
        assert dst.import_file(out) == 3
        for key, result in entries:
            assert results_equal(dst.get(key), result)

    def test_import_rejects_foreign_files_before_unpickling(self, tmp_path):
        """No header → rejected without ever reaching pickle.load."""
        bogus = tmp_path / "bogus.pkl"
        bogus.write_bytes(pickle.dumps({"rows": []}))
        store = SQLitePlanCache(tmp_path / "plans.db")
        with pytest.raises(ValueError, match="missing header"):
            store.import_file(bogus)

    def test_import_rejects_malformed_payloads(self, tmp_path):
        from repro.core.cache import _EXPORT_MAGIC

        store = SQLitePlanCache(tmp_path / "plans.db")
        for body in (
            b"not a pickle at all",
            pickle.dumps({"format": "repro-plan-cache", "version": 1}),
            pickle.dumps(
                {
                    "format": "repro-plan-cache",
                    "version": 1,
                    "rows": [("too", "short")],
                }
            ),
            pickle.dumps({"format": "repro-plan-cache", "version": 99}),
            pickle.dumps(["not", "a", "dict"]),
        ):
            bad = tmp_path / "bad.pkl"
            bad.write_bytes(_EXPORT_MAGIC + body)
            with pytest.raises(ValueError):
                store.import_file(bad)

    def test_tilde_path_expanded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        store = SQLitePlanCache("~/nested/plans.db")
        store.close()
        assert (tmp_path / "nested" / "plans.db").exists()


class TestTieredStore:
    def test_write_through_and_promote_on_hit(self, tmp_path):
        tiered = TieredPlanCache(tmp_path / "plans.db")
        key, result = make_entry(500.0)
        tiered.put(key, result)
        # write-through: both tiers hold it
        assert tiered.memory.get(key) is not None
        assert tiered.disk.get(key) is not None
        # evict the memory copy, then a tiered get must promote it back
        tiered.memory.clear()
        assert results_equal(tiered.get(key), result)  # disk hit
        assert tiered.memory.get(key) is not None  # promoted

    def test_stats_report_per_tier_hits(self, tmp_path):
        # a one-entry memory front, so a second put LRU-evicts the
        # first key from memory without touching any counters
        tiered = TieredPlanCache(
            tmp_path / "plans.db", memory=MemoryPlanCache(max_entries=1)
        )
        key, result = make_entry(500.0)
        tiered.get(key)  # overall miss
        tiered.put(key, result)
        tiered.get(key)  # memory hit
        tiered.put(*make_entry(900.0))  # evicts `key` from memory
        tiered.get(key)  # disk hit (promotes)
        stats = tiered.stats
        tiers = dict(stats.tier_hits)
        assert tiers["memory"] == 1
        assert tiers["disk"] == 1
        assert stats.hits == 2 and stats.misses == 1
        assert "tier hits" in stats.render()

    def test_needs_path_or_disk(self):
        with pytest.raises(ValueError, match="path or a back-tier store"):
            TieredPlanCache()


class TestSpecsAndKeys:
    def test_cache_from_spec_variants(self, tmp_path):
        assert isinstance(cache_from_spec("memory"), MemoryPlanCache)
        sized = cache_from_spec("memory:7")
        assert sized.max_entries == 7
        sqlite = cache_from_spec(f"sqlite:{tmp_path / 'a.db'}")
        assert isinstance(sqlite, SQLitePlanCache)
        tiered = cache_from_spec(f"tiered:{tmp_path / 'b.db'}")
        assert isinstance(tiered, TieredPlanCache)

    def test_cache_from_spec_passthrough_and_errors(self, tmp_path):
        store = MemoryPlanCache()
        assert cache_from_spec(store) is store
        with pytest.raises(ValueError, match="bad cache spec 'sqlite'"):
            cache_from_spec("sqlite")
        with pytest.raises(ValueError, match="bad cache spec 'tiered'"):
            cache_from_spec("tiered")
        with pytest.raises(ValueError, match="integer"):
            cache_from_spec("memory:lots")
        # sizes the store itself rejects are spec errors too, so the
        # CLI reports them without a traceback
        with pytest.raises(ValueError, match="bad cache spec 'memory:0'"):
            cache_from_spec("memory:0")
        with pytest.raises(ValueError, match="unknown cache"):
            cache_from_spec("redis:somewhere")

    def test_stores_satisfy_protocol(self, tmp_path):
        assert isinstance(MemoryPlanCache(), PlanStore)
        assert isinstance(SQLitePlanCache(tmp_path / "p.db"), PlanStore)
        assert isinstance(TieredPlanCache(tmp_path / "p.db"), PlanStore)

    def test_encode_key_stable_and_distinct(self):
        key_a, _ = make_entry(100.0)
        key_b, _ = make_entry(200.0)
        assert encode_key(key_a) == encode_key(key_a)
        assert encode_key(key_a) != encode_key(key_b)
        assert len(encode_key(key_a)) == 64  # sha256 hex

    def test_registry_kind_lists_builtin_stores(self):
        assert {"memory", "sqlite", "tiered", "http"} <= set(
            registry.available("cache")
        )


class TestCacheStatsRender:
    def test_bounded_render_shows_capacity(self):
        stats = CacheStats(
            hits=3, misses=1, entries=2, max_entries=8, evictions=0
        )
        text = stats.render()
        assert "2/8" in text and "75.0%" in text
