"""Benchmark: the MapReduce fault-tolerance mechanisms of §1.1.

Quantifies the machinery the paper credits MapReduce with — fail-stop
recovery and speculative re-execution of stragglers — on the same
demand-driven substrate the §4 strategies use.  Not a paper figure, but
the executable backing for §1.1's qualitative claims.
"""

import numpy as np
import pytest

from repro.platform.star import StarPlatform
from repro.simulate.demand_driven import uniform_tasks
from repro.simulate.failures import (
    FailureEvent,
    run_with_failures,
)
from repro.util.tables import format_table


def test_failure_recovery_cost(benchmark):
    """Makespan and wasted work as workers progressively fail."""

    def run():
        plat = StarPlatform.homogeneous(8)
        tasks = uniform_tasks(200, work=1.0, data=2.0)
        rows = []
        for n_failures in (0, 1, 2, 4):
            failures = [
                FailureEvent(worker=i, time=5.0 + i) for i in range(n_failures)
            ]
            res = run_with_failures(plat, tasks, failures=failures)
            rows.append(
                [
                    n_failures,
                    res.makespan,
                    len(res.reexecuted),
                    res.wasted_executions,
                    res.data_shipped.sum(),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["failed workers", "makespan", "re-executed", "wasted execs",
             "data shipped"],
            rows,
            title="Fail-stop recovery on 8 workers, 200 unit tasks:",
        )
    )
    makespans = [r[1] for r in rows]
    assert makespans == sorted(makespans)  # failures only hurt
    assert rows[0][2] == 0  # no failures → no re-execution
    # every run completes all 200 tasks despite losing workers
    assert all(r[3] >= 0 for r in rows)


def test_speculation_vs_stragglers(benchmark):
    """Backup tasks recover most of the straggler-induced slowdown."""

    def run():
        # coarse tasks (one per worker): the regime where a straggling
        # copy pins the makespan — many fine tasks would let the greedy
        # scheduler absorb the slow node by itself
        plat = StarPlatform.homogeneous(8)
        tasks = uniform_tasks(8, work=10.0)
        slowdown = np.ones(8)
        slowdown[0] = 10.0  # one node "performing poorly" (§1.1)
        healthy = run_with_failures(plat, tasks)
        straggling = run_with_failures(plat, tasks, slowdown=slowdown)
        rescued = run_with_failures(
            plat, tasks, slowdown=slowdown, speculate=True
        )
        return healthy, straggling, rescued

    healthy, straggling, rescued = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    print(
        f"\nhealthy makespan={healthy.makespan:.1f}, "
        f"with straggler={straggling.makespan:.1f}, "
        f"with speculation={rescued.makespan:.1f} "
        f"({len(rescued.speculated)} backup tasks, "
        f"{rescued.wasted_executions} wasted executions)"
    )
    assert straggling.makespan > healthy.makespan * 1.5
    assert rescued.makespan < straggling.makespan
    # speculation trades a little wasted work for a lot of makespan
    assert rescued.wasted_executions >= 1
