"""Affinity-aware demand-driven scheduling — the paper's proposal, built.

The conclusion of the paper suggests the fix for MapReduce without
changing the programming model: "favoring among all available tasks on
the master those that share blocks with data already stored on a slave
processor in the demand-driven process would improve the results."

This module implements exactly that scheduler for outer-product block
grids and measures how much communication it recovers:

* tasks are cells of a ``G × G`` block grid (side ``d`` each); a task at
  ``(r, c)`` needs the ``a``-segment ``r`` and ``b``-segment ``c``;
* a worker caches every segment it has received;
* **plain** demand-driven hands a free worker the next unassigned cell
  in row-major order (Hadoop's behaviour, no locality);
* **affinity** demand-driven hands it the unassigned cell whose data
  overlaps most with the worker's cache (2 = both segments cached,
  1 = one, 0 = none), breaking ties in row-major order.

Both return per-worker shipped volumes, so the ablation bench
(`benchmarks/bench_ablation_affinity.py`) can quantify the paper's
closing claim.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_integer, check_positive

Cell = Tuple[int, int]


@dataclass(frozen=True)
class GridScheduleResult:
    """Outcome of scheduling a block grid on the platform."""

    grid: int
    block_side: float
    policy: str
    #: per-worker cells executed
    assignment: tuple
    finish_times: np.ndarray
    #: per-worker volume shipped (segments fetched × d)
    shipped: np.ndarray
    makespan: float

    @property
    def total_shipped(self) -> float:
        return float(self.shipped.sum())

    @property
    def load_imbalance(self) -> float:
        t = self.finish_times
        if t.size <= 1:
            return 0.0
        tmin, tmax = float(t.min()), float(t.max())
        if tmin == 0.0:
            return float("inf") if tmax > 0 else 0.0
        return (tmax - tmin) / tmin


class _SegmentCache:
    """A per-worker LRU cache of vector segments.

    ``capacity`` is the number of segments held (rows + columns
    combined); ``None`` means unbounded (the paper's framing, where
    only shipping is priced).  LRU eviction models a real worker with
    finite memory.
    """

    def __init__(self, capacity: int | None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: dict[tuple[str, int], int] = {}
        self._clock = 0

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries

    def touch(self, key: tuple[str, int]) -> bool:
        """Access ``key``; returns True on a hit, False on a (counted)
        miss that inserts the key, possibly evicting the LRU entry."""
        self._clock += 1
        if key in self._entries:
            self._entries[key] = self._clock
            return True
        if self.capacity == 0:
            return False
        if self.capacity is not None and len(self._entries) >= self.capacity:
            lru = min(self._entries, key=self._entries.get)
            del self._entries[lru]
        self._entries[key] = self._clock
        return False


def _run(
    platform: StarPlatform,
    grid: int,
    block_side: float,
    affinity: bool,
    cache_capacity: int | None = None,
) -> GridScheduleResult:
    p = platform.size
    w = platform.cycle_times
    work = block_side * block_side
    unassigned: Set[Cell] = {(r, c) for r in range(grid) for c in range(grid)}
    caches: List[_SegmentCache] = [
        _SegmentCache(cache_capacity) for _ in range(p)
    ]
    assignment: List[List[Cell]] = [[] for _ in range(p)]
    shipped = np.zeros(p)
    finish = np.zeros(p)

    heap: List[tuple[float, int]] = [(0.0, i) for i in range(p)]
    heapq.heapify(heap)

    def pick(i: int) -> Cell:
        if not affinity:
            return min(unassigned)  # row-major order
        best: Cell | None = None
        best_key: tuple | None = None
        for cell in unassigned:
            r, c = cell
            overlap = (("row", r) in caches[i]) + (("col", c) in caches[i])
            key = (-overlap, r, c)  # max overlap, then row-major
            if best_key is None or key < best_key:
                best, best_key = cell, key
        assert best is not None
        return best

    while unassigned:
        free_at, i = heapq.heappop(heap)
        cell = pick(i)
        unassigned.discard(cell)
        r, c = cell
        fetch = 0.0
        if not caches[i].touch(("row", r)):
            fetch += block_side
        if not caches[i].touch(("col", c)):
            fetch += block_side
        shipped[i] += fetch
        done = free_at + work * w[i]
        finish[i] = done
        assignment[i].append(cell)
        heapq.heappush(heap, (done, i))

    return GridScheduleResult(
        grid=grid,
        block_side=block_side,
        policy="affinity" if affinity else "plain",
        assignment=tuple(tuple(cells) for cells in assignment),
        finish_times=finish,
        shipped=shipped,
        makespan=float(finish.max()),
    )


@register(
    "simulation",
    "grid-demand-driven",
    summary="Demand-driven grid schedule with data-reuse affinity",
)
def run_grid_demand_driven(
    platform: StarPlatform,
    grid: int,
    block_side: float = 1.0,
    policy: str = "plain",
    cache_capacity: int | None = None,
) -> GridScheduleResult:
    """Schedule all cells of a ``grid²`` block grid under ``policy``.

    ``policy`` is ``"plain"`` (Hadoop-style, no locality) or
    ``"affinity"`` (the paper's proposed improvement).  By default
    caching is unbounded (workers keep every segment), matching the
    paper's framing where the cost is the *shipping*, not the storage;
    pass ``cache_capacity`` (segments per worker, LRU) to model finite
    memory — savings degrade gracefully toward the plain volume as the
    cache shrinks.
    """
    check_integer(grid, "grid", minimum=1)
    check_positive(block_side, "block_side")
    if policy not in ("plain", "affinity"):
        raise ValueError(f"policy must be 'plain' or 'affinity', got {policy!r}")
    return _run(
        platform,
        grid,
        block_side,
        affinity=(policy == "affinity"),
        cache_capacity=cache_capacity,
    )


def affinity_savings(
    platform: StarPlatform, grid: int, block_side: float = 1.0
) -> dict:
    """Run both policies; report volumes and the saved fraction."""
    plain = run_grid_demand_driven(platform, grid, block_side, "plain")
    aff = run_grid_demand_driven(platform, grid, block_side, "affinity")
    saved = plain.total_shipped - aff.total_shipped
    return {
        "plain": plain,
        "affinity": aff,
        "saved_volume": saved,
        "saved_fraction": saved / plain.total_shipped if plain.total_shipped else 0.0,
    }
