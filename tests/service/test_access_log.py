"""Structured access logging: format/parse, server + coordinator hooks."""

import io

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.service.client import PlanServiceError, ServiceClient
from repro.service.metrics import (
    AccessLog,
    format_access_line,
    parse_access_line,
)
from repro.service.server import PlanServer
from repro.loadtest import request_stream


class TestFormatParse:
    def test_round_trip(self):
        line = format_access_line(
            "/plan", 200, 0.001234, wire="binary-v2", nbytes=456
        )
        parsed = parse_access_line(line)
        assert parsed["endpoint"] == "/plan"
        assert parsed["status"] == 200
        assert parsed["elapsed_ms"] == pytest.approx(1.234)
        assert parsed["wire"] == "binary-v2"
        assert parsed["bytes"] == 456
        assert parsed["ts"].endswith("+00:00")
        assert parsed["trace"] == "-"  # untraced request

    def test_trace_id_round_trips(self):
        line = format_access_line(
            "/plan_batch", 200, 0.002, trace="deadbeefcafef00d"
        )
        assert parse_access_line(line)["trace"] == "deadbeefcafef00d"

    def test_empty_trace_becomes_dash(self):
        assert parse_access_line(
            format_access_line("/plan", 200, 0.0, trace="")
        )["trace"] == "-"

    def test_parse_rejects_missing_trace_field(self):
        # a pre-trace-era line is incomplete now, by design: consumers
        # must never silently read half a schema
        line = (
            "ts=x endpoint=/plan status=200 elapsed_ms=1.0 wire=- bytes=0"
        )
        with pytest.raises(ValueError, match=r"missing field.*trace"):
            parse_access_line(line)

    def test_explicit_timestamp(self):
        line = format_access_line(
            "/healthz", 200, 0.0, ts="2026-08-08T00:00:00.000+00:00"
        )
        assert parse_access_line(line)["ts"] == "2026-08-08T00:00:00.000+00:00"

    def test_empty_wire_becomes_dash(self):
        assert parse_access_line(
            format_access_line("/metrics", 200, 0.0, wire="")
        )["wire"] == "-"

    def test_parse_rejects_non_kv_token(self):
        with pytest.raises(ValueError, match="not an access-log token"):
            parse_access_line("ts=x endpoint=/plan garbage")

    def test_parse_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing field"):
            parse_access_line("ts=x endpoint=/plan status=200")


class TestAccessLog:
    def test_records_to_stream(self):
        buf = io.StringIO()
        log = AccessLog(buf)
        log.record("/plan", 200, 0.002, wire="pickle-v1", nbytes=10)
        log.record("/plan", 500, 0.004)
        assert log.lines_written == 2
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert parse_access_line(lines[1])["status"] == 500

    def test_open_appends_to_file(self, tmp_path):
        path = tmp_path / "access.log"
        log = AccessLog.open(str(path))
        log.record("/plan", 200, 0.001)
        log.close()
        log = AccessLog.open(str(path))
        log.record("/plan_batch", 200, 0.002)
        log.close()
        lines = path.read_text().splitlines()
        assert [parse_access_line(l)["endpoint"] for l in lines] == [
            "/plan",
            "/plan_batch",
        ]

    def test_closed_stream_never_raises(self):
        buf = io.StringIO()
        log = AccessLog(buf)
        buf.close()
        log.record("/plan", 200, 0.001)  # must not raise
        assert log.lines_written == 0

    def test_close_leaves_borrowed_streams_open(self):
        buf = io.StringIO()
        AccessLog(buf).close()
        assert not buf.closed


class TestServerHook:
    def test_every_response_logged_and_counted(self):
        buf = io.StringIO()
        with PlanServer(access_log=AccessLog(buf)) as server:
            client = ServiceClient(server.url, retries=0)
            op = request_stream(1, seed=1, mix={"plan": 1.0})[0]
            client.plan(op.payload)
            client.healthz()
            with pytest.raises(PlanServiceError):
                client.get_json("/nonsense")
            metrics = server.metrics.payload()["endpoints"]
        parsed = [
            parse_access_line(l) for l in buf.getvalue().splitlines()
        ]
        by_endpoint = {}
        for entry in parsed:
            by_endpoint.setdefault(entry["endpoint"], []).append(entry)
        # the log and the histograms must agree request-for-request
        for endpoint, entries in by_endpoint.items():
            assert metrics[endpoint]["count"] == len(entries)
        plan_lines = by_endpoint["/plan"]
        assert plan_lines[0]["status"] == 200
        assert plan_lines[0]["wire"] in ("pickle-v1", "binary-v2")
        assert plan_lines[0]["bytes"] > 0
        # the unknown path is logged under the bounded "other" bucket
        assert by_endpoint["other"][0]["status"] == 404
        # GETs carry no envelope: wire is the "-" placeholder
        assert by_endpoint["/healthz"][0]["wire"] == "-"

    def test_server_without_log_still_serves(self):
        with PlanServer() as server:
            assert ServiceClient(server.url).healthz()["status"] == "ok"

    def test_close_closes_owned_log(self, tmp_path):
        path = tmp_path / "srv.log"
        server = PlanServer(access_log=AccessLog.open(str(path)))
        server.start()
        ServiceClient(server.url).healthz()
        server.close()
        assert server.access_log._stream.closed
        assert len(path.read_text().splitlines()) >= 1


class TestCoordinatorHook:
    def test_frontdoor_requests_logged(self):
        buf = io.StringIO()
        with PlanServer() as worker:
            with ClusterCoordinator(
                workers=[worker.url],
                heartbeat_interval=30.0,
                access_log=AccessLog(buf),
            ) as coordinator:
                client = ServiceClient(coordinator.url, retries=0)
                op = request_stream(1, seed=1, mix={"plan": 1.0})[0]
                client.plan(op.payload)
                client.get_json("/cluster/status")
                front = coordinator.metrics.payload()["endpoints"]
        parsed = [
            parse_access_line(l) for l in buf.getvalue().splitlines()
        ]
        logged = {}
        for entry in parsed:
            logged[entry["endpoint"]] = logged.get(entry["endpoint"], 0) + 1
        assert logged["/plan"] == front["/plan"]["count"] == 1
        assert logged["/cluster/status"] == 1


class TestCLIWiring:
    def test_log_flag_parsing(self):
        from repro.cli import _access_log_from_arg, build_parser

        parser = build_parser()
        absent = parser.parse_args(["serve"])
        assert absent.log is None
        assert _access_log_from_arg(absent) is None
        bare = parser.parse_args(["serve", "--log"])
        assert bare.log == "-"
        cluster = parser.parse_args(["cluster", "up", "--log", "x.log"])
        assert cluster.log == "x.log"

    def test_log_flag_builds_file_log(self, tmp_path):
        import argparse

        from repro.cli import _access_log_from_arg

        path = tmp_path / "cli.log"
        log = _access_log_from_arg(argparse.Namespace(log=str(path)))
        log.record("/plan", 200, 0.001)
        log.close()
        assert parse_access_line(path.read_text().strip())["status"] == 200

    def test_bare_log_flag_streams_to_stderr(self):
        import argparse
        import sys

        from repro.cli import _access_log_from_arg

        log = _access_log_from_arg(argparse.Namespace(log="-"))
        assert log._stream is sys.stderr
        log.close()  # borrowed: must not close stderr
        assert not sys.stderr.closed

    def test_trace_flag_parsing(self):
        from repro.cli import _span_recorder_from_arg, build_parser

        parser = build_parser()
        absent = parser.parse_args(["serve"])
        assert absent.trace is None
        assert _span_recorder_from_arg(absent, "server") is None
        bare = parser.parse_args(["serve", "--trace"])
        assert bare.trace == "-"
        # cluster workers are subprocesses writing PATH.wN: a path is
        # mandatory there, so the flag takes a plain argument
        cluster = parser.parse_args(["cluster", "up", "--trace", "x.jsonl"])
        assert cluster.trace == "x.jsonl"

    def test_trace_flag_builds_recorders(self, tmp_path):
        import argparse
        import sys

        from repro.cli import _span_recorder_from_arg

        bare = _span_recorder_from_arg(
            argparse.Namespace(trace="-"), "server"
        )
        assert bare._stream is sys.stderr
        assert bare.service == "server"
        bare.close()
        assert not sys.stderr.closed

        path = tmp_path / "spans.jsonl"
        recorder = _span_recorder_from_arg(
            argparse.Namespace(trace=str(path)), "coordinator"
        )
        assert recorder.service == "coordinator"
        recorder.close()
        assert path.exists()
