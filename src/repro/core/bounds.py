"""Section 4 — closed-form communication volumes and bounds.

All formulas are for the outer product :math:`a^T \\times b` of two
vectors of size ``N`` on workers with speeds :math:`s_1 \\le \\dots \\le
s_p` and normalized speeds :math:`x_i = s_i/\\sum_k s_k`:

* lower bound (§4.3): each worker ideally gets an
  :math:`N\\sqrt{x_i} \\times N\\sqrt{x_i}` square, so
  :math:`LB = 2N\\sum_i \\sqrt{x_i}`;
* **Homogeneous Blocks** (§4.1.1): square chunks sized for the slowest
  worker, :math:`Comm_{hom} = 2N\\sqrt{\\sum_i s_i / s_1}`;
* **Heterogeneous Blocks** (§4.1.2): PERI-SUM partitioning,
  :math:`Comm_{het} \\le \\frac{7N}{2}\\sum_i\\sqrt{x_i}`;
* the gain ratio (§4.1.3):
  :math:`\\rho \\ge \\frac{4}{7}\\frac{\\sum_i s_i}{\\sqrt{s_1}\\sum_i\\sqrt{s_i}}`,
  and for half-slow/half-fast(k) platforms
  :math:`\\rho \\ge \\frac{1+k}{1+\\sqrt{k}} \\ge \\sqrt{k} - 1`.

The same formulas govern matrix multiplication (§4.2) with the volume
scaled by ``N`` steps: comm is proportional to the sum of
half-perimeters either way, so every ratio carries over unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive, check_positive_array

#: Guaranteed approximation factor of the column-based PERI-SUM
#: partitioner versus the lower bound (§4.1.2): the algorithm's cost
#: satisfies ``C_hat <= 1 + (5/4) * LB`` and, since ``LB >= 2``,
#: ``C_hat <= (7/4) * LB``.  Asymptotically (``LB >> 2``) the effective
#: ratio tends to 5/4; observed ratios in §4.3 are within 2%.
PERI_SUM_GUARANTEE = 7.0 / 4.0

#: The additive form of the same guarantee: ``C_hat <= PERI_SUM_ADDITIVE
#: + PERI_SUM_ASYMPTOTIC * LB``.
PERI_SUM_ADDITIVE = 1.0
PERI_SUM_ASYMPTOTIC = 5.0 / 4.0


def normalized_speeds(speeds) -> np.ndarray:
    """:math:`x_i = s_i / \\sum_k s_k`."""
    s = check_positive_array(speeds, "speeds")
    return s / s.sum()


def lower_bound_comm(N: float, speeds) -> float:
    """:math:`LB = 2N \\sum_i \\sqrt{x_i}` — ideal disjoint squares (§4.3).

    Corresponds to giving worker *i* an
    :math:`N\\sqrt{x_i} \\times N\\sqrt{x_i}` square of the computational
    domain; squares minimise half-perimeter at fixed area, and the bound
    ignores the (generally impossible) requirement that the squares tile
    the domain, hence *lower* bound.
    """
    check_positive(N, "N")
    x = normalized_speeds(speeds)
    return float(2.0 * N * np.sqrt(x).sum())


def comm_hom_ideal(N: float, speeds) -> float:
    """Idealised Homogeneous Blocks volume (§4.1.1).

    Block side :math:`D = \\sqrt{x_1} N` (one block for the slowest
    worker), :math:`1/x_1` blocks in total, each shipping :math:`2D`:

    .. math:: Comm_{hom} = \\frac{1}{x_1} \\cdot 2N\\sqrt{x_1}
              = 2N\\sqrt{\\frac{\\sum_i s_i}{s_1}}.

    Assumes every count is integral — the realistic, rounded variant is
    :class:`repro.blocks.HomogeneousBlocksStrategy`.
    """
    check_positive(N, "N")
    s = check_positive_array(speeds, "speeds")
    return float(2.0 * N * np.sqrt(s.sum() / s.min()))


def comm_het_upper_bound(N: float, speeds) -> float:
    """Guaranteed Heterogeneous Blocks volume (§4.1.2).

    .. math:: Comm_{het} \\le \\frac{7N}{2} \\sum_i \\sqrt{x_i}
              = \\frac{7N}{2}\\frac{\\sum_i \\sqrt{s_i}}
                               {\\sqrt{\\sum_i s_i}}.
    """
    check_positive(N, "N")
    x = normalized_speeds(speeds)
    return float(3.5 * N * np.sqrt(x).sum())


def rho_lower_bound(speeds) -> float:
    """Guaranteed gain of heterogeneity-aware partitioning (§4.1.3).

    .. math:: \\rho = \\frac{Comm_{hom}}{Comm_{het}}
              \\ge \\frac{4}{7} \\cdot
              \\frac{\\sum_i s_i}{\\sqrt{s_1} \\sum_i \\sqrt{s_i}}.

    Equals :math:`4/7 \\cdot \\sqrt{p}/p \\cdot p = 4\\sqrt{p}/7/\\dots`
    — for homogeneous platforms reduces to the (vacuous) statement
    :math:`\\rho \\ge 4/7`; grows without bound with heterogeneity.
    """
    s = check_positive_array(speeds, "speeds")
    return float((4.0 / 7.0) * s.sum() / (np.sqrt(s.min()) * np.sqrt(s).sum()))


def half_fast_rho_bound(k: float) -> float:
    """The §4.1.3 closing example: half slow (1), half fast (k) workers.

    .. math:: \\rho \\ge \\frac{1 + k}{1 + \\sqrt{k}} \\ge \\sqrt{k} - 1.

    (The first expression is exact for the 4/7-free form of the ratio
    with equal worker counts; the second is the paper's simplification.)
    """
    check_positive(k, "k")
    return float((1.0 + k) / (1.0 + np.sqrt(k)))


def half_fast_rho_simple(k: float) -> float:
    """The weaker closed form :math:`\\sqrt{k} - 1` from §4.1.3."""
    check_positive(k, "k")
    return float(np.sqrt(k) - 1.0)


def ratio_to_lower_bound(volume: float, N: float, speeds) -> float:
    """Normalise a measured volume by :func:`lower_bound_comm`.

    This is exactly the y-axis of the paper's Figure 4.
    """
    lb = lower_bound_comm(N, speeds)
    if volume < 0:
        raise ValueError(f"volume must be non-negative, got {volume}")
    return float(volume / lb)


def peri_sum_lower_bound(areas) -> float:
    """Half-perimeter lower bound on the *unit* square: ``2 Σ √a_i``.

    Unit-square analogue of :func:`lower_bound_comm` (the ``N``-scaled
    version); used directly by the partition package.
    """
    a = check_positive_array(areas, "areas")
    return float(2.0 * np.sqrt(a).sum())
