"""Cross-profile service tests: pickle-v1 and binary-v2 interchangeably.

The acceptance contract:

* the same :class:`PlanRequest` posted through a pickle-v1 client and a
  binary-v2 client returns bit-identical :class:`PlanResult`\\ s;
* cache entries are profile-agnostic — stored through one profile,
  served through the other;
* ``/healthz`` advertises the server's profiles and the client
  handshake negotiates (or refuses) *before* shipping payloads: a
  pickle-v1 client against a ``--wire safe`` server fails with a clear
  :class:`PlanServiceError`;
* raw hostile bodies (wrong profile, truncated v2 frames, garbage) get
  a 400 with the wire layer's message, never a hung or crashed server.
"""

import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import registry
from repro.core.cache import plan_cache_key
from repro.core.pipeline import PlanRequest, plan_request
from repro.core.session import PlannerSession
from repro.core.vectorize import VectorGroup
from repro.platform.star import StarPlatform
from repro.service import wire
from repro.service.client import (
    HTTPPlanCache,
    PlanServiceError,
    RemoteBackend,
    ServiceClient,
)
from repro.service.server import PlanServer


@pytest.fixture()
def server():
    with PlanServer(port=0, cache="memory") as srv:
        yield srv


@pytest.fixture()
def safe_server():
    with PlanServer(port=0, cache="memory", wire_mode="safe") as srv:
        yield srv


@pytest.fixture()
def platform():
    return StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])


def assert_results_identical(a, b):
    """Two PlanResults describe exactly the same plan (bit-identical)."""
    assert a.request == b.request
    assert a.plan.strategy == b.plan.strategy
    assert a.plan.N == b.plan.N
    assert a.plan.comm_volume == b.plan.comm_volume
    assert a.plan.imbalance == b.plan.imbalance
    np.testing.assert_array_equal(a.plan.speeds, b.plan.speeds)
    np.testing.assert_array_equal(a.plan.finish_times, b.plan.finish_times)
    assert sorted(a.plan.detail) == sorted(b.plan.detail)


def raw_post(url, body, headers=None):
    request = urllib.request.Request(url, data=body, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10.0) as resp:
        return resp.status, dict(resp.headers), resp.read()


class TestHandshake:
    def test_healthz_advertises_profiles(self, server):
        health = ServiceClient(server.url).healthz()
        assert health["wire_profiles"] == list(wire.PROFILES)
        assert health["wire_mode"] == "auto"

    def test_safe_server_advertises_binary_only(self, safe_server):
        health = ServiceClient(safe_server.url).healthz()
        assert health["wire_profiles"] == [wire.PROFILE_BINARY]
        assert health["wire_mode"] == "safe"

    def test_auto_client_negotiates_binary(self, server):
        client = ServiceClient(server.url)
        assert client.wire_profile() == wire.PROFILE_BINARY

    @pytest.mark.parametrize("profile", wire.PROFILES)
    def test_explicit_profile_honoured(self, server, profile):
        client = ServiceClient(server.url, wire_profile=profile)
        assert client.wire_profile() == profile

    def test_env_var_picks_the_profile(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", wire.PROFILE_PICKLE)
        assert ServiceClient(server.url).wire_profile() == wire.PROFILE_PICKLE

    def test_unknown_profile_rejected_at_construction(self, server):
        with pytest.raises(ValueError, match="unknown wire profile"):
            ServiceClient(server.url, wire_profile="msgpack-v9")

    def test_pickle_client_vs_safe_server_fails_clearly(
        self, safe_server, platform
    ):
        client = ServiceClient(
            safe_server.url, wire_profile=wire.PROFILE_PICKLE
        )
        request = PlanRequest(platform=platform, N=100.0, strategy="hom")
        with pytest.raises(PlanServiceError, match="--wire safe"):
            client.plan(request)

    def test_auto_client_vs_safe_server_works(self, safe_server, platform):
        client = ServiceClient(safe_server.url)
        result = client.plan(
            PlanRequest(platform=platform, N=100.0, strategy="hom")
        )
        assert client.wire_profile() == wire.PROFILE_BINARY
        assert result.plan.strategy == "hom"

    def test_server_echoes_profiles_header(self, server):
        with urllib.request.urlopen(f"{server.url}/healthz") as resp:
            advertised = resp.headers[wire.PROFILE_HEADER]
        assert advertised == ",".join(wire.PROFILES)

    def test_wire_mode_validated(self):
        with pytest.raises(ValueError, match="wire_mode"):
            PlanServer(port=0, wire_mode="paranoid")


class TestCrossProfileEquivalence:
    def test_same_request_same_plan_both_profiles(self, server, platform):
        requests = [
            PlanRequest(platform=platform, N=float(n), strategy=s)
            for n in (500, 1000, 2000)
            for s in ("hom", "het", "hom/k")
        ]
        v1 = ServiceClient(server.url, wire_profile=wire.PROFILE_PICKLE)
        v2 = ServiceClient(server.url, wire_profile=wire.PROFILE_BINARY)
        for request in requests:
            assert_results_identical(v1.plan(request), v2.plan(request))

    def test_plan_items_with_vector_groups_both_profiles(
        self, server, platform
    ):
        group = VectorGroup(
            strategy="hom",
            requests=tuple(
                PlanRequest(platform=platform, N=float(n), strategy="hom")
                for n in (100, 300, 900)
            ),
        )
        v1 = ServiceClient(server.url, wire_profile=wire.PROFILE_PICKLE)
        v2 = ServiceClient(server.url, wire_profile=wire.PROFILE_BINARY)
        (a,) = v1.plan_items([group])
        (b,) = v2.plan_items([group])
        for ra, rb in zip(a, b):
            assert_results_identical(ra, rb)

    @pytest.mark.parametrize("profile", wire.PROFILES)
    def test_remote_backend_matches_local(self, server, platform, profile):
        requests = [
            PlanRequest(platform=platform, N=float(n), strategy=s)
            for n in (400, 800)
            for s in ("hom", "het")
        ]
        with PlannerSession(cache=False) as local:
            expected = local.plan_batch(requests)
        backend = RemoteBackend(server.url, wire_profile=profile)
        got = backend.map(plan_request, requests)
        for e, g in zip(expected, got):
            assert_results_identical(e, g)

    def test_cache_entries_are_profile_agnostic(self, server, platform):
        request = PlanRequest(platform=platform, N=750.0, strategy="het")
        key = plan_cache_key(request, registry.get("strategy", "het"))
        result = plan_request(request)
        writer = HTTPPlanCache(server.url, wire_profile=wire.PROFILE_BINARY)
        reader = HTTPPlanCache(server.url, wire_profile=wire.PROFILE_PICKLE)
        writer.put(key, result)
        served = reader.get(key)
        assert served is not None
        assert_results_identical(result, served)
        # ... and the other direction
        reader.clear()
        reader.put(key, result)
        assert_results_identical(result, writer.get(key))


class TestRawBodies:
    """Hostile / mismatched bodies straight at the endpoints."""

    def _plan_body(self, platform, profile):
        request = PlanRequest(platform=platform, N=100.0, strategy="hom")
        return wire.pack_as(request, profile)

    def test_profile_inferred_from_body_magic(self, server, platform):
        # no X-Repro-Wire header at all: the server sniffs the magic
        # line and answers in kind
        body = self._plan_body(platform, wire.PROFILE_BINARY)
        status, headers, data = raw_post(f"{server.url}/plan", body)
        assert status == 200
        result = wire.unpack_v2(data)
        assert result.plan.strategy == "hom"

    def test_response_profile_matches_request(self, server, platform):
        for profile in wire.PROFILES:
            body = self._plan_body(platform, profile)
            _, _, data = raw_post(
                f"{server.url}/plan",
                body,
                {wire.PROFILE_HEADER: profile},
            )
            assert wire.detect_profile(data) == profile

    def test_unknown_profile_header_is_400(self, server, platform):
        body = self._plan_body(platform, wire.PROFILE_BINARY)
        with pytest.raises(urllib.error.HTTPError) as err:
            raw_post(
                f"{server.url}/plan",
                body,
                {wire.PROFILE_HEADER: "msgpack-v9"},
            )
        assert err.value.code == 400

    def test_safe_server_400s_pickle_body(self, safe_server, platform):
        body = self._plan_body(platform, wire.PROFILE_PICKLE)
        with pytest.raises(urllib.error.HTTPError) as err:
            raw_post(f"{safe_server.url}/plan", body)
        assert err.value.code == 400
        message = err.value.read().decode()
        assert "refused" in message

    def test_truncated_v2_body_is_400(self, server, platform):
        body = self._plan_body(platform, wire.PROFILE_BINARY)
        for cut in (len(wire.WIRE_V2_MAGIC) + 3, len(body) - 5):
            with pytest.raises(urllib.error.HTTPError) as err:
                raw_post(f"{server.url}/plan", body[:cut])
            assert err.value.code == 400

    def test_garbage_body_is_400_and_server_survives(self, server, platform):
        with pytest.raises(urllib.error.HTTPError) as err:
            raw_post(f"{server.url}/plan", b"\x80\x04not an envelope")
        assert err.value.code == 400
        # the server is still healthy afterwards
        client = ServiceClient(server.url)
        assert client.healthz()["status"] == "ok"
