"""Tests for repro.platform.processor."""

import pytest

from repro.platform.processor import Processor


class TestConstruction:
    def test_defaults(self):
        p = Processor(speed=2.0)
        assert p.bandwidth == 1.0
        assert p.name == "P?"

    @pytest.mark.parametrize("speed", [0, -1.0])
    def test_bad_speed_rejected(self, speed):
        with pytest.raises(ValueError):
            Processor(speed=speed)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Processor(speed=1.0, bandwidth=0.0)

    def test_frozen(self):
        p = Processor(speed=1.0)
        with pytest.raises(AttributeError):
            p.speed = 2.0


class TestDerivedQuantities:
    def test_cycle_time_is_inverse_speed(self):
        assert Processor(speed=4.0).cycle_time == pytest.approx(0.25)

    def test_comm_time_is_inverse_bandwidth(self):
        assert Processor(speed=1.0, bandwidth=5.0).comm_time == pytest.approx(0.2)

    def test_compute_time_scales_linearly(self):
        p = Processor(speed=2.0)
        assert p.compute_time(10.0) == pytest.approx(5.0)
        assert p.compute_time(0.0) == 0.0

    def test_receive_time(self):
        p = Processor(speed=1.0, bandwidth=4.0)
        assert p.receive_time(8.0) == pytest.approx(2.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Processor(speed=1.0).compute_time(-1.0)

    def test_negative_data_rejected(self):
        with pytest.raises(ValueError):
            Processor(speed=1.0).receive_time(-1.0)


class TestRenaming:
    def test_renamed_copy(self):
        p = Processor(speed=3.0, bandwidth=2.0)
        q = p.renamed("alice")
        assert q.name == "alice"
        assert q.speed == p.speed and q.bandwidth == p.bandwidth

    def test_name_excluded_from_equality(self):
        assert Processor(1.0, 1.0, "a") == Processor(1.0, 1.0, "b")
