#!/usr/bin/env python3
"""Quickstart: plan a divisible computation on a heterogeneous platform.

Walks through the library's three layers in ~1 minute of runtime:

1. build a star platform;
2. solve a classical *linear* divisible load (closed form + replay on
   the discrete-event simulator, with a text Gantt chart);
3. see the §2 "no free lunch" on a quadratic load;
4. plan an outer product with the three §4 strategies.

Run: ``python examples/quickstart.py``
"""

from repro import (
    StarPlatform,
    compare_strategies,
    residual_fraction,
    solve_linear_parallel,
    solve_nonlinear_parallel,
)
from repro.simulate import render_gantt, simulate_allocation


def main() -> None:
    # --- 1. a platform: four workers, speeds 1/2/4/8 ------------------
    platform = StarPlatform.from_speeds([1, 2, 4, 8], bandwidths=2.0)
    print(platform.describe())
    print()

    # --- 2. classical linear DLT --------------------------------------
    N = 1000.0
    alloc = solve_linear_parallel(platform, N)
    print(f"Linear load, N={N:g}: optimal single-round allocation")
    for proc, amount in zip(platform, alloc.amounts):
        print(f"  {proc.name}: {amount:8.2f} units")
    print(f"  makespan = {alloc.makespan:.2f} (all workers finish together)")
    _, trace, _ = simulate_allocation(platform, alloc.amounts)
    print(render_gantt(trace, width=56))
    print()

    # --- 3. the §2 negative result ------------------------------------
    quad = solve_nonlinear_parallel(platform, N, alpha=2.0)
    print(
        f"Quadratic load on the same platform: the *optimal* round covers "
        f"only {100 * quad.covered_fraction:.1f}% of the work."
    )
    print(
        "On P=100 homogeneous workers the residue would be "
        f"{100 * residual_fraction(100, 2.0):.1f}% — there is no free lunch."
    )
    print()

    # --- 4. the §4 fix: heterogeneity-aware partitioning --------------
    cmp = compare_strategies(platform, N=10_000.0)
    print(cmp.summary())


if __name__ == "__main__":
    main()
