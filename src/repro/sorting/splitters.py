"""Splitter selection and bucketing — Steps 1–2 of sample sort (§3.1).

Step 1 picks ``s * p`` random keys (oversampling ratio ``s``), sorts
them, and selects ``p - 1`` splitters at regular ranks, partitioning the
key space into ``p`` buckets of near-equal expected size.  §3.2
generalises to heterogeneous workers: splitter ranks are placed at the
*cumulative speed fractions*, so bucket *i*'s expected size is
proportional to worker *i*'s speed.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_integer


def homogeneous_splitter_positions(p: int, s: int) -> np.ndarray:
    """Sample ranks of the splitters for equal buckets: ``s, 2s, …, (p-1)s``.

    Indices into the *sorted* sample of size ``s*p`` (0-based, so rank
    ``j*s`` maps to index ``j*s - 1``... we use the paper's rank ``j*s``
    directly as a 0-based index, which selects the key with ``j*s``
    smaller samples — the standard convention).
    """
    check_integer(p, "p", minimum=1)
    check_integer(s, "s", minimum=1)
    return np.arange(1, p) * s


def heterogeneous_splitter_positions(speeds: np.ndarray, s: int) -> np.ndarray:
    """Sample ranks proportional to cumulative speed fractions (§3.2).

    With sample size ``s*p``, the boundary after worker *i* sits at rank
    ``round(cumfrac_i * s * p)`` where ``cumfrac_i = Σ_{k<=i} s_k / Σ s_k``
    — worker *i*'s bucket then has expected size ``N * x_i``.  (The
    paper's formula expresses the same cumulative-(1/w) placement.)
    """
    speeds = np.asarray(speeds, dtype=float)
    if speeds.ndim != 1 or speeds.size == 0 or np.any(speeds <= 0):
        raise ValueError("speeds must be a non-empty positive 1-D array")
    check_integer(s, "s", minimum=1)
    p = speeds.size
    cumfrac = np.cumsum(speeds) / speeds.sum()
    sample_size = s * p
    ranks = np.round(cumfrac[:-1] * sample_size).astype(int)
    return np.clip(ranks, 1, sample_size - 1)


def choose_splitters(
    keys: np.ndarray,
    p: int,
    s: int,
    rng: SeedLike = None,
    speeds: np.ndarray | None = None,
) -> np.ndarray:
    """Steps 1 of sample sort: sample, sort, select ``p - 1`` splitters.

    ``speeds`` switches between homogeneous (None) and heterogeneous
    placement.  Sampling is with replacement when the sample would
    exceed the input (tiny-N corner), without replacement otherwise —
    matching the randomized analysis the paper cites.
    """
    keys = np.asarray(keys)
    check_integer(p, "p", minimum=1)
    check_integer(s, "s", minimum=1)
    if p == 1:
        return keys[:0].astype(keys.dtype, copy=False)
    rng = make_rng(rng)
    sample_size = s * p
    if sample_size <= keys.size:
        idx = rng.choice(keys.size, size=sample_size, replace=False)
    else:
        idx = rng.integers(0, keys.size, size=sample_size)
    sample = np.sort(keys[idx], kind="stable")
    if speeds is None:
        positions = homogeneous_splitter_positions(p, s)
    else:
        if len(speeds) != p:
            raise ValueError(f"expected {p} speeds, got {len(speeds)}")
        positions = heterogeneous_splitter_positions(np.asarray(speeds), s)
    return sample[positions]


def bucketize(keys: np.ndarray, splitters: np.ndarray) -> list[np.ndarray]:
    """Step 2: route each key to its bucket by binary search.

    Bucket *i* receives keys in ``(splitters[i-1], splitters[i]]``
    boundaries-wise (``searchsorted`` left side), preserving input order
    within a bucket.  Cost charged by the caller: ``N log2 p``.
    """
    keys = np.asarray(keys)
    splitters = np.asarray(splitters)
    if splitters.size == 0:
        return [keys.copy()]
    if np.any(np.diff(splitters) < 0):
        raise ValueError("splitters must be sorted")
    bucket_ids = np.searchsorted(splitters, keys, side="left")
    p = splitters.size + 1
    return [keys[bucket_ids == b] for b in range(p)]
