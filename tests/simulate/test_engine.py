"""Tests for repro.simulate.engine."""

import pytest

from repro.simulate.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda s: fired.append("c"))
        sim.schedule(1.0, lambda s: fired.append("a"))
        sim.schedule(2.0, lambda s: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for name in "xyz":
            sim.schedule(1.0, lambda s, n=name: fired.append(n))
        sim.run()
        assert fired == ["x", "y", "z"]

    def test_handlers_can_schedule_more(self):
        sim = Simulator()
        fired = []

        def first(s):
            fired.append(s.now)
            s.schedule(2.0, lambda s2: fired.append(s2.now))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [1.0, 3.0]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda s: s.schedule_at(1.0, lambda s2: None))
        with pytest.raises(ValueError, match="before current time"):
            sim.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda s: None)


class TestControl:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(10.0, lambda s: fired.append(10))
        t = sim.run(until=5.0)
        assert fired == [1]
        assert t == 5.0
        assert sim.pending == 1

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda s: fired.append(10))
        sim.run(until=5.0)
        sim.run()
        assert fired == [10]

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda s: fired.append("no"))
        sim.schedule(2.0, lambda s: fired.append("yes"))
        ev.cancel()
        sim.run()
        assert fired == ["yes"]
        assert sim.pending == 0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_log_records_kinds(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None, kind="ping")
        sim.run()
        assert sim.log == [(1.0, "ping")]

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def evil(s):
            try:
                s.run()
            except RuntimeError as e:
                errors.append(e)

        sim.schedule(1.0, evil)
        sim.run()
        assert len(errors) == 1


class TestUntilAndReset:
    """run(until=...) leaves pending events queryable; reset() reuses."""

    def test_pending_queryable_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(10.0, lambda s: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1
        assert sim.next_event_time == 10.0

    def test_next_event_time_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        ev.cancel()
        assert sim.next_event_time == 2.0

    def test_next_event_time_none_when_drained(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        assert sim.next_event_time is None

    def test_reset_clears_state(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None, kind="a")
        sim.run(until=0.5)
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending == 0
        assert sim.log == []
        assert sim.next_event_time is None

    def test_reset_enables_reuse_across_runs(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda s: order.append("first"))
        sim.run()
        sim.reset()
        sim.schedule(1.0, lambda s: order.append("second"))
        assert sim.run() == 1.0
        assert order == ["first", "second"]
        # tie-break counter restarted: seq numbering begins at zero again
        ev = sim.schedule(1.0, lambda s: None)
        assert ev.seq == 1

    def test_reset_refused_mid_run(self):
        sim = Simulator()
        errors = []

        def handler(s):
            try:
                s.reset()
            except RuntimeError as e:
                errors.append(e)

        sim.schedule(1.0, handler)
        sim.run()
        assert len(errors) == 1
