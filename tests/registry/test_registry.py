"""Tests for repro.registry — the plugin registry subsystem."""

import pytest

from repro import registry
from repro.registry import (
    KINDS,
    DuplicateComponentError,
    Registry,
    UnknownComponentError,
    UnknownKindError,
)


class TestRegistryCore:
    """Behaviour of a fresh, empty Registry instance."""

    def test_registration_round_trip(self):
        reg = Registry()

        @reg.register("strategy", "dummy", summary="a test strategy")
        class Dummy:
            def plan(self, platform, N):
                return "planned"

        assert reg.available("strategy") == ("dummy",)
        assert reg.get("strategy", "dummy") is Dummy
        assert isinstance(reg.create("strategy", "dummy"), Dummy)
        comp = reg.component("strategy", "dummy")
        assert comp.summary == "a test strategy"
        assert "Dummy" in comp.origin

    def test_function_components_are_called_by_create(self):
        reg = Registry()
        reg.add("partitioner", "double", lambda x: 2 * x)
        assert reg.create("partitioner", "double", 21) == 42

    def test_duplicate_name_rejected(self):
        reg = Registry()
        reg.add("cost_model", "dup", lambda: 1)
        with pytest.raises(DuplicateComponentError, match="already registered"):
            reg.add("cost_model", "dup", lambda: 2)
        # the original registration survives the failed attempt
        assert reg.create("cost_model", "dup") == 1

    def test_duplicate_allowed_with_replace(self):
        reg = Registry()
        reg.add("cost_model", "dup", lambda: 1)
        reg.add("cost_model", "dup", lambda: 2, replace=True)
        assert reg.create("cost_model", "dup") == 2

    def test_unknown_name_error_lists_available(self):
        reg = Registry()
        reg.add("strategy", "alpha", lambda: None)
        reg.add("strategy", "beta", lambda: None)
        with pytest.raises(
            UnknownComponentError, match=r"unknown strategy 'gamma'"
        ) as exc:
            reg.get("strategy", "gamma")
        # the message names every available component
        assert "alpha" in str(exc.value) and "beta" in str(exc.value)

    def test_unknown_component_error_is_a_value_error(self):
        reg = Registry()
        with pytest.raises(ValueError):
            reg.get("strategy", "nope")

    def test_unknown_kind_rejected(self):
        reg = Registry()
        with pytest.raises(UnknownKindError, match="unknown component kind"):
            reg.available("flavour")

    def test_add_kind_extends_namespace(self):
        reg = Registry()
        reg.add_kind("backend")
        reg.add("backend", "local", lambda: "ok")
        assert reg.create("backend", "local") == "ok"
        assert "backend" in reg.kinds()

    def test_unregister(self):
        reg = Registry()
        reg.add("strategy", "gone", lambda: None)
        reg.unregister("strategy", "gone")
        assert ("strategy", "gone") not in reg
        assert reg.available("strategy") == ()

    def test_contains(self):
        reg = Registry()
        reg.add("strategy", "x", lambda: None)
        assert ("strategy", "x") in reg
        assert ("strategy", "y") not in reg
        assert ("flavour", "x") not in reg

    def test_summary_defaults_to_docstring_first_line(self):
        reg = Registry()

        def factory():
            """First line.

            Not this one.
            """

        reg.add("simulation", "doc", factory)
        assert reg.component("simulation", "doc").summary == "First line."

    def test_lazy_provider_modules_load_on_first_query(self):
        import sys

        from tests.registry import _hooks

        sys.modules.pop("tests.registry._lazy_provider", None)
        reg = Registry()
        _hooks.TARGET = reg
        _hooks.IMPORT_COUNT = 0
        try:
            reg.register_provider_modules(
                "strategy", ("tests.registry._lazy_provider",)
            )
            # declaring the provider must not import it
            assert _hooks.IMPORT_COUNT == 0
            # first query triggers the import and finds the component
            assert reg.available("strategy") == ("lazy-strategy",)
            assert _hooks.IMPORT_COUNT == 1
            assert reg.create("strategy", "lazy-strategy") == "loaded lazily"
            # subsequent queries do not re-import
            reg.available("strategy")
            assert _hooks.IMPORT_COUNT == 1
        finally:
            _hooks.TARGET = None
            sys.modules.pop("tests.registry._lazy_provider", None)

    def test_provider_declared_during_load_is_imported(self):
        """A provider that declares another provider mid-load is honored."""
        import sys

        from tests.registry import _hooks

        sys.modules.pop("tests.registry._lazy_provider", None)
        reg = Registry()
        _hooks.IMPORT_COUNT = 0

        class ChainingTarget:
            @staticmethod
            def add(kind, name, factory):
                reg.add(kind, name, factory)
                # simulate a provider declaring a follow-on provider
                reg.register_provider_modules(
                    "strategy", ("tests.registry._chained_provider",)
                )

        _hooks.TARGET = ChainingTarget
        try:
            reg.register_provider_modules(
                "strategy", ("tests.registry._lazy_provider",)
            )
            names = reg.available("strategy")
            assert "lazy-strategy" in names
            assert "chained-strategy" in names
        finally:
            _hooks.TARGET = None
            sys.modules.pop("tests.registry._lazy_provider", None)
            sys.modules.pop("tests.registry._chained_provider", None)

    def test_concurrent_first_query_sees_full_catalogue(self):
        """Worker threads racing the first lazy load must not observe a
        partially populated catalogue (threaded backends resolve
        components off the main thread)."""
        import sys
        from concurrent.futures import ThreadPoolExecutor

        from tests.registry import _hooks

        sys.modules.pop("tests.registry._slow_provider", None)
        reg = Registry()
        _hooks.TARGET = reg
        _hooks.IMPORT_COUNT = 0
        try:
            reg.register_provider_modules(
                "strategy", ("tests.registry._slow_provider",)
            )
            with ThreadPoolExecutor(max_workers=8) as pool:
                catalogues = list(
                    pool.map(lambda _: reg.available("strategy"), range(8))
                )
            assert all(c == ("slow-strategy",) for c in catalogues)
            assert _hooks.IMPORT_COUNT == 1
        finally:
            _hooks.TARGET = None
            sys.modules.pop("tests.registry._slow_provider", None)

    def test_failed_provider_import_raises_on_every_query(self):
        """A broken provider must not leave a silently empty catalogue."""
        reg = Registry()
        reg.register_provider_modules("strategy", ("no_such_module_xyz",))
        for _ in range(2):  # second query must raise too, not return ()
            with pytest.raises(ModuleNotFoundError):
                reg.available("strategy")


class TestDefaultRegistry:
    """The process-wide registry holding the paper's built-ins."""

    def test_all_kinds_present(self):
        assert registry.kinds() == KINDS

    def test_builtin_strategies(self):
        assert set(registry.available("strategy")) == {"hom", "hom/k", "het"}

    def test_builtin_cost_models(self):
        names = set(registry.available("cost_model"))
        assert {"linear", "affine", "power-law", "n-log-n"} <= names

    def test_builtin_partitioners(self):
        names = set(registry.available("partitioner"))
        assert {"peri-sum", "peri-max", "recursive", "strip", "grid"} <= names

    def test_builtin_dlt_solvers(self):
        names = set(registry.available("dlt_solver"))
        assert {
            "linear-parallel",
            "linear-one-port",
            "equal-split",
            "nonlinear-parallel",
            "nonlinear-one-port",
            "multi-round",
            "tree",
        } <= names

    def test_builtin_backends(self):
        names = set(registry.available("backend"))
        assert {"serial", "threaded", "process"} <= names

    def test_builtin_simulations(self):
        names = set(registry.available("simulation"))
        assert {
            "master-worker",
            "demand-driven",
            "mapreduce-map-phase",
        } <= names

    def test_create_cost_model(self):
        model = registry.create("cost_model", "power-law", alpha=3.0)
        assert model.work(2.0) == 8.0

    def test_create_strategy_plans(self, heterogeneous_platform):
        strategy = registry.create("strategy", "het")
        plan = strategy.plan(heterogeneous_platform, 1000.0)
        assert plan.comm_volume > 0

    def test_create_partitioner(self):
        part = registry.create("partitioner", "peri-sum", [0.25, 0.25, 0.5])
        assert part.sum_half_perimeters > 0

    def test_create_dlt_solver(self, heterogeneous_platform):
        alloc = registry.create(
            "dlt_solver", "linear-parallel", heterogeneous_platform, 100.0
        )
        assert alloc.total == pytest.approx(100.0)

    def test_every_component_has_origin_and_factory(self):
        for kind in registry.kinds():
            for comp in registry.describe(kind):
                assert callable(comp.factory), (kind, comp.name)
                assert comp.origin, (kind, comp.name)

    def test_plugin_registration_reaches_facade(self, heterogeneous_platform):
        """A plugin registered at runtime is planable via the façade."""
        from repro.blocks.metrics import StrategyResult
        from repro.core.strategies import compare_strategies, plan_outer_product

        @registry.register(
            "strategy", "test-plugin", summary="registered by a test"
        )
        class PluginStrategy:
            def plan(self, platform, N):
                import numpy as np

                finish = np.ones(platform.size)
                return StrategyResult(
                    strategy="test-plugin",
                    N=float(N),
                    speeds=platform.speeds,
                    comm_volume=2.0 * N * platform.size,
                    finish_times=finish,
                    imbalance=0.0,
                )

        try:
            plan = plan_outer_product(
                heterogeneous_platform, 100.0, strategy="test-plugin"
            )
            assert plan.strategy == "test-plugin"
            cmp = compare_strategies(heterogeneous_platform, 100.0)
            assert "test-plugin" in cmp.plans
        finally:
            registry.unregister("strategy", "test-plugin")
        assert "test-plugin" not in registry.available("strategy")
