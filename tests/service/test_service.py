"""End-to-end tests for the plan service: server, remote backend, HTTP store.

The acceptance contract this file enforces:

* a remote session (``backend="remote:HOST:PORT"``) reproduces local
  planning bit-identically (``rtol = 1e-12``), sweep by sweep and for a
  Figure-4 panel;
* ``HTTPPlanCache`` makes the server's store a shared tier — hit/miss
  accounting, tiered promotion, and cross-*process* sharing all work;
* failure semantics are clean: server down / hanging / flaky surfaces
  as :class:`PlanServiceError` after bounded retries, protocol errors
  (bad envelopes, unknown strategies) report the server's message and
  never retry.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro import registry
from repro.core.cache import (
    MemoryPlanCache,
    TieredPlanCache,
    cache_from_spec,
    plan_cache_key,
)
from repro.core.pipeline import PlanRequest, PlanResult, plan_request
from repro.core.session import PlannerSession
from repro.core.vectorize import VectorGroup
from repro.experiments.figure4 import run_figure4
from repro.platform.star import StarPlatform
from repro.service.client import (
    HTTPPlanCache,
    PlanServiceError,
    RemoteBackend,
    ServiceClient,
)
from repro.service.server import PlanServer

#: src directory, so client subprocesses import this checkout
SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture()
def server():
    with PlanServer(port=0, cache="memory") as srv:
        yield srv


@pytest.fixture()
def platform():
    return StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])


class TestRegistration:
    def test_remote_backend_registered(self):
        assert "remote" in registry.available("backend")

    def test_http_cache_registered(self):
        assert "http" in registry.available("cache")


class TestHealthAndStats:
    def test_healthz(self, server):
        health = ServiceClient(f"{server.host}:{server.port}").healthz()
        assert health["status"] == "ok"
        assert health["wire_version"] == 1
        assert health["backend"] == "serial"

    def test_cache_stats_endpoint_is_plain_json(self, server):
        with urllib.request.urlopen(f"{server.url}/cache/stats") as resp:
            payload = json.loads(resp.read())
        assert payload["cache"] == "on"
        assert payload["lookups"] == payload["hits"] + payload["misses"]

    def test_unknown_endpoint_404(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(PlanServiceError, match="404"):
            client.get_json("/nope")


class TestRemoteBackend:
    def test_sweep_bit_identical_to_local(self, server, platform):
        with PlannerSession() as local, PlannerSession(
            backend=f"remote:{server.host}:{server.port}", cache=False
        ) as remote:
            a = local.sweep(platform, 10_000.0)
            b = remote.sweep(platform, 10_000.0)
        assert list(a.results) == list(b.results)
        for name in a.results:
            assert np.isclose(
                a.results[name].comm_volume,
                b.results[name].comm_volume,
                rtol=1e-12,
            ), name
            assert np.isclose(
                a.results[name].imbalance,
                b.results[name].imbalance,
                rtol=1e-12,
                atol=1e-15,
            ), name

    def test_plan_batch_equivalence_both_vectorize_modes(
        self, server, platform
    ):
        requests = [
            PlanRequest(platform=platform, N=float(n), strategy=s)
            for n in (500, 1000, 2000)
            for s in ("hom", "het", "hom/k")
        ]
        with PlannerSession(cache=False) as local:
            expected = local.plan_batch(requests)
        for vectorize in (True, False):
            with PlannerSession(
                backend=f"remote:{server.host}:{server.port}",
                cache=False,
                vectorize=vectorize,
            ) as remote:
                got = remote.plan_batch(requests)
            for e, g in zip(expected, got):
                assert np.isclose(e.comm_volume, g.comm_volume, rtol=1e-12)

    def test_figure4_panel_matches_local(self, server):
        protocol = dict(processors=(4,), trials=3, seed=7, N=500.0)
        local = run_figure4("uniform", **protocol)
        remote = run_figure4(
            "uniform",
            backend=f"remote:{server.host}:{server.port}",
            cache=False,
            **protocol,
        )
        for name in local.means:
            assert np.allclose(
                local.means[name], remote.means[name], rtol=1e-12
            ), name

    def test_server_cache_warms_across_remote_sessions(self, server, platform):
        spec = f"remote:{server.host}:{server.port}"
        with PlannerSession(backend=spec, cache=False) as first:
            first.sweep(platform, 4242.0)
        before = server.session.cache_stats()
        with PlannerSession(backend=spec, cache=False) as second:
            sweep = second.sweep(platform, 4242.0)
        after = server.session.cache_stats()
        assert after.hits - before.hits >= 3
        assert all(res.cached for res in sweep.results.values())

    def test_rejects_arbitrary_functions(self, server):
        backend = RemoteBackend(f"{server.host}:{server.port}")
        with pytest.raises(TypeError, match="plan_request"):
            backend.map(len, [[1, 2]])

    def test_empty_map_is_local_noop(self):
        # no server needed: an empty batch never touches the network
        assert RemoteBackend("127.0.0.1:1", retries=0).map(plan_request, []) == []

    def test_server_plans_wire_batch_in_one_session_call(
        self, server, platform
    ):
        """A mixed /plan_batch item list must reach the server session
        as ONE plan_batch call, so the server backend fans it out."""
        calls = []
        original = server.session.plan_batch

        def counting(requests, **kwargs):
            calls.append(len(requests))
            return original(requests, **kwargs)

        server.session.plan_batch = counting
        try:
            scalars = [
                PlanRequest(platform=platform, N=float(n), strategy="het")
                for n in (100, 200)
            ]
            group = VectorGroup(
                strategy="hom",
                requests=tuple(
                    PlanRequest(platform=platform, N=float(n), strategy="hom")
                    for n in (100, 200, 300)
                ),
            )
            outputs = server.plan_items([scalars[0], group, scalars[1]])
        finally:
            server.session.plan_batch = original
        assert calls == [5]
        assert isinstance(outputs[0], PlanResult)
        assert [r.request.N for r in outputs[1]] == [100.0, 200.0, 300.0]
        assert outputs[2].request.N == 200.0

    def test_unknown_strategy_relays_server_message(self, server, platform):
        with PlannerSession(
            backend=f"remote:{server.host}:{server.port}", cache=False
        ) as remote:
            with pytest.raises(ValueError, match="unknown strategy"):
                remote.plan(
                    PlanRequest(platform=platform, N=100.0, strategy="nope")
                )


class TestHTTPPlanCache:
    def test_get_put_roundtrip_and_stats(self, server, platform):
        store = HTTPPlanCache(server.url)
        request = PlanRequest(platform=platform, N=123.0, strategy="het")
        key = plan_cache_key(request, registry.get("strategy", "het"))
        assert store.get(key) is None          # miss, counted server-side
        result = plan_request(request)
        store.put(key, result)
        hit = store.get(key)
        assert hit is not None
        assert hit.comm_volume == result.comm_volume
        stats = store.stats
        assert stats.hits >= 1 and stats.misses >= 1
        assert len(store) >= 1

    def test_session_with_http_cache_shares_entries(self, server, platform):
        spec = f"http://{server.host}:{server.port}"
        with PlannerSession(cache=spec) as warm:
            first = warm.sweep(platform, 777.0)
        assert first.cache_misses == 3
        # a *different* session (fresh process in real deployments)
        # sees the first one's entries
        with PlannerSession(cache=spec) as reader:
            again = reader.sweep(platform, 777.0)
        assert again.cache_hits == 3
        assert all(res.cached for res in again.results.values())

    def test_tiered_memory_front_promotes_over_http(self, server, platform):
        disk = HTTPPlanCache(server.url)
        store = TieredPlanCache(disk=disk, memory=MemoryPlanCache(64))
        request = PlanRequest(platform=platform, N=55.0, strategy="het")
        key = plan_cache_key(request, registry.get("strategy", "het"))
        store.put(key, plan_request(request))      # write-through
        assert store.memory.get(key) is not None   # front was filled
        store.memory.clear()
        assert store.get(key) is not None          # back tier answers...
        assert store.memory.stats.entries == 1     # ...and promotes

    def test_tiered_http_spec_string(self, server, platform):
        with PlannerSession(
            cache=f"tiered:http://{server.host}:{server.port}"
        ) as session:
            session.sweep(platform, 888.0)
            session.sweep(platform, 888.0)
            tiers = dict(session.cache_stats().tier_hits)
        assert tiers["memory"] >= 3  # second sweep never left the process

    def test_clear_clears_server_store(self, server, platform):
        spec = f"http://{server.host}:{server.port}"
        with PlannerSession(cache=spec) as session:
            session.sweep(platform, 999.0)
            assert len(session.cache) >= 3
            session.clear_cache()
            assert len(session.cache) == 0

    def test_https_spec_preserves_scheme(self):
        store = cache_from_spec("https://planner.internal:443")
        assert isinstance(store, HTTPPlanCache)
        assert store.url == "https://planner.internal:443"
        tiered = TieredPlanCache("https://planner.internal:443")
        assert tiered.disk.url == "https://planner.internal:443"

    def test_cache_endpoints_refused_when_cache_off(self, platform):
        with PlanServer(port=0, cache=False) as uncached:
            store = HTTPPlanCache(uncached.url)
            with pytest.raises(PlanServiceError, match="without a cache"):
                store.get(("any", "key"))
            with pytest.raises(PlanServiceError, match="without a cache"):
                store.stats
            # len() is an honest zero, not an error — reprs use it
            assert len(store) == 0


class TestSharedCacheAcrossProcesses:
    def test_two_client_processes_share_the_store(self, server):
        """The acceptance scenario: sequential client *processes*, one
        warm server store, the second run all hits in /cache/stats."""
        snippet = (
            "from repro.core.session import PlannerSession\n"
            "from repro.platform.star import StarPlatform\n"
            "p = StarPlatform.from_speeds([1, 2, 4, 8])\n"
            f"s = PlannerSession(cache='http://{server.host}:{server.port}')\n"
            "sweep = s.sweep(p, 31337.0)\n"
            "print(sweep.cache_hits, sweep.cache_misses)\n"
            "s.close()\n"
        )

        def run_client():
            return subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONPATH": SRC_DIR
                    + os.pathsep
                    + os.environ.get("PYTHONPATH", ""),
                },
                check=True,
            ).stdout.split()

        hits1, misses1 = map(int, run_client())
        hits2, misses2 = map(int, run_client())
        assert misses1 == 3 and hits1 == 0
        assert hits2 == 3 and misses2 == 0
        stats = json.loads(
            urllib.request.urlopen(f"{server.url}/cache/stats").read()
        )
        assert stats["hits"] >= 3 and stats["entries"] >= 3


class TestFailureSemantics:
    def test_server_down_raises_after_retries(self):
        # grab a port nothing listens on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            f"127.0.0.1:{port}", timeout=0.5, retries=1, retry_wait=0.01
        )
        with pytest.raises(PlanServiceError, match="after 2 attempt"):
            client.healthz()

    def test_retry_counts_attempts(self):
        """Every attempt reaches the listener; retries are bounded."""
        accepted = []
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        stop = threading.Event()

        def slam_connections():
            listener.settimeout(0.2)
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                accepted.append(1)
                conn.close()  # reset before any HTTP response

        thread = threading.Thread(target=slam_connections, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"127.0.0.1:{port}", timeout=1.0, retries=2, retry_wait=0.01
            )
            with pytest.raises(PlanServiceError, match="after 3 attempt"):
                client.healthz()
        finally:
            stop.set()
            thread.join()
            listener.close()
        assert len(accepted) == 3

    def test_retry_recovers_from_transient_failure(self):
        """First connection dies, second gets a real response."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        body = b'{"status": "ok"}'
        response = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Connection: close\r\n\r\n"
            + body
        )

        def flaky():
            first, _ = listener.accept()
            first.close()                      # transport failure
            second, _ = listener.accept()
            second.recv(4096)
            second.sendall(response)           # healthy on retry
            second.close()

        thread = threading.Thread(target=flaky, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"127.0.0.1:{port}", timeout=2.0, retries=2, retry_wait=0.01
            )
            assert client.healthz() == {"status": "ok"}
        finally:
            thread.join(timeout=5)
            listener.close()

    def test_garbage_post_is_rejected_cleanly(self, server):
        request = urllib.request.Request(
            f"{server.url}/plan", data=b"not an envelope"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "envelope" in json.loads(excinfo.value.read())["error"]

    def test_protocol_errors_never_retry(self, server):
        """A 4xx reply is terminal: exactly one request hits the wire."""
        before = json.loads(
            urllib.request.urlopen(f"{server.url}/cache/stats").read()
        )
        client = ServiceClient(server.url, retries=5, retry_wait=0.01)
        with pytest.raises(PlanServiceError, match="HTTP 400"):
            client.post("/plan", "not a PlanRequest")
        after = json.loads(
            urllib.request.urlopen(f"{server.url}/cache/stats").read()
        )
        # no planning happened, so cache counters are untouched
        assert after["lookups"] == before["lookups"]
