"""Shuffle volumes of the MapReduce matmul formulations (§1.1, §4).

Three ways to run ``C = A × B`` over MapReduce, with their master→worker
(or mapper→reducer) data volumes for ``N × N`` matrices:

* **naive** ([27]-style prepared dataset): the input is *all* compatible
  pairs ``(a_ik, b_kj)`` — :math:`2N^3` values shuffled (the §1.1
  quote: "a large redundancy in data communication");
* **HAMA-style block replication** ([27, 36]): a :math:`q \\times q`
  reducer grid; each reducer computes an :math:`N/q \\times N/q` block
  of C and needs a row-band of A plus a column-band of B:
  :math:`2N^2/q` each → total :math:`2qN^2`.  Choosing
  :math:`q = \\sqrt{p}` (all reducers used once) gives
  :math:`2\\sqrt{p}N^2` — the homogeneous-optimal volume;
* **partitioned** (this paper): rectangles from PERI-SUM; volume
  :math:`N^2 \\cdot \\hat C(x)` where :math:`\\hat C` is the unit-square
  half-perimeter sum — within 7/4 (observed 2%) of the lower bound
  :math:`2N^2\\sum\\sqrt{x_i}` even on heterogeneous platforms.
"""

from __future__ import annotations

import numpy as np

from repro.partition.column_based import peri_sum_cost
from repro.util.validation import check_integer, check_positive


def naive_mapreduce_volume(N: int) -> float:
    """Shuffle volume of the all-pairs formulation: :math:`2N^3` input
    values (each of the :math:`N^3` map records carries one ``a`` and
    one ``b`` value)."""
    check_integer(N, "N", minimum=1)
    return float(2 * N**3)


def hama_block_volume(N: int, q: int) -> float:
    """Input volume of a ``q × q`` block-replicated matmul: ``2 q N²``.

    Each of the :math:`q^2` reducers receives :math:`N^2/q` of A and
    :math:`N^2/q` of B.
    """
    check_integer(N, "N", minimum=1)
    check_integer(q, "q", minimum=1)
    return float(2 * q * N**2)


def best_hama_grid(p: int) -> int:
    """Largest ``q`` with ``q² <= p`` — use as many reducers as fit."""
    check_integer(p, "p", minimum=1)
    return int(np.floor(np.sqrt(p)))


def partitioned_volume(N: int, speeds) -> float:
    """Volume of the heterogeneity-aware partitioned matmul.

    :math:`N^2 \\cdot \\hat C(x)` with :math:`\\hat C` the optimal
    column-based PERI-SUM cost of the normalized speeds — the §4.2
    statement that matmul volume is proportional to the same
    half-perimeter sum as the outer product, scaled by ``N`` steps of
    ``N``-unit broadcasts.
    """
    check_integer(N, "N", minimum=1)
    speeds = np.asarray(speeds, dtype=float)
    check_positive(float(speeds.min(initial=np.inf)), "speeds.min")
    x = speeds / speeds.sum()
    return float(N**2 * peri_sum_cost(x))


def matmul_lower_bound(N: int, speeds) -> float:
    """:math:`2 N^2 \\sum_i \\sqrt{x_i}` — the §4.3 bound times N steps."""
    check_integer(N, "N", minimum=1)
    speeds = np.asarray(speeds, dtype=float)
    x = speeds / speeds.sum()
    return float(2.0 * N**2 * np.sqrt(x).sum())
