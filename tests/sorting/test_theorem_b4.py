"""Empirical Theorem-B.4 tests (experiment E4 of DESIGN.md)."""

import numpy as np
import pytest

from repro.core.almost_linear import theorem_b4_max_bucket_bound
from repro.sorting.analysis import (
    empirical_b4_violation_rate,
    max_bucket_statistics,
)


class TestMaxBucketStatistics:
    def test_stats_structure(self):
        stats = max_bucket_statistics(N=20_000, p=8, trials=10, rng=0)
        assert stats.max_sizes.shape == (10,)
        assert stats.worst_max >= stats.expected_bucket
        assert stats.b4_bound == theorem_b4_max_bucket_bound(20_000, 8)

    def test_violation_rate_small_at_paper_parameters(self):
        """With s = log²N the bound holds w.h.p. — empirically, the
        violation rate over 40 trials should be well under the theorem's
        N^(-1/3) slack at this scale (we allow a loose 20%)."""
        rate = empirical_b4_violation_rate(N=50_000, p=8, trials=40, rng=1)
        assert rate <= 0.2

    def test_mean_overflow_modest(self):
        stats = max_bucket_statistics(N=50_000, p=8, trials=20, rng=2)
        assert stats.mean_overflow < 0.25

    def test_oversampling_tightens_buckets(self):
        """More oversampling → smaller max bucket (the §3.1 mechanism)."""
        loose = max_bucket_statistics(N=30_000, p=8, trials=15, s=4, rng=3)
        tight = max_bucket_statistics(N=30_000, p=8, trials=15, s=256, rng=3)
        assert tight.mean_max < loose.mean_max

    @pytest.mark.parametrize("dist", ["uniform", "normal", "sorted"])
    def test_input_distribution_insensitivity(self, dist):
        """The randomized analysis is input-independent (§3.1) — for
        inputs with (mostly) distinct keys; order doesn't matter."""
        stats = max_bucket_statistics(
            N=20_000, p=4, trials=10, rng=4, distribution=dist
        )
        assert stats.mean_overflow < 0.3

    def test_heavy_duplicates_break_the_bound(self):
        """The theorem assumes distinct keys: a zipf-ish input with one
        dominant value forces a giant bucket no oversampling can split —
        documenting the analysis' precondition."""
        stats = max_bucket_statistics(
            N=20_000, p=4, trials=10, rng=4, distribution="zipf-ish"
        )
        assert stats.mean_overflow > 0.3

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            max_bucket_statistics(N=100, p=2, trials=2, distribution="cauchy")

    def test_reproducible(self):
        a = max_bucket_statistics(N=10_000, p=4, trials=5, rng=7)
        b = max_bucket_statistics(N=10_000, p=4, trials=5, rng=7)
        assert np.array_equal(a.max_sizes, b.max_sizes)
