"""Tests for repro.core.strategies — the façade API."""

import pytest

from repro.core.strategies import compare_strategies, plan_outer_product
from repro.platform.star import StarPlatform


class TestPlanOuterProduct:
    @pytest.mark.parametrize("name", ["hom", "hom/k", "het"])
    def test_all_strategies_run(self, heterogeneous_platform, name):
        plan = plan_outer_product(heterogeneous_platform, 1000.0, strategy=name)
        assert plan.comm_volume > 0
        assert plan.ratio_to_lower_bound >= 1.0 - 1e-9

    def test_unknown_strategy_rejected(self, heterogeneous_platform):
        with pytest.raises(ValueError, match="unknown strategy"):
            plan_outer_product(heterogeneous_platform, 100.0, strategy="magic")

    def test_default_is_het(self, heterogeneous_platform):
        plan = plan_outer_product(heterogeneous_platform, 1000.0)
        assert plan.strategy == "het"

    def test_imbalance_target_threaded_through(self, heterogeneous_platform):
        plan = plan_outer_product(
            heterogeneous_platform, 1000.0, strategy="hom/k", imbalance_target=0.5
        )
        assert plan.imbalance <= 0.5 or not plan.detail["converged"]


class TestCompareStrategies:
    def test_contains_all_three(self, heterogeneous_platform):
        cmp = compare_strategies(heterogeneous_platform, 1000.0)
        assert set(cmp.plans) == {"hom", "hom/k", "het"}

    def test_het_never_loses_by_much(self, heterogeneous_platform):
        """het is within the 7/4 guarantee; hom generally above it."""
        cmp = compare_strategies(heterogeneous_platform, 1000.0)
        assert cmp.ratios["het"] <= 7.0 / 4.0 + 1e-9

    def test_rho_at_least_one_when_heterogeneous(self, half_fast_platform):
        cmp = compare_strategies(half_fast_platform, 2000.0)
        assert cmp.rho > 1.0

    def test_summary_mentions_rho(self, heterogeneous_platform):
        text = compare_strategies(heterogeneous_platform, 500.0).summary()
        assert "rho" in text
        assert "het" in text

    def test_homogeneous_all_near_lb(self):
        platform = StarPlatform.homogeneous(16)
        cmp = compare_strategies(platform, 1600.0)
        for name, ratio in cmp.ratios.items():
            assert ratio == pytest.approx(1.0, abs=0.06), name


class TestSubsetComparison:
    def test_subset_selection(self, heterogeneous_platform):
        cmp = compare_strategies(
            heterogeneous_platform, 1000.0, strategies=("hom", "het")
        )
        assert set(cmp.plans) == {"hom", "het"}

    def test_rho_missing_strategy_raises_clearly(self, heterogeneous_platform):
        cmp = compare_strategies(
            heterogeneous_platform, 1000.0, strategies=("het", "hom/k")
        )
        with pytest.raises(ValueError, match="missing \\['hom'\\]"):
            cmp.rho


class TestWorkCoverage:
    """The --cost-model column: §2's vanishing fraction on real plans."""

    def test_linear_model_scores_one_for_every_strategy(
        self, heterogeneous_platform
    ):
        cmp = compare_strategies(heterogeneous_platform, 1000.0)
        coverage = cmp.work_coverage("linear")
        assert set(coverage) == set(cmp.plans)
        for value in coverage.values():
            assert value == pytest.approx(1.0)

    def test_piecewise_penalises_fragmentation(self, heterogeneous_platform):
        """hom cuts many identical blocks, het one rectangle per worker;
        a super-additive model must score hom's round strictly lower."""
        cmp = compare_strategies(heterogeneous_platform, 100.0)
        coverage = cmp.work_coverage("piecewise")
        assert 0.0 < coverage["hom"] < coverage["het"] <= 1.0

    def test_accepts_model_instances(self, heterogeneous_platform):
        from repro.core.cost_models import PowerLawCost
        from repro.core.strategies import work_coverage

        plan = plan_outer_product(heterogeneous_platform, 100.0, strategy="het")
        value = work_coverage(plan, PowerLawCost(alpha=2.0))
        assert 0.0 < value < 1.0
