"""Trace sampling in the driver and the latency-under-SLO search."""

import math
from types import SimpleNamespace

import pytest

from repro.loadtest import (
    SloSearchResult,
    find_max_rps,
    run_loadtest,
)
from repro.loadtest.slo import MAX_DOUBLINGS
from repro.obs import SpanRecorder, assemble_traces
from repro.service.server import PlanServer


@pytest.fixture(scope="module")
def server():
    with PlanServer(backend="threaded", jobs=2) as srv:
        yield srv


class TestDriverTraceSampling:
    def test_one_in_n_ops_sampled(self, server):
        report = run_loadtest(
            server.url, rps=40, duration=0.5, threads=2, seed=9,
            trace_sample=4,
        )
        assert report.trace_sample == 4
        # ops 0, 4, 8, ... of the 20-op stream
        assert len(report.client_spans) == math.ceil(report.sent / 4)
        ids = [span.trace_id for span in report.client_spans]
        assert len(set(ids)) == len(ids)  # one fresh trace per sampled op
        assert all(span.service == "client" for span in report.client_spans)
        assert all(
            span.parent_id is None for span in report.client_spans
        )  # loadtest spans are roots: the trace starts at the client

    def test_trace_section_in_report(self, server):
        report = run_loadtest(
            server.url, rps=30, duration=0.3, threads=2, seed=9,
            trace_sample=3,
        )
        payload = report.to_dict()
        assert payload["trace"]["sample"] == 3
        assert payload["trace"]["sampled"] == len(report.client_spans)
        assert payload["trace"]["p99_ms"] >= payload["trace"]["p50_ms"] >= 0
        assert len(payload["trace"]["slowest"]) <= 5
        assert "traces: 1-in-3 sampled" in report.render()

    def test_untraced_run_has_no_trace_section(self, server):
        report = run_loadtest(
            server.url, rps=30, duration=0.2, threads=2, seed=9
        )
        assert report.trace_sample is None
        assert report.client_spans == []
        assert "trace" not in report.to_dict()
        assert "traces:" not in report.render()

    def test_client_spans_join_server_spans(self):
        recorder = SpanRecorder(service="server")
        with PlanServer(span_recorder=recorder) as traced:
            report = run_loadtest(
                traced.url, rps=30, duration=0.3, threads=2, seed=9,
                trace_sample=2,
            )
            import time

            time.sleep(0.3)  # server roots close after the response
        spans = report.client_spans + recorder.drain()
        traces = assemble_traces(spans)
        sampled_ids = {span.trace_id for span in report.client_spans}
        assert {t.trace_id for t in traces} == sampled_ids
        assert all(t.complete for t in traces)

    def test_write_client_spans(self, server, tmp_path):
        from repro.obs import read_spans

        report = run_loadtest(
            server.url, rps=30, duration=0.2, threads=2, seed=9,
            trace_sample=2,
        )
        path = str(tmp_path / "client.jsonl")
        count = report.write_client_spans(path)
        assert count == len(report.client_spans)
        # identity round-trips; timings are microsecond-rounded on disk
        read_back = read_spans([path])
        assert [(s.trace_id, s.span_id, s.name) for s in read_back] == [
            (s.trace_id, s.span_id, s.name) for s in report.client_spans
        ]
        for disk, mem in zip(read_back, report.client_spans):
            assert disk.duration_s == pytest.approx(mem.duration_s, abs=1e-6)

    def test_trace_sample_validated(self, server):
        with pytest.raises(ValueError, match="trace_sample"):
            run_loadtest(server.url, rps=10, duration=0.1, trace_sample=0)


def fake_runner_with_cliff(cliff_rps, budget_fail_above=None):
    """A runner whose p99 crosses the SLO exactly above ``cliff_rps``."""
    calls = []

    def runner(target, *, rps, duration, **kwargs):
        calls.append(rps)
        passed = (
            budget_fail_above is None or rps <= budget_fail_above
        )
        return SimpleNamespace(
            p99_ms=10.0 if rps <= cliff_rps else 500.0,
            error_rate=0.0 if passed else 0.5,
            passed=passed,
        )

    runner.calls = calls
    return runner


class TestFindMaxRps:
    def test_floor_failure_stops_after_one_probe(self):
        runner = fake_runner_with_cliff(cliff_rps=5.0)
        result = find_max_rps(
            "x", slo_p99_ms=50.0, start_rps=20.0, runner=runner
        )
        assert not result.found
        assert result.max_rps == 0.0
        assert runner.calls == [20.0]
        assert "no probed rate met the SLO" in result.render()

    def test_brackets_and_bisects_the_cliff(self):
        runner = fake_runner_with_cliff(cliff_rps=100.0)
        result = find_max_rps(
            "x", slo_p99_ms=50.0, start_rps=20.0, runner=runner
        )
        assert result.found
        # ramp: 20 ok, 40 ok, 80 ok, 160 fail; bisect inside (80, 160)
        assert runner.calls[:4] == [20.0, 40.0, 80.0, 160.0]
        assert 80.0 <= result.max_rps <= 100.0
        # the bisection got within 10% of the bracket's upper edge
        failing = [p.rps for p in result.probes if not p.ok]
        assert min(failing) - result.max_rps <= 0.10 * min(failing)
        # every probe is on the audit trail, ordered by execution
        assert [p.rps for p in result.probes] == runner.calls

    def test_error_budget_failures_also_fail_probes(self):
        # latency fine at every rate, but the budget blows above 60
        runner = fake_runner_with_cliff(
            cliff_rps=1e9, budget_fail_above=60.0
        )
        result = find_max_rps(
            "x", slo_p99_ms=50.0, start_rps=20.0, runner=runner
        )
        assert result.found
        assert result.max_rps <= 60.0
        failed = [p for p in result.probes if not p.ok]
        assert failed and not failed[0].passed_budget

    def test_never_failing_target_stops_at_ramp_cap(self):
        runner = fake_runner_with_cliff(cliff_rps=float("inf"))
        result = find_max_rps(
            "x", slo_p99_ms=50.0, start_rps=10.0, runner=runner
        )
        assert result.found
        assert result.max_rps == 10.0 * 2**MAX_DOUBLINGS
        assert len(runner.calls) == 1 + MAX_DOUBLINGS

    def test_best_report_is_kept(self):
        runner = fake_runner_with_cliff(cliff_rps=100.0)
        result = find_max_rps(
            "x", slo_p99_ms=50.0, start_rps=20.0, runner=runner
        )
        assert result.best_report is not None
        assert result.best_report.p99_ms == 10.0

    def test_to_dict_and_json(self):
        runner = fake_runner_with_cliff(cliff_rps=100.0)
        result = find_max_rps(
            "x", slo_p99_ms=50.0, start_rps=20.0, runner=runner
        )
        payload = result.to_dict()
        assert payload["found"] is True
        assert payload["slo_p99_ms"] == 50.0
        assert len(payload["probes"]) == len(result.probes)
        assert result.to_json().startswith("{")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slo_p99_ms": 0.0},
            {"slo_p99_ms": 50.0, "start_rps": 0.0},
            {"slo_p99_ms": 50.0, "rounds": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            find_max_rps("x", runner=lambda *a, **k: None, **kwargs)

    def test_against_a_live_server(self, server):
        """One real (tiny) search against an in-process plan server."""
        result = find_max_rps(
            server.url,
            slo_p99_ms=5_000.0,  # generous: the probe should pass
            start_rps=20.0,
            duration=0.2,
            rounds=0,
            threads=2,
            seed=11,
        )
        assert isinstance(result, SloSearchResult)
        assert result.probes[0].ok
        assert result.found
