"""Dispatch policies: registry wiring, balance, affinity, stability."""

import hashlib

import pytest

from repro import registry
from repro.cluster.dispatch import (
    Candidate,
    ConsistentHashDispatch,
    LeastLoadedDispatch,
    dispatch_from_spec,
    item_digest,
)
from repro.core.cache import encode_key, plan_cache_key
from repro.core.pipeline import PlanRequest
from repro.core.vectorize import VectorGroup
from repro.platform.star import StarPlatform
from repro.registry import RegistryError


def _digest(token: str) -> str:
    return hashlib.sha256(token.encode()).hexdigest()


def _candidates(n, loads=None):
    loads = loads or [0] * n
    return [
        Candidate(f"http://127.0.0.1:{9000 + i}", loads[i]) for i in range(n)
    ]


class TestRegistryWiring:
    def test_dispatch_is_a_registry_kind(self):
        assert "dispatch" in registry.kinds()

    def test_builtin_policies_registered(self):
        names = registry.available("dispatch")
        assert "least-loaded" in names
        assert "consistent-hash" in names

    def test_dispatch_from_spec_bare_name(self):
        assert isinstance(
            dispatch_from_spec("least-loaded"), LeastLoadedDispatch
        )

    def test_dispatch_from_spec_with_arg(self):
        policy = dispatch_from_spec("consistent-hash:128")
        assert isinstance(policy, ConsistentHashDispatch)
        assert policy.replicas == 128

    def test_dispatch_from_spec_passthrough(self):
        policy = LeastLoadedDispatch()
        assert dispatch_from_spec(policy) is policy

    def test_unknown_name_fails_clean(self):
        with pytest.raises(RegistryError):
            dispatch_from_spec("round-robin")

    def test_bad_arg_fails_clean(self):
        with pytest.raises(RegistryError, match="bad dispatch spec"):
            dispatch_from_spec("consistent-hash:zero")
        with pytest.raises(RegistryError, match="bad dispatch spec"):
            dispatch_from_spec("consistent-hash:0")


class TestLeastLoaded:
    def test_picks_minimum_load(self):
        policy = LeastLoadedDispatch()
        cands = _candidates(3, loads=[5, 1, 3])
        assert policy.choose(_digest("x"), cands) is cands[1]

    def test_tie_breaks_on_url(self):
        policy = LeastLoadedDispatch()
        cands = _candidates(3)
        assert policy.choose(_digest("x"), cands) is cands[0]

    def test_spreads_with_tentative_loads(self):
        # the coordinator bumps the chosen candidate's load per item;
        # an idle pool must then take items round-robin, not dog-pile
        policy = LeastLoadedDispatch()
        cands = _candidates(3)
        seen = []
        for i in range(6):
            chosen = policy.choose(_digest(f"item{i}"), cands)
            chosen.load += 1
            seen.append(chosen.url)
        assert sorted(seen.count(c.url) for c in cands) == [2, 2, 2]

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            LeastLoadedDispatch().choose(_digest("x"), [])


class TestConsistentHash:
    def test_stable_for_same_digest(self):
        policy = ConsistentHashDispatch()
        cands = _candidates(4)
        digest = _digest("some plan key")
        first = policy.choose(digest, cands)
        for _ in range(10):
            assert policy.choose(digest, cands).url == first.url

    def test_ignores_load(self):
        policy = ConsistentHashDispatch()
        digest = _digest("sticky")
        idle = _candidates(4)
        busy = _candidates(4, loads=[100, 100, 100, 100])
        assert policy.choose(digest, idle).url == policy.choose(
            digest, busy
        ).url

    def test_distribution_roughly_uniform(self):
        policy = ConsistentHashDispatch(replicas=64)
        cands = _candidates(4)
        counts = {c.url: 0 for c in cands}
        for i in range(2000):
            counts[policy.choose(_digest(f"key{i}"), cands).url] += 1
        # virtual points keep every worker within a loose band of the
        # fair share (500); wildly skewed rings are the failure mode
        assert min(counts.values()) > 150
        assert max(counts.values()) < 1000

    def test_minimal_movement_on_worker_loss(self):
        policy = ConsistentHashDispatch(replicas=64)
        full = _candidates(4)
        survivors = full[:-1]
        digests = [_digest(f"key{i}") for i in range(1000)]
        before = {d: policy.choose(d, full).url for d in digests}
        after = {d: policy.choose(d, survivors).url for d in digests}
        moved = sum(1 for d in digests if before[d] != after[d])
        lost_share = sum(
            1 for d in digests if before[d] == full[-1].url
        )
        # only keys owned by the dead worker move
        assert moved == lost_share
        assert moved < 600  # ~1/4 of the key space, not a full reshuffle

    def test_ring_rebuilds_when_pool_changes(self):
        policy = ConsistentHashDispatch(replicas=8)
        a = _candidates(2)
        b = _candidates(3)
        policy.choose(_digest("x"), a)
        # a different candidate set must not serve the stale ring
        chosen = policy.choose(_digest("x"), b)
        assert chosen.url in {c.url for c in b}

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            ConsistentHashDispatch().choose(_digest("x"), [])


class TestItemDigest:
    @pytest.fixture()
    def platform(self):
        return StarPlatform.from_speeds([1.0, 2.0, 4.0])

    def test_request_digest_matches_content_key(self, platform):
        request = PlanRequest(platform=platform, N=1000.0, strategy="het")
        factory = registry.get("strategy", "het")
        assert item_digest(request) == encode_key(
            plan_cache_key(request, factory)
        )

    def test_group_routes_by_first_request(self, platform):
        requests = tuple(
            PlanRequest(platform=platform, N=1000.0 + i, strategy="het")
            for i in range(3)
        )
        group = VectorGroup(strategy="het", requests=requests)
        assert item_digest(group) == item_digest(requests[0])

    def test_plain_key_digest(self):
        key = ("fingerprint", 1000.0, "het")
        assert item_digest(key) == encode_key(key)

    def test_unknown_strategy_still_stable(self, platform):
        request = PlanRequest(
            platform=platform, N=10.0, strategy="not-a-strategy"
        )
        assert item_digest(request) == item_digest(request)
        assert len(item_digest(request)) == 64
