"""Concrete MapReduce jobs: the paper's running examples, executable.

* :func:`word_count_job` — the linear-complexity workload MapReduce was
  designed for (§1.1): shuffle volume is linear in the input.
* :func:`naive_matmul_job` — the §1.1 prepared-dataset matrix product:
  input is all :math:`N^3` compatible pairs, shuffle carries
  :math:`N^3` products; correct but communication-catastrophic.
* :func:`block_matmul_job` — HAMA-style ``q × q`` block replication:
  map emits each A block to the ``q`` reducers of its row and each B
  block to the ``q`` of its column; shuffle volume ``2qN²``.
* :func:`outer_product_job` — the paper's §4.1 outer product with a
  prescribed rectangle per reducer: shuffle carries exactly each
  reducer's half-perimeter of input data.

All jobs return plain :class:`~repro.mapreduce.engine.MapReduceJob`
objects plus their input sequence, ready for the engine; tests check
the numeric outputs against NumPy and the metered volumes against the
closed forms of :mod:`repro.matmul.mapreduce_layouts`.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Sequence, Tuple

import numpy as np

from repro.mapreduce.engine import KV, MapReduceJob
from repro.partition.rectangle import Partition
from repro.util.validation import check_integer


# ----------------------------------------------------------------- word count
def word_count_job(n_reducers: int = 4, combine: bool = True):
    """Classic word count over lines of text.

    Returns ``(job, make_inputs)`` where ``make_inputs(lines)`` is the
    identity (lines are the records).  With ``combine=True`` the
    per-task combiner pre-sums counts — the linear-workload optimisation
    the paper contrasts with non-linear jobs, where no combiner can
    remove the replication.
    """

    def map_fn(line: str) -> Iterable[KV]:
        for word in line.split():
            yield word, 1

    def reduce_fn(key: Hashable, values: List[int]) -> Iterable[KV]:
        yield key, sum(values)

    combine_fn = (lambda k, vs: [sum(vs)]) if combine else None
    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        n_reducers=n_reducers,
        combine_fn=combine_fn,
        name="word-count",
    )
    return job, lambda lines: list(lines)


# -------------------------------------------------------------- naive matmul
def naive_matmul_job(A: np.ndarray, B: np.ndarray):
    """The §1.1 formulation: input = all compatible pairs.

    Record ``(i, k, j, a_ik, b_kj)`` maps to ``((i, j), a_ik * b_kj)``;
    the reducer sums per key — the value shuffled per record is one
    product, total :math:`N^3` (the *input* preparation itself already
    inflated the data to :math:`2N^3` values, counted separately by
    :func:`repro.matmul.mapreduce_layouts.naive_mapreduce_volume`).

    Returns ``(job, inputs)``.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n):
        raise ValueError("square matrices of equal order required")

    inputs: List[Tuple[int, int, int, float, float]] = [
        (i, k, j, float(A[i, k]), float(B[k, j]))
        for i in range(n)
        for k in range(n)
        for j in range(n)
    ]

    def map_fn(rec) -> Iterable[KV]:
        i, k, j, a, b = rec
        yield (i, j), a * b

    def reduce_fn(key: Hashable, values: List[float]) -> Iterable[KV]:
        yield key, float(np.sum(values))

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        n_reducers=max(1, n),
        name="naive-matmul",
    )
    return job, inputs


# -------------------------------------------------------------- block matmul
def block_matmul_job(A: np.ndarray, B: np.ndarray, q: int):
    """HAMA-style block matmul on a ``q × q`` reducer grid.

    Input records are matrix blocks; map *replicates* each A block to
    all reducers in its block-row and each B block to all reducers in
    its block-column (the §4 "data redundancy" made explicit).  Reducer
    ``(bi, bj)`` then computes C block ``(bi, bj)``.  The shuffled value
    size is the block's element count, so the metered volume equals
    ``2 q N²`` exactly when ``q`` divides ``N``.

    Returns ``(job, inputs)``; output maps block coords to C blocks.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    check_integer(q, "q", minimum=1)
    if A.shape != (n, n) or B.shape != (n, n):
        raise ValueError("square matrices of equal order required")
    if n % q != 0:
        raise ValueError(f"q={q} must divide N={n} for the block job")
    bs = n // q

    inputs: List[Tuple[str, int, int, np.ndarray]] = []
    for bi in range(q):
        for bk in range(q):
            inputs.append(
                ("A", bi, bk, A[bi * bs:(bi + 1) * bs, bk * bs:(bk + 1) * bs])
            )
            inputs.append(
                ("B", bi, bk, B[bi * bs:(bi + 1) * bs, bk * bs:(bk + 1) * bs])
            )

    def map_fn(rec) -> Iterable[KV]:
        which, bi, bk, block = rec
        if which == "A":
            for bj in range(q):
                yield (bi, bj), ("A", bk, block)
        else:
            # rec holds B block (bk', bj) stored as (bi=bk', bk=bj)
            bk_, bj = bi, bk
            for bi2 in range(q):
                yield (bi2, bj), ("B", bk_, block)

    def reduce_fn(key: Hashable, values: List[Any]) -> Iterable[KV]:
        a_blocks = {k: blk for which, k, blk in values if which == "A"}
        b_blocks = {k: blk for which, k, blk in values if which == "B"}
        acc = np.zeros((bs, bs))
        for k in range(q):
            acc += a_blocks[k] @ b_blocks[k]
        yield key, acc

    def grid_partitioner(key: Hashable, n_reducers: int) -> int:
        bi, bj = key
        return (bi * q + bj) % n_reducers

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        n_reducers=q * q,
        partition_fn=grid_partitioner,
        size_of=lambda v: float(v[2].size),
        name=f"block-matmul-q{q}",
    )
    return job, inputs


def assemble_block_output(output: dict, n: int, q: int) -> np.ndarray:
    """Stitch the block-matmul reducer output into a full matrix."""
    bs = n // q
    C = np.empty((n, n))
    for (bi, bj), block in output.items():
        C[bi * bs:(bi + 1) * bs, bj * bs:(bj + 1) * bs] = block
    return C


# ------------------------------------------------------------- outer product
def outer_product_job(a: np.ndarray, b: np.ndarray, partition: Partition):
    """The §4.1 outer product with one rectangle per reducer.

    Map sends each element of ``a`` (resp. ``b``) to every reducer whose
    rectangle's row (resp. column) range contains it; the shuffled
    volume is therefore exactly the scaled half-perimeter sum the paper
    computes.  Reducer ``r`` emits its rectangle of
    :math:`a_i b_j` values as one block.

    Returns ``(job, inputs)``; output maps rectangle owner → (rows,
    cols, block).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    n = a.size
    if b.size != n:
        raise ValueError("vectors must have equal length")

    ranges = []
    for rect in partition:
        r0, r1 = rect.row_range(n)
        c0, c1 = rect.col_range(n)
        ranges.append((rect.owner, r0, r1, c0, c1))

    inputs: List[Tuple[str, int, float]] = [
        ("a", i, float(a[i])) for i in range(n)
    ] + [("b", j, float(b[j])) for j in range(n)]

    def map_fn(rec) -> Iterable[KV]:
        which, idx, value = rec
        for owner, r0, r1, c0, c1 in ranges:
            if which == "a" and r0 <= idx < r1:
                yield owner, ("a", idx, value)
            elif which == "b" and c0 <= idx < c1:
                yield owner, ("b", idx, value)

    def reduce_fn(key: Hashable, values: List[Any]) -> Iterable[KV]:
        a_part = sorted((i, v) for which, i, v in values if which == "a")
        b_part = sorted((j, v) for which, j, v in values if which == "b")
        rows = np.array([i for i, _ in a_part], dtype=int)
        cols = np.array([j for j, _ in b_part], dtype=int)
        av = np.array([v for _, v in a_part])
        bv = np.array([v for _, v in b_part])
        yield key, (rows, cols, np.outer(av, bv))

    job = MapReduceJob(
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        n_reducers=len(partition),
        partition_fn=lambda key, n_red: int(key) % n_red,
        name="outer-product",
    )
    return job, inputs
