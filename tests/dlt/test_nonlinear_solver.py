"""Tests for repro.dlt.nonlinear_solver — the criticized formulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonlinear import partial_work_fraction
from repro.dlt.nonlinear_solver import (
    homogeneous_covered_fraction,
    solve_nonlinear_one_port,
    solve_nonlinear_parallel,
)
from repro.platform.star import StarPlatform

speeds_lists = st.lists(
    st.floats(min_value=0.2, max_value=50.0), min_size=1, max_size=8
)


class TestParallel:
    def test_homogeneous_equal_split(self):
        plat = StarPlatform.homogeneous(5)
        alloc = solve_nonlinear_parallel(plat, 100.0, alpha=2.0)
        assert np.allclose(alloc.amounts, 20.0, rtol=1e-6)

    def test_homogeneous_fraction_matches_section2(self):
        """The solver's coverage equals P^(1-alpha) exactly on
        homogeneous stars — §2's formula is the solver's optimum."""
        for P in (2, 8, 32):
            plat = StarPlatform.homogeneous(P)
            alloc = solve_nonlinear_parallel(plat, 1000.0, alpha=2.0)
            assert alloc.covered_fraction == pytest.approx(
                partial_work_fraction(P, 2.0), rel=1e-6
            )
            assert homogeneous_covered_fraction(P, 2.0) == partial_work_fraction(
                P, 2.0
            )

    @given(
        speeds=speeds_lists,
        alpha=st.floats(min_value=1.1, max_value=3.0),
        N=st.floats(min_value=10.0, max_value=1e4),
    )
    @settings(max_examples=40, deadline=None)
    def test_equal_finish_and_conservation(self, speeds, alpha, N):
        plat = StarPlatform.from_speeds(speeds)
        alloc = solve_nonlinear_parallel(plat, N, alpha=alpha)
        assert alloc.total == pytest.approx(N, rel=1e-9)
        assert np.all(alloc.amounts > 0)
        assert np.allclose(alloc.finish, alloc.makespan, rtol=1e-5)

    def test_heterogeneous_fraction_still_vanishes(self):
        """The paper's point: heterogeneity-aware optimisation doesn't
        change the order of the covered fraction."""
        rngs = np.random.default_rng(0)
        for P in (10, 100):
            speeds = rngs.uniform(1, 100, P)
            plat = StarPlatform.from_speeds(speeds)
            alloc = solve_nonlinear_parallel(plat, 1000.0, alpha=2.0)
            # within a constant factor of the homogeneous 1/P
            assert alloc.covered_fraction < 10.0 / P

    def test_alpha_one_matches_linear_solver(self):
        from repro.dlt.single_round import solve_linear_parallel

        plat = StarPlatform.from_speeds([1.0, 3.0], bandwidths=[2.0, 1.0])
        nl = solve_nonlinear_parallel(plat, 100.0, alpha=1.0)
        lin = solve_linear_parallel(plat, 100.0)
        assert np.allclose(nl.amounts, lin.amounts, rtol=1e-6)
        assert nl.makespan == pytest.approx(lin.makespan, rel=1e-6)

    def test_bad_inputs(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            solve_nonlinear_parallel(plat, -1.0)
        with pytest.raises(ValueError):
            solve_nonlinear_parallel(plat, 10.0, alpha=0.0)


class TestOnePort:
    def test_conservation_and_equal_finish(self):
        plat = StarPlatform.from_speeds([1.0, 2.0, 4.0])
        alloc = solve_nonlinear_one_port(plat, 300.0, alpha=2.0)
        assert alloc.total == pytest.approx(300.0, rel=1e-9)
        assert np.allclose(alloc.finish, alloc.makespan, rtol=1e-4)

    def test_one_port_never_beats_parallel(self):
        plat = StarPlatform.from_speeds([1.0, 2.0, 4.0])
        par = solve_nonlinear_parallel(plat, 100.0, alpha=2.0)
        onep = solve_nonlinear_one_port(plat, 100.0, alpha=2.0)
        assert onep.makespan >= par.makespan - 1e-9

    def test_order_validation(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            solve_nonlinear_one_port(plat, 10.0, order=[1, 1])

    def test_coverage_property(self):
        plat = StarPlatform.homogeneous(16)
        alloc = solve_nonlinear_one_port(plat, 1000.0, alpha=2.0)
        # one-port distributes slightly unevenly, but coverage stays
        # O(1/P) — the §2 futility is model-independent
        assert alloc.covered_fraction < 0.15
        assert alloc.residual_fraction > 0.85
