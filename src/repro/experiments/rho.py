"""§4.1.3's ρ experiment: half-slow / half-fast(k) platforms.

For each speed ratio ``k`` the table compares the *measured*
:math:`\\rho = Comm_{hom} / Comm_{het}` (both volumes computed by the
actual strategies) against the paper's analytic bounds
:math:`(1+k)/(1+\\sqrt{k})` and :math:`\\sqrt{k}-1`.  The shape claim:
measured ρ grows without bound in k, and the bounds hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.core.cache import PlanStore

from repro.core.bounds import half_fast_rho_bound, half_fast_rho_simple
from repro.core.session import PlannerSession
from repro.core.strategies import compare_strategies
from repro.platform.generators import half_fast_speeds
from repro.platform.star import StarPlatform
from repro.util.tables import format_table


@dataclass(frozen=True)
class RhoRow:
    k: float
    p: int
    measured_rho: float
    bound_exact: float
    bound_simple: float


@dataclass(frozen=True)
class RhoResult:
    rows: tuple[RhoRow, ...]
    N: float

    def render(self) -> str:
        return format_table(
            ["k", "p", "measured rho", "(1+k)/(1+sqrt k)", "sqrt(k)-1"],
            [
                [r.k, r.p, r.measured_rho, r.bound_exact, r.bound_simple]
                for r in self.rows
            ],
            title=(
                "Section 4.1.3: hom/het communication ratio on "
                f"half-slow/half-fast platforms (N={self.N:g})"
            ),
        )


def run_rho_experiment(
    ks: Sequence[float] = (1, 2, 4, 9, 16, 25, 64),
    p: int = 20,
    N: float = 10_000.0,
    session: PlannerSession | None = None,
    backend: str = "serial",
    jobs: int | None = None,
    cache: "bool | str | PlanStore" = True,
    vectorize: bool = True,
) -> RhoResult:
    """Experiment E6 of DESIGN.md.

    All (k, strategy) cells plan through one session — repeated runs
    (e.g. a report regenerating the table) are pure cache hits.  When
    no ``session`` is given, one is built from ``backend`` / ``jobs``
    / ``cache`` / ``vectorize`` exactly like
    :func:`~repro.experiments.figure4.run_figure4`; the platforms are
    deterministic in (k, p), so ``cache="sqlite:PATH"`` makes the
    table resumable — a rerun against the same path replays finished
    (k, strategy) cells from disk.
    """
    own_session = session is None
    session = session or PlannerSession(
        backend=backend, jobs=jobs, cache=cache, vectorize=vectorize
    )
    rows = []
    for k in ks:
        speeds = half_fast_speeds(p, k=float(k))
        platform = StarPlatform.from_speeds(speeds)
        cmp = compare_strategies(
            platform, N, strategies=("hom", "het"), session=session
        )
        rows.append(
            RhoRow(
                k=float(k),
                p=p,
                measured_rho=cmp.rho,
                bound_exact=half_fast_rho_bound(float(k)),
                bound_simple=half_fast_rho_simple(float(k)),
            )
        )
    if own_session:
        session.close()
    return RhoResult(rows=tuple(rows), N=float(N))
