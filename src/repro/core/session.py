"""PlannerSession: the backend-routed, cached, batched planning API.

A session owns the three concerns the free-function pipeline lacked:

* **backend routing** — every request batch is dispatched through a
  registered execution backend (``serial`` / ``threaded`` /
  ``process``, plus anything plugins register), so ``sweep`` and
  ``plan_batch`` fan out concurrently instead of looping;
* **plan caching** — results are memoised under a content key
  (platform fingerprint × N × strategy × effective params), so the
  Figure-4 protocol's repeated queries and service-style workloads
  skip re-planning; hits surface in :class:`PlanSweep` tables and
  :meth:`cache_stats`;
* **defaults** — session-wide default params (e.g. an
  ``imbalance_target`` house style) merge under each request's own;
* **vectorisation** — cache misses that share a strategy (and its
  effective params) are grouped and planned through the strategy's
  batched NumPy kernel when it has one (:mod:`repro.core.vectorize`),
  falling back to scalar planning otherwise; toggled per session
  (``PlannerSession(vectorize=False)``) or per call
  (``plan_batch(requests, vectorize=False)``).

Usage::

    from repro.core.session import PlannerSession

    session = PlannerSession(backend="threaded", jobs=4)
    sweep = session.sweep(platform, N=10_000)        # all strategies
    sweep = session.sweep(platform, N=10_000)        # same → all hits
    print(sweep.render(), session.cache_stats().render(), sep="\\n")

Results are bit-identical across backends: a backend only changes
*where* :func:`repro.core.pipeline.plan_request` runs, never what it
computes, and sweeps iterate in sorted strategy order regardless of
completion order.

The module-level :func:`default_session` (serial, caching) backs the
façade in :mod:`repro.core.strategies`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Mapping, Sequence

from repro import obs, registry
from repro.core.backends import Backend, backend_from_spec
from repro.core.cache import (
    CacheStats,
    MemoryPlanCache,
    PlanStore,
    cache_from_spec,
    plan_cache_key,
)
from repro.core.pipeline import (
    PlanRequest,
    PlanResult,
    PlanSweep,
    plan_request,
)
from repro.core.vectorize import plan_batch_requests
from repro.platform.star import StarPlatform


class PlannerSession:
    """Backend-routed, cached, batched planning over the registry.

    Parameters
    ----------
    backend:
        Name of a registered execution backend (``repro list backend``),
        or an already-constructed :class:`~repro.core.backends.Backend`.
    cache:
        ``True`` (default) for a fresh in-process
        :class:`~repro.core.cache.MemoryPlanCache`, ``False`` to plan
        every request anew, a spec string resolved through the
        ``cache`` registry kind (``"memory"`` / ``"sqlite:PATH"`` /
        ``"tiered:PATH"``, see
        :func:`~repro.core.cache.cache_from_spec`), or any
        :class:`~repro.core.cache.PlanStore` instance — share one
        store between sessions, or hand over a durable
        :class:`~repro.core.cache.SQLitePlanCache` so plans survive
        the process and sweeps resume from disk.
    jobs:
        Worker cap forwarded to the backend (``None`` = its default).
    vectorize:
        ``True`` (default) routes each batch's cache misses through
        :func:`repro.core.vectorize.plan_batch_requests`, which fuses
        requests sharing a strategy into one NumPy kernel call where
        the strategy supports it (``hom``, ``het`` and ``hom/k`` do);
        ``False`` plans every miss through the scalar
        :func:`~repro.core.pipeline.plan_request`.  Both paths return
        equal plans (bit-identical up to a documented ``rtol = 1e-12``),
        so cached entries are interchangeable; :meth:`plan_batch` and
        :meth:`sweep` can override the session default per call.
    default_params:
        Session-wide strategy params merged *under* each request's own
        (the request wins on conflicts).
    """

    def __init__(
        self,
        backend: str | Backend = "serial",
        *,
        cache: bool | str | PlanStore = True,
        jobs: int | None = None,
        vectorize: bool = True,
        **default_params: Any,
    ) -> None:
        if isinstance(backend, str):
            # spec form: a bare registered name, or "name:ARG" — e.g.
            # "remote:HOST:PORT" plans through a repro plan server
            self.backend: Backend = backend_from_spec(backend, jobs=jobs)
            self.backend_name = backend
        else:
            self.backend = backend
            self.backend_name = getattr(backend, "name", type(backend).__name__)
        # a store built here from a spec string is session-owned and
        # closed with the session; an instance passed in may be shared
        # between sessions, so its lifecycle stays with the caller
        self._owns_cache = isinstance(cache, str)
        if cache is True:
            self._cache: PlanStore | None = MemoryPlanCache()
        elif cache is False or cache is None:
            self._cache = None
        elif isinstance(cache, str):
            self._cache = cache_from_spec(cache)
        else:
            self._cache = cache
        self.vectorize = bool(vectorize)
        self.default_params: dict[str, Any] = dict(default_params)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release backend workers (idempotent).

        A shared cache instance survives — only a store this session
        built itself from a spec string (``cache="sqlite:..."``) has
        its connections released here; its file of course persists.
        """
        self.backend.shutdown()
        if self._owns_cache and self._cache is not None:
            closer = getattr(self._cache, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "PlannerSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = "off" if self._cache is None else f"{len(self._cache)} entries"
        return (
            f"PlannerSession(backend={self.backend_name!r}, cache={cache})"
        )

    # -- planning --------------------------------------------------------

    def plan(self, request: PlanRequest) -> PlanResult:
        """Plan one request (cache first, then the backend).

        A single request never enters a vector group, so ``plan`` stays
        on the exact scalar codepath whatever the session's
        ``vectorize`` setting.
        """
        return self.plan_batch((request,))[0]

    def plan_batch(
        self,
        requests: Sequence[PlanRequest],
        *,
        vectorize: bool | None = None,
    ) -> List[PlanResult]:
        """Plan many requests; results align with ``requests`` by index.

        Cache lookups happen up front on the calling thread; only the
        misses travel through the backend (concurrently, if it fans
        out), and their results are cached on the way back.  With
        vectorisation on (the session default unless ``vectorize``
        overrides it), misses sharing a strategy are fused into one
        batched kernel call per group — each group is a single backend
        item — and strategies without a kernel fall back to scalar
        planning.  Cache traffic (lookups, misses, stored entries) is
        identical on both paths.
        """
        use_vectorize = self.vectorize if vectorize is None else bool(vectorize)
        requests = [self._with_defaults(req) for req in requests]
        results: List[PlanResult | None] = [None] * len(requests)
        misses: List[tuple[int, Any, PlanRequest]] = []
        # obs.span is a no-op unless the calling thread carries an
        # active trace (a sampled request on a --trace server); the
        # untraced hot path pays one context-var read per seam
        with obs.span("cache_lookup", requests=len(requests)) as lookup_span:
            for i, req in enumerate(requests):
                # resolve eagerly: unknown strategies fail fast with the
                # registry's "expected one of …" message, and the factory
                # identity feeds the cache key
                factory = registry.get("strategy", req.strategy)
                if self._cache is None:
                    misses.append((i, None, req))
                    continue
                # keying lives with the session, not the store: any
                # PlanStore (memory, sqlite, tiered, plugin) sees the same
                # content keys, so stores can warm each other
                key = plan_cache_key(req, factory)
                hit = self._cache.get(key)
                if hit is not None:
                    results[i] = replace(
                        hit, request=req, cached=True, elapsed_s=0.0
                    )
                else:
                    misses.append((i, key, req))
            if lookup_span is not None:
                lookup_span.meta["misses"] = len(misses)
        if misses:
            miss_requests = [req for _, _, req in misses]
            # recorded on the calling thread, so it covers kernel time
            # plus any backend fan-out wait — the whole planning cost
            # of the batch as this request experienced it
            with obs.span(
                "plan_kernel",
                misses=len(misses),
                vectorize=use_vectorize,
            ):
                if use_vectorize:
                    planned = plan_batch_requests(miss_requests, self.backend)
                else:
                    planned = self.backend.map(plan_request, miss_requests)
            for (i, key, _), result in zip(misses, planned):
                if self._cache is not None:
                    self._cache.put(key, result)
                results[i] = result
        return results  # type: ignore[return-value]

    def sweep(
        self,
        platform: StarPlatform,
        N: float,
        strategies: Sequence[str] | None = None,
        vectorize: bool | None = None,
        **params: Any,
    ) -> PlanSweep:
        """Every registered (or the named) strategies on one instance.

        Deterministic by construction: strategy order is sorted by name
        whatever the backend, each strategy's plan is independent of the
        others, and planning itself is pure — so serial, concurrent and
        vectorised sweeps all render identical tables.  The sweep
        records how its requests fared against the plan cache.
        ``vectorize`` overrides the session default for this sweep (a
        sweep holds one request per strategy, so fusion only kicks in
        when strategies repeat — it mainly matters for callers looping
        sweeps through :meth:`plan_batch`).
        """
        names = (
            tuple(sorted(strategies))
            if strategies is not None
            else registry.available("strategy")
        )
        before = self._cache.stats if self._cache is not None else None
        results = self.plan_batch(
            [
                PlanRequest(platform=platform, N=N, strategy=name, params=params)
                for name in names
            ],
            vectorize=vectorize,
        )
        hits = misses = None
        if self._cache is not None and before is not None:
            after = self._cache.stats
            hits = after.hits - before.hits
            misses = after.misses - before.misses
        return PlanSweep(
            N=float(N),
            results=dict(zip(names, results)),
            cache_hits=hits,
            cache_misses=misses,
        )

    # -- cache -----------------------------------------------------------

    @property
    def cache(self) -> PlanStore | None:
        """The session's plan store (``None`` when caching is off)."""
        return self._cache

    def cache_stats(self) -> CacheStats | None:
        """Cumulative cache statistics (``None`` when caching is off)."""
        return self._cache.stats if self._cache is not None else None

    def clear_cache(self) -> None:
        """Invalidate every cached plan and reset the statistics."""
        if self._cache is not None:
            self._cache.clear()

    # -- helpers ---------------------------------------------------------

    def _with_defaults(self, request: PlanRequest) -> PlanRequest:
        if not self.default_params:
            return request
        merged: Mapping[str, Any] = {
            **self.default_params,
            **dict(request.params),
        }
        if merged == dict(request.params):
            return request
        return replace(request, params=merged)


#: lazily constructed process-wide session backing the façade helpers
_default_session: PlannerSession | None = None


def default_session() -> PlannerSession:
    """The process-wide session (serial backend, caching on).

    Backs the :mod:`repro.core.strategies` façade when no explicit
    session is passed.
    """
    global _default_session
    if _default_session is None:
        _default_session = PlannerSession(backend="serial", cache=True)
    return _default_session


def reset_default_session() -> None:
    """Drop the process-wide session (tests, plugin reloads)."""
    global _default_session
    if _default_session is not None:
        _default_session.close()
    _default_session = None
