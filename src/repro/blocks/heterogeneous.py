"""The Heterogeneous Blocks strategy (``Comm_het``, §4.1.2).

One rectangle per worker, areas proportional to speeds (perfect load
balance by construction), geometry from the PERI-SUM column-based
partitioner.  Worker *i* receives the ``k`` consecutive values of ``a``
and ``l`` values of ``b`` spanned by its rectangle, so its
communication cost is the scaled half-perimeter ``k + l``; the total is
``N ×`` (sum of unit-square half-perimeters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro import registry
from repro.blocks.metrics import StrategyResult, batch_platform_groups
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_positive


@register(
    "strategy",
    "het",
    summary="Heterogeneous Blocks: one PERI-SUM rectangle per worker (§4.1.2)",
    section="§4.1.2",
)
@dataclass(frozen=True)
class HeterogeneousBlocksStrategy:
    """Plan an outer product with one speed-proportional rectangle each.

    ``partitioner`` names any registered area-vector partitioner
    (``repro list partitioner``); the default is the paper's PERI-SUM
    column-based DP.  Swapping it in a :class:`PlanRequest`'s params is
    how the partitioner ablation runs through sessions.
    """

    partitioner: str = "peri-sum"

    def plan(self, platform: StarPlatform, N: float) -> StrategyResult:
        """Partition, scale to ``N × N``, account communications.

        Finish times: worker *i* computes its whole rectangle, i.e.
        :math:`x_i N^2` products at cycle time :math:`w_i` — identical
        for all workers up to float error, so ``e ≈ 0`` (the perfect
        balance the paper imposes as a constraint).
        """
        check_positive(N, "N")
        x = platform.normalized_speeds
        part = registry.create("partitioner", self.partitioner, x)
        areas = np.empty(platform.size)
        for rect in part:
            areas[rect.owner] = rect.area
        finish = areas * (N * N) * platform.cycle_times
        return self._result(platform, float(N), part, finish)

    def plan_batch(
        self,
        platforms: Sequence[StarPlatform],
        Ns: Sequence[float],
    ) -> List[StrategyResult]:
        """Plan a whole batch in one pass per distinct speed vector.

        The partition geometry depends only on the normalized speed
        vector, so requests on content-identical platforms (matching
        :meth:`~repro.platform.star.StarPlatform.fingerprint`) share one
        partitioner run; their finish times come out of a single stacked
        ``areas × N² × w`` NumPy product whose per-element op order
        matches :meth:`plan` exactly, so batched plans are bit-identical
        to scalar ones.  Called by :mod:`repro.core.vectorize` for
        session batches; callable directly too.
        """
        results: List[StrategyResult | None] = [None] * len(platforms)
        for idxs in batch_platform_groups(platforms, Ns).values():
            platform = platforms[idxs[0]]
            x = platform.normalized_speeds
            part = registry.create("partitioner", self.partitioner, x)
            areas = np.empty(platform.size)
            for rect in part:
                areas[rect.owner] = rect.area
            Ns_g = np.array([float(Ns[i]) for i in idxs])
            # one stacked pass; row g is exactly areas * (N*N) * w
            finish_stack = (
                areas[None, :] * (Ns_g * Ns_g)[:, None]
            ) * platform.cycle_times[None, :]
            for row, i in enumerate(idxs):
                results[i] = self._result(
                    platforms[i], float(Ns[i]), part, finish_stack[row]
                )
        return results  # type: ignore[return-value]

    def _result(
        self,
        platform: StarPlatform,
        N: float,
        part,
        finish: np.ndarray,
    ) -> StrategyResult:
        """Scale one partition to ``N`` and wrap it as a result."""
        scaled = part.scaled(N)
        comm = scaled.sum_half_perimeters
        imbalance = (
            0.0
            if np.allclose(finish, finish[0], rtol=1e-9)
            else float((finish.max() - finish.min()) / finish.min())
        )
        return StrategyResult(
            strategy="het",
            N=N,
            speeds=platform.speeds,
            comm_volume=float(comm),
            finish_times=finish,
            imbalance=imbalance,
            detail={
                "partition": part,
                "scaled_partition": scaled,
                "partitioner": self.partitioner,
            },
        )
