#!/usr/bin/env python3
"""Remote planning tour: one plan server, many transparent clients.

Boots a :class:`repro.service.server.PlanServer` in-process (the same
thing ``repro serve`` runs) and shows the three ways clients reach it:

1. ``backend="remote:HOST:PORT"`` — the session ships whole planning
   batches to the server and gets identical results back;
2. ``cache="http://HOST:PORT"`` — the session plans locally but reads
   and warms the *server's* store, so separate processes share hits;
3. ``cache="tiered:http://HOST:PORT"`` — same, with a local memory
   front so hot keys skip the network.

Everything is stdlib HTTP on 127.0.0.1; runs in a few seconds.

Run: ``python examples/remote_planning.py``
"""

import numpy as np

from repro.core.session import PlannerSession
from repro.platform.star import StarPlatform
from repro.service.server import PlanServer


def main() -> None:
    platform = StarPlatform.from_speeds([1, 2, 4, 8])

    with PlanServer(port=0, backend="serial", cache="memory") as server:
        print(f"plan server up at {server.url}")
        print()

        # --- 1. remote backend: offload the whole sweep ---------------
        with PlannerSession() as local, PlannerSession(
            backend=f"remote:{server.host}:{server.port}", cache=False
        ) as remote:
            here = local.sweep(platform, N=10_000.0)
            there = remote.sweep(platform, N=10_000.0)
        for name in here.results:
            a = here.results[name].comm_volume
            b = there.results[name].comm_volume
            assert np.isclose(a, b, rtol=1e-12), name
        print("remote sweep == local sweep, strategy by strategy:")
        print(there.render())
        print()

        # --- 2. the server store as a shared cache --------------------
        # A "second process" (fresh session, no local cache) sees the
        # entries the remote sweep just planted server-side:
        with PlannerSession(cache=f"http://{server.host}:{server.port}") as shared:
            sweep = shared.sweep(platform, N=10_000.0)
        print(
            f"shared-store sweep: {sweep.cache_hits} hit(s), "
            f"{sweep.cache_misses} miss(es) — warmed by the remote run"
        )

        # --- 3. tiered: memory front over the shared store ------------
        with PlannerSession(
            cache=f"tiered:http://{server.host}:{server.port}"
        ) as tiered:
            tiered.sweep(platform, N=10_000.0)   # fills the local front
            tiered.sweep(platform, N=10_000.0)   # pure memory hits
            stats = tiered.cache_stats()
        print(f"tiered per-tier hits: {dict(stats.tier_hits)}")
        print()
        print("server-side view (what /cache/stats serves):")
        print(server.session.cache_stats().render())


if __name__ == "__main__":
    main()
