"""repro.obs — stdlib-only distributed tracing for the serving stack.

One traced operation carries a :class:`TraceContext` across process
hops in the ``X-Repro-Trace`` header; each process records named
:class:`Span` sections into a lock-guarded :class:`SpanRecorder`
(JSONL files via ``--trace``), and :mod:`repro.obs.assemble` joins the
files back into per-trace trees with per-stage p50/p99 and a
critical-path breakdown (``repro trace``).

This package must stay importable by every layer — core sessions
included — so it depends on nothing beyond the standard library.
"""

from repro.obs.context import (
    SPAN_ID_CHARS,
    TRACE_HEADER,
    TRACE_ID_CHARS,
    TraceContext,
    new_span_id,
    new_trace_id,
    parse_trace_header,
    start_trace,
)
from repro.obs.recorder import (
    ActiveTrace,
    Span,
    SpanRecorder,
    activate,
    current,
    parse_span_line,
    serving,
    span,
)
from repro.obs.assemble import (
    StageStats,
    Trace,
    assemble_traces,
    read_spans,
    render_trace,
    stage_stats,
)

__all__ = [
    "TRACE_HEADER",
    "TRACE_ID_CHARS",
    "SPAN_ID_CHARS",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "parse_trace_header",
    "start_trace",
    "Span",
    "SpanRecorder",
    "ActiveTrace",
    "activate",
    "current",
    "serving",
    "span",
    "parse_span_line",
    "Trace",
    "StageStats",
    "read_spans",
    "assemble_traces",
    "stage_stats",
    "render_trace",
]
