"""Partitioning the unit square into rectangles of prescribed areas.

The substrate behind the Heterogeneous Blocks strategy (§4.1.2): given
areas :math:`a_1, \\dots, a_p` (the normalized speeds), tile the unit
square with ``p`` rectangles of exactly those areas while minimising the
sum of half-perimeters (**PERI-SUM**, = communication volume for the
outer product) or the maximum half-perimeter (**PERI-MAX**).

The general problem is NP-complete (Beaumont, Boudet, Rastello, Robert,
*Algorithmica* 2002); the column-based relaxation is solvable optimally
in :math:`O(p^2)` by dynamic programming and carries the paper's
guarantee :math:`\\hat{C} \\le 1 + \\frac{5}{4} LB \\le \\frac{7}{4} LB`.
"""

from repro.partition.rectangle import Rectangle, Partition
from repro.partition.column_based import (
    peri_sum_partition,
    peri_sum_cost,
    column_groups,
)
from repro.partition.perimax import peri_max_partition
from repro.partition.recursive import recursive_bisection_partition
from repro.partition.naive import strip_partition, grid_partition
from repro.partition.lower_bound import (
    peri_sum_lower_bound,
    peri_max_lower_bound,
)

__all__ = [
    "Rectangle",
    "Partition",
    "peri_sum_partition",
    "peri_sum_cost",
    "column_groups",
    "peri_max_partition",
    "recursive_bisection_partition",
    "strip_partition",
    "grid_partition",
    "peri_sum_lower_bound",
    "peri_max_lower_bound",
]
