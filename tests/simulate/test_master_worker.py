"""Tests for repro.simulate.master_worker — solver/simulator agreement."""

import numpy as np
import pytest

from repro.core.cost_models import PowerLawCost
from repro.dlt.nonlinear_solver import solve_nonlinear_parallel
from repro.dlt.single_round import solve_linear_one_port, solve_linear_parallel
from repro.platform.comm_models import BoundedMultiport, OnePort
from repro.platform.star import StarPlatform
from repro.simulate.master_worker import simulate_allocation


class TestParallelLinks:
    def test_matches_linear_closed_form(self, heterogeneous_platform):
        """The discrete-event replay reproduces the analytic times."""
        alloc = solve_linear_parallel(heterogeneous_platform, 200.0)
        timelines, trace, makespan = simulate_allocation(
            heterogeneous_platform, alloc.amounts
        )
        assert makespan == pytest.approx(alloc.makespan, rel=1e-9)
        for i, tl in enumerate(timelines):
            assert tl.recv_end == pytest.approx(alloc.receive_end[i], rel=1e-9)
            assert tl.compute_end == pytest.approx(alloc.finish[i], rel=1e-9)

    def test_matches_nonlinear_solver(self):
        plat = StarPlatform.from_speeds([1.0, 2.0, 5.0])
        alloc = solve_nonlinear_parallel(plat, 100.0, alpha=2.0)
        _, _, makespan = simulate_allocation(
            plat, alloc.amounts, cost_model=PowerLawCost(alpha=2.0)
        )
        assert makespan == pytest.approx(alloc.makespan, rel=1e-6)

    def test_trace_has_recv_and_compute(self, homogeneous_platform):
        _, trace, _ = simulate_allocation(homogeneous_platform, [1.0] * 4)
        kinds = {r.kind for r in trace.records}
        assert kinds == {"recv", "compute"}

    def test_zero_amount_worker_finishes_at_zero(self):
        plat = StarPlatform.homogeneous(2)
        timelines, _, _ = simulate_allocation(plat, [10.0, 0.0])
        assert timelines[1].compute_end == 0.0


class TestOnePort:
    def test_matches_one_port_closed_form(self):
        plat = StarPlatform.from_speeds(
            [1.0, 2.0, 4.0], bandwidths=[1.0, 2.0, 0.5]
        ).with_comm_model(OnePort())
        alloc = solve_linear_one_port(plat, 150.0)
        _, _, makespan = simulate_allocation(
            plat, alloc.amounts, order=alloc.order
        )
        assert makespan == pytest.approx(alloc.makespan, rel=1e-9)

    def test_recv_windows_do_not_overlap(self):
        plat = StarPlatform.homogeneous(3).with_comm_model(OnePort())
        timelines, _, _ = simulate_allocation(plat, [3.0, 2.0, 1.0])
        ordered = sorted(timelines, key=lambda t: t.recv_start)
        for a, b in zip(ordered, ordered[1:]):
            assert b.recv_start >= a.recv_end - 1e-12


class TestValidation:
    def test_amount_shape_checked(self, homogeneous_platform):
        with pytest.raises(ValueError):
            simulate_allocation(homogeneous_platform, [1.0, 2.0])

    def test_negative_amount_rejected(self, homogeneous_platform):
        with pytest.raises(ValueError):
            simulate_allocation(homogeneous_platform, [1.0, -1.0, 1.0, 1.0])

    def test_unsupported_model_rejected(self):
        plat = StarPlatform.homogeneous(2).with_comm_model(
            BoundedMultiport(master_bandwidth=1.0)
        )
        with pytest.raises(NotImplementedError):
            simulate_allocation(plat, [1.0, 1.0])
