"""Equivalence suite for the partition batch kernels.

The ``partition_batch`` seam mirrors the strategy ``plan_batch``
protocol: for PERI-SUM and PERI-MAX alike, output ``i`` of the batch
kernel must be *bit-identical* to the scalar partitioner run on the
same area vector (shared stacked DP core, shared geometry assembly),
so plan-cache entries produced by either path are interchangeable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry
from repro.partition.column_based import (
    batch_partitions,
    column_groups,
    peri_sum_partition,
    peri_sum_partition_batch,
)
from repro.partition.perimax import (
    peri_max_partition,
    peri_max_partition_batch,
)
from repro.platform.generators import make_speeds


def random_vectors(seed=11, sizes=(2, 3, 5, 8, 13, 21, 34), per_size=3):
    rng = np.random.default_rng(seed)
    vecs = []
    for p in sizes:
        for model in ("uniform", "lognormal"):
            for _ in range(per_size):
                x = make_speeds(model, p, rng)
                vecs.append(x / x.sum())
    return vecs


SCALAR_AND_BATCH = [
    pytest.param(peri_sum_partition, peri_sum_partition_batch, id="peri-sum"),
    pytest.param(peri_max_partition, peri_max_partition_batch, id="peri-max"),
]


@pytest.mark.parametrize("scalar, batch", SCALAR_AND_BATCH)
class TestBitIdentity:
    def test_mixed_sizes_bit_identical(self, scalar, batch):
        vecs = random_vectors()
        parts = batch(vecs)
        assert len(parts) == len(vecs)
        for a, part in zip(vecs, parts):
            expected = scalar(a)
            # Partition equality compares exact rectangle tuples — this
            # is the bit-identical half of the vectorisation contract.
            assert part == expected

    def test_equal_areas(self, scalar, batch):
        vecs = [np.full(p, 1.0 / p) for p in (1, 2, 4, 9, 16)]
        for a, part in zip(vecs, batch(vecs)):
            assert part == scalar(a)

    def test_single_vector_batch(self, scalar, batch):
        a = np.array([0.5, 0.3, 0.2])
        (part,) = batch([a])
        assert part == scalar(a)

    def test_duplicates_share_one_partition(self, scalar, batch):
        a = np.array([0.4, 0.35, 0.25])
        b = np.array([0.6, 0.4])
        parts = batch([a, b, a.copy(), a])
        assert parts[0] is parts[2]
        assert parts[0] is parts[3]
        assert parts[1] == scalar(b)

    def test_validation_errors_propagate(self, scalar, batch):
        with pytest.raises(ValueError):
            batch([np.array([0.5, 0.6])])  # does not sum to 1

    def test_partitions_validate(self, scalar, batch):
        for part in batch(random_vectors(seed=5, sizes=(6, 12), per_size=2)):
            part.validate()


class TestRegistrySeam:
    @pytest.mark.parametrize(
        "name, kernel",
        [
            ("peri-sum", peri_sum_partition_batch),
            ("peri-max", peri_max_partition_batch),
        ],
    )
    def test_factory_exposes_partition_batch(self, name, kernel):
        factory = registry.get("partitioner", name)
        assert getattr(factory, "partition_batch", None) is kernel


class TestStackedDP:
    def test_stacked_groups_match_scalar(self):
        """The stacked PERI-SUM DP row-for-row equals the scalar DP."""
        from repro.partition.column_based import _column_groups_stacked

        rng = np.random.default_rng(3)
        p = 17
        A = rng.dirichlet(np.ones(p), size=8)
        stacked = _column_groups_stacked(A)
        for b in range(A.shape[0]):
            assert stacked[b] == column_groups(A[b])

    def test_batch_partitions_rejects_bad_grouper_output(self):
        a = np.array([0.5, 0.5])
        with pytest.raises(ValueError, match="at least one rectangle"):
            batch_partitions([a], lambda A: [[[0, 1], []]])
