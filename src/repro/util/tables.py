"""Plain-text table rendering for experiment output.

The paper reports its evaluation as figures; since this reproduction is an
offline library, every experiment renders the same series as an ASCII
table (one row per x-axis point, one column per strategy).  Benchmarks and
examples share these renderers so their output is uniform and diffable.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

Number = Union[int, float]


def _fmt_cell(value, floatfmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``floatfmt``; ``None`` renders as ``-``.
    Column widths adapt to content.  Returns the table as a single string
    (callers print it).
    """
    str_rows = [[_fmt_cell(v, floatfmt) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    x_name: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render named y-series against a shared x axis.

    This matches the structure of the paper's Figure 4: x = number of
    processors, one series per strategy (ratio to the lower bound).
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_values)}"
            )
    headers = [x_name] + names
    rows = [
        [x] + [series[name][i] for name in names] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, floatfmt=floatfmt, title=title)


def format_mean_std(mean: float, std: float, floatfmt: str = ".3f") -> str:
    """Render ``mean ± std`` compactly, as used in experiment summaries."""
    return f"{format(mean, floatfmt)}±{format(std, floatfmt)}"
