"""Benchmarks for the DLT substrate itself (supporting machinery).

Not a paper figure, but the harness that every experiment leans on:
closed-form solvers, the event-driven replay and the demand-driven
scheduler (both the heap and the closed-form fast path).
"""

import numpy as np
import pytest

from repro.dlt.single_round import solve_linear_one_port, solve_linear_parallel
from repro.platform.star import StarPlatform
from repro.simulate.demand_driven import (
    identical_task_schedule,
    run_demand_driven,
    uniform_tasks,
)
from repro.simulate.master_worker import simulate_allocation


@pytest.fixture(scope="module")
def big_platform():
    rng = np.random.default_rng(0)
    return StarPlatform.from_speeds(
        rng.uniform(1, 100, 256), rng.uniform(1, 10, 256)
    )


def test_linear_parallel_solver(benchmark, big_platform):
    alloc = benchmark(solve_linear_parallel, big_platform, 1e6)
    assert alloc.total == pytest.approx(1e6)


def test_linear_one_port_solver(benchmark, big_platform):
    alloc = benchmark(solve_linear_one_port, big_platform, 1e6)
    assert alloc.total == pytest.approx(1e6)


def test_event_replay(benchmark, big_platform):
    amounts = solve_linear_parallel(big_platform, 1e6).amounts
    _, _, makespan = benchmark(simulate_allocation, big_platform, amounts)
    assert makespan > 0


def test_demand_driven_heap(benchmark):
    plat = StarPlatform.from_speeds(np.linspace(1, 20, 32))
    tasks = uniform_tasks(5000, work=1.0)
    res = benchmark(run_demand_driven, plat, tasks)
    assert res.counts.sum() == 5000


def test_demand_driven_closed_form(benchmark):
    """The fast path that makes the Figure-4 sweeps feasible."""
    plat = StarPlatform.from_speeds(np.linspace(1, 20, 32))
    counts, _ = benchmark(identical_task_schedule, plat, 5_000_000, 1.0)
    assert counts.sum() == 5_000_000
