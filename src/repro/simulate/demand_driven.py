"""Demand-driven task execution — the MapReduce scheduling model.

§4.1.1: "a demand driven model is used, where processors ask for new
tasks as soon as they end processing one".  We model this as list
scheduling: a bag of tasks, each worker pulls the next one the moment
it becomes free.  Ties are broken by worker index (deterministic).  We
ignore transfer overlap (tasks carry their data cost inside their
duration when the caller wants it), matching the paper's accounting
where communication is measured as a *volume*, not simulated in time.

This module is the execution back-end of the Homogeneous-Blocks
strategies: it produces the per-worker task counts, finish times and
the load-imbalance metric

.. math:: e = \\frac{t_\\text{max} - t_\\text{min}}{t_\\text{min}}

that drives the ``Comm_hom/k`` refinement loop (§4.3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_integer, check_positive


@dataclass(frozen=True)
class Task:
    """One unit of schedulable work.

    ``work`` is in computation units (worker *i* spends
    ``work * cycle_time[i]``); ``data`` is the input volume the master
    must ship for this task (used for communication accounting only).
    ``tag`` is an opaque identifier (e.g. a block's grid coordinates).
    """

    work: float
    data: float = 0.0
    tag: object = None

    def __post_init__(self) -> None:
        if self.work < 0 or self.data < 0:
            raise ValueError("task work and data must be non-negative")


@dataclass
class DemandDrivenResult:
    """Outcome of a demand-driven run."""

    #: task indices assigned to each worker, in execution order
    assignment: List[List[int]]
    #: completion time of each worker's last task (0 if none)
    finish_times: np.ndarray
    #: per-worker count of tasks executed
    counts: np.ndarray
    #: per-worker total data shipped (sum of task.data)
    data_volumes: np.ndarray
    makespan: float
    tasks: List[Task] = field(repr=False, default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """The paper's :math:`e = (t_{max} - t_{min}) / t_{min}` (§4.3).

        Only workers that received at least one task would naturally be
        counted, but the paper's metric deliberately punishes *starved*
        workers too — a worker with no task has :math:`t = 0` and the
        imbalance is infinite.  We follow that: ``inf`` when any worker
        is idle the whole run (and the platform has > 1 worker).
        """
        t = self.finish_times
        if t.size <= 1:
            return 0.0
        tmin = float(t.min())
        tmax = float(t.max())
        if tmin == 0.0:
            return float("inf") if tmax > 0 else 0.0
        return (tmax - tmin) / tmin

    @property
    def total_data(self) -> float:
        """Total volume shipped by the master across all tasks."""
        return float(self.data_volumes.sum())


@register(
    "simulation",
    "demand-driven",
    summary="Bag-of-tasks pull scheduling (the MapReduce execution model)",
)
def run_demand_driven(
    platform: StarPlatform,
    tasks: Sequence[Task],
) -> DemandDrivenResult:
    """List-schedule ``tasks`` on the platform, earliest-free-worker first.

    Deterministic: the task order is the given order; whenever several
    workers are free simultaneously the lowest index wins.  This is the
    greedy demand-driven model of §4.1.1 (a faster worker drains more
    tasks).  Runs in ``O(T log p)``.
    """
    p = platform.size
    w = platform.cycle_times
    assignment: List[List[int]] = [[] for _ in range(p)]
    finish = np.zeros(p, dtype=float)
    counts = np.zeros(p, dtype=int)
    data = np.zeros(p, dtype=float)

    # Priority queue of (next-free-time, worker-index).
    heap: List[tuple[float, int]] = [(0.0, i) for i in range(p)]
    heapq.heapify(heap)

    for t_idx, task in enumerate(tasks):
        free_at, i = heapq.heappop(heap)
        duration = task.work * w[i]
        done = free_at + duration
        assignment[i].append(t_idx)
        finish[i] = done
        counts[i] += 1
        data[i] += task.data
        heapq.heappush(heap, (done, i))

    return DemandDrivenResult(
        assignment=assignment,
        finish_times=finish,
        counts=counts,
        data_volumes=data,
        makespan=float(finish.max()) if len(tasks) else 0.0,
        tasks=list(tasks),
    )


def uniform_tasks(n: int, work: float, data: float = 0.0) -> List[Task]:
    """``n`` identical tasks — the homogeneous-chunks bag of §4.1.1."""
    check_integer(n, "n", minimum=0)
    if n > 0:
        check_positive(work, "work")
    return [Task(work=work, data=data, tag=k) for k in range(n)]


def identical_task_schedule(
    platform: StarPlatform, n_tasks: int, task_work: float
) -> tuple[np.ndarray, np.ndarray]:
    """Closed form of the greedy schedule for *identical* tasks.

    Returns ``(counts, finish_times)`` equal to what
    :func:`run_demand_driven` produces for ``n_tasks`` copies of a task
    of ``task_work`` — but in ``O(p log)`` instead of
    ``O(n_tasks log p)``, which is what makes the Figure-4 sweeps (up to
    millions of chunks per trial) tractable.

    Why it's exact: the greedy process hands task number ``m`` of worker
    *i* a start time ``m * d_i`` (``d_i = task_work * w_i``); the
    ``n_tasks`` executed tasks are those with the smallest start times
    across workers, ties broken by worker index (the heap's behaviour).
    Counting starts below a threshold ``T`` is
    ``Σ_i (floor(T/d_i) + 1)``, monotone in ``T`` — binary search finds
    the cut, then ties at the cut go to the lowest-index workers.
    The closed form is property-tested against the heap version.
    """
    check_integer(n_tasks, "n_tasks", minimum=0)
    p = platform.size
    if n_tasks == 0:
        return np.zeros(p, dtype=np.int64), np.zeros(p)
    check_positive(task_work, "task_work")
    d = task_work * platform.cycle_times

    # Binary search (over reals) for the n-th smallest start time T*.
    def count_upto(T: float) -> int:
        # starts k*d_i <= T  ⇒  k = 0 .. floor(T/d_i)
        return int(np.sum(np.floor(T / d * (1 + 1e-15)) + 1))

    lo, hi = 0.0, float(d.min()) * n_tasks
    while count_upto(hi) < n_tasks:
        hi *= 2.0
    for _ in range(128):
        mid = 0.5 * (lo + hi)
        if count_upto(mid) < n_tasks:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-13 * max(1.0, hi):
            break
    T = hi
    counts = (np.floor(T / d * (1 + 1e-15)) + 1).astype(np.int64)
    # Ties exactly at T* may overshoot.  The heap orders workers by
    # *float-accumulated* start times (free_at grows by repeated
    # addition), so two mathematically tied starts can differ in the
    # heap's eyes — e.g. 51 additions of 1.3/17 and 36 additions of
    # 1.3/12 both equal 3.9 exactly but accumulate to different floats.
    # Release tied tasks in the order the heap would skip them: largest
    # accumulated start first, index breaking exact float ties.
    excess = int(counts.sum()) - n_tasks
    if excess > 0:
        last_start = (counts - 1) * d
        tied = np.flatnonzero(np.isclose(last_start, T, rtol=1e-9))

        def heap_start(i: int) -> float:
            acc, step = 0.0, float(d[i])
            for _ in range(int(counts[i]) - 1):
                acc += step
            return acc

        release = sorted(tied, key=lambda i: (heap_start(i), i))
        for i in release[::-1][:excess]:
            counts[i] -= 1
        excess = int(counts.sum()) - n_tasks
    # Numerical fallback (float drift past the tie layer): settle the
    # remainder greedily, one task at a time.
    while excess > 0:  # pragma: no cover - float-drift safety net
        busy = np.flatnonzero(counts > 0)
        i = busy[np.argmax((counts[busy] - 1) * d[busy])]
        counts[i] -= 1
        excess -= 1
    while excess < 0:  # pragma: no cover - float-drift safety net
        i = int(np.argmin(counts * d))
        counts[i] += 1
        excess += 1
    return counts, counts * d


def proportional_share_counts(
    platform: StarPlatform, n_tasks: int
) -> np.ndarray:
    """Expected per-worker task counts ``n_i ≈ n · x_i`` (rounded).

    The paper's idealisation assumes ``s_i / s_1`` tasks per worker are
    integral; this helper gives the realistic rounded counts used to
    sanity-check the demand-driven simulation (the greedy result matches
    these within ±1 for identical tasks).
    """
    check_integer(n_tasks, "n_tasks", minimum=0)
    x = platform.normalized_speeds
    raw = x * n_tasks
    counts = np.floor(raw).astype(int)
    # Distribute the remainder to the largest fractional parts.
    remainder = n_tasks - counts.sum()
    if remainder > 0:
        frac = raw - np.floor(raw)
        for i in np.argsort(-frac)[:remainder]:
            counts[i] += 1
    return counts
