"""Tests for repro.platform.generators."""

import numpy as np
import pytest

from repro.platform.generators import (
    SPEED_MODELS,
    half_fast_speeds,
    homogeneous_speeds,
    lognormal_speeds,
    make_speeds,
    uniform_speeds,
)


class TestHomogeneous:
    def test_all_equal(self):
        s = homogeneous_speeds(7, speed=2.5)
        assert s.shape == (7,)
        assert np.all(s == 2.5)

    def test_bad_p(self):
        with pytest.raises(ValueError):
            homogeneous_speeds(0)


class TestUniform:
    def test_range_respected(self):
        s = uniform_speeds(1000, rng=0, low=1.0, high=100.0)
        assert s.min() >= 1.0 and s.max() <= 100.0

    def test_deterministic(self):
        assert np.array_equal(uniform_speeds(5, rng=3), uniform_speeds(5, rng=3))

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            uniform_speeds(3, low=5.0, high=1.0)


class TestLognormal:
    def test_positive(self):
        s = lognormal_speeds(500, rng=1)
        assert np.all(s > 0)

    def test_paper_parameters_median_near_one(self):
        """µ=0 ⇒ median e^0 = 1."""
        s = lognormal_speeds(20000, rng=2)
        assert np.median(s) == pytest.approx(1.0, rel=0.05)

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            lognormal_speeds(3, sigma=0.0)


class TestHalfFast:
    def test_even_split(self):
        s = half_fast_speeds(10, k=4.0)
        assert np.sum(s == 1.0) == 5
        assert np.sum(s == 4.0) == 5

    def test_odd_extra_is_slow(self):
        s = half_fast_speeds(7, k=3.0)
        assert np.sum(s == 1.0) == 4
        assert np.sum(s == 3.0) == 3

    def test_sorted_ascending(self):
        s = half_fast_speeds(6, k=9.0)
        assert np.all(np.diff(s) >= 0)

    def test_custom_slow_speed(self):
        s = half_fast_speeds(4, k=2.0, slow=10.0)
        assert set(np.unique(s)) == {10.0, 20.0}


class TestDispatch:
    @pytest.mark.parametrize("name", sorted(SPEED_MODELS))
    def test_all_models_produce_valid_speeds(self, name):
        s = make_speeds(name, 12, rng=0)
        assert s.shape == (12,)
        assert np.all(s > 0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown speed model"):
            make_speeds("nope", 3)
