"""The Heterogeneous Blocks strategy (``Comm_het``, §4.1.2).

One rectangle per worker, areas proportional to speeds (perfect load
balance by construction), geometry from the PERI-SUM column-based
partitioner.  Worker *i* receives the ``k`` consecutive values of ``a``
and ``l`` values of ``b`` spanned by its rectangle, so its
communication cost is the scaled half-perimeter ``k + l``; the total is
``N ×`` (sum of unit-square half-perimeters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro import registry
from repro.blocks.metrics import StrategyResult, batch_platform_groups
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_positive


def _owner_areas(part, size: int) -> np.ndarray:
    """Area per processor index, via the partition's coordinate arrays."""
    _, _, w, h, owner = part.coords()
    areas = np.empty(size)
    areas[owner] = w * h
    return areas


@register(
    "strategy",
    "het",
    summary="Heterogeneous Blocks: one PERI-SUM rectangle per worker (§4.1.2)",
    section="§4.1.2",
)
@dataclass(frozen=True)
class HeterogeneousBlocksStrategy:
    """Plan an outer product with one speed-proportional rectangle each.

    ``partitioner`` names any registered area-vector partitioner
    (``repro list partitioner``); the default is the paper's PERI-SUM
    column-based DP.  Swapping it in a :class:`PlanRequest`'s params is
    how the partitioner ablation runs through sessions.
    """

    partitioner: str = "peri-sum"

    def plan(self, platform: StarPlatform, N: float) -> StrategyResult:
        """Partition, scale to ``N × N``, account communications.

        Finish times: worker *i* computes its whole rectangle, i.e.
        :math:`x_i N^2` products at cycle time :math:`w_i` — identical
        for all workers up to float error, so ``e ≈ 0`` (the perfect
        balance the paper imposes as a constraint).
        """
        check_positive(N, "N")
        x = platform.normalized_speeds
        part = registry.create("partitioner", self.partitioner, x)
        finish = _owner_areas(part, platform.size) * (N * N) * platform.cycle_times
        return self._result(platform, float(N), part, finish)

    def plan_batch(
        self,
        platforms: Sequence[StarPlatform],
        Ns: Sequence[float],
    ) -> List[StrategyResult]:
        """Plan a whole batch in one pass per distinct speed vector.

        The partition geometry depends only on the normalized speed
        vector, so requests on content-identical platforms (matching
        :meth:`~repro.platform.star.StarPlatform.fingerprint`) share one
        partitioner run — and when the partitioner exposes a
        ``partition_batch`` kernel (PERI-SUM and PERI-MAX do), ALL
        distinct speed vectors go through one stacked DP call instead of
        one partitioner run each.  Finish times come out of a single
        stacked ``areas × N² × w`` NumPy product whose per-element op
        order matches :meth:`plan` exactly, so batched plans are
        bit-identical to scalar ones.  Called by
        :mod:`repro.core.vectorize` for session batches; callable
        directly too.
        """
        results: List[StrategyResult | None] = [None] * len(platforms)
        groups = list(batch_platform_groups(platforms, Ns).values())
        factory = registry.get("partitioner", self.partitioner)
        vectors = [platforms[idxs[0]].normalized_speeds for idxs in groups]
        kernel = getattr(factory, "partition_batch", None)
        if kernel is not None and len(vectors) > 1:
            parts = kernel(vectors)
        else:
            parts = [factory(x) for x in vectors]
        for idxs, part in zip(groups, parts):
            platform = platforms[idxs[0]]
            areas = _owner_areas(part, platform.size)
            Ns_g = np.array([float(Ns[i]) for i in idxs])
            # one stacked pass; row g is exactly areas * (N*N) * w
            finish_stack = (
                areas[None, :] * (Ns_g * Ns_g)[:, None]
            ) * platform.cycle_times[None, :]
            for row, i in enumerate(idxs):
                results[i] = self._result(
                    platforms[i], float(Ns[i]), part, finish_stack[row]
                )
        return results  # type: ignore[return-value]

    def _result(
        self,
        platform: StarPlatform,
        N: float,
        part,
        finish: np.ndarray,
    ) -> StrategyResult:
        """Scale one partition to ``N`` and wrap it as a result."""
        scaled = part.scaled(N)
        comm = scaled.sum_half_perimeters
        # same test as np.allclose(finish, finish[0], rtol=1e-9) without
        # its per-call machinery (this runs once per planned request)
        balanced = bool(
            (np.abs(finish - finish[0]) <= 1e-8 + 1e-9 * abs(finish[0])).all()
        )
        imbalance = (
            0.0
            if balanced
            else float((finish.max() - finish.min()) / finish.min())
        )
        return StrategyResult(
            strategy="het",
            N=N,
            speeds=platform.speeds,
            comm_volume=float(comm),
            finish_times=finish,
            imbalance=imbalance,
            detail={
                "partition": part,
                "scaled_partition": scaled,
                "partitioner": self.partitioner,
            },
        )
