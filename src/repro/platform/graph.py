"""Arbitrary network platforms, reduced to trees for scheduling.

Real clusters are graphs, not stars; the classical DLT playbook (and
the natural extension of this paper's model) handles them by extracting
a spanning tree rooted at the master and scheduling on that tree.  This
module represents a platform as a :mod:`networkx` graph — nodes carry
compute ``speed``, edges carry ``bandwidth`` — and provides:

* :func:`best_spanning_tree` — the maximum-bandwidth spanning tree
  (maximises the minimum-bandwidth edge on every path, via the maximum
  spanning tree on bandwidths, a classical bottleneck-optimality
  property);
* :func:`widest_paths_tree` — the shortest-path tree under the
  widest-path (max-min bandwidth) metric, an alternative extraction;
* :func:`to_tree_platform` — convert a rooted spanning tree into a
  :class:`repro.platform.tree.TreePlatform` ready for
  :func:`repro.dlt.tree_solver.solve_tree`.

Link capacities along a path are *not* aggregated (store-and-forward,
one hop at a time), matching the tree solver's model.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.platform.tree import TreeNode, TreePlatform
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive


def make_cluster_graph(
    speeds: Mapping[Hashable, float],
    links: Iterable[tuple[Hashable, Hashable, float]],
) -> nx.Graph:
    """Build a platform graph from node speeds and weighted links.

    ``links`` are ``(u, v, bandwidth)`` triples; the graph is validated
    (positive attributes, all endpoints known).
    """
    g = nx.Graph()
    for node, speed in speeds.items():
        check_positive(speed, f"speed[{node!r}]")
        g.add_node(node, speed=float(speed))
    for u, v, bw in links:
        if u not in g or v not in g:
            raise ValueError(f"link ({u!r}, {v!r}) references unknown node")
        check_positive(bw, f"bandwidth[{u!r}-{v!r}]")
        g.add_edge(u, v, bandwidth=float(bw))
    return g


def random_cluster(
    n: int,
    rng: SeedLike = None,
    edge_prob: float = 0.3,
    speed_range: tuple[float, float] = (1.0, 10.0),
    bandwidth_range: tuple[float, float] = (1.0, 10.0),
) -> nx.Graph:
    """A random connected cluster (G(n, p) + a connecting spanning path)."""
    if n < 1:
        raise ValueError("need at least one node")
    gen = make_rng(rng)
    g = nx.Graph()
    for i in range(n):
        g.add_node(i, speed=float(gen.uniform(*speed_range)))
    # guarantee connectivity with a random path, then sprinkle edges
    order = gen.permutation(n)
    for a, b in zip(order, order[1:]):
        g.add_edge(int(a), int(b), bandwidth=float(gen.uniform(*bandwidth_range)))
    for i in range(n):
        for j in range(i + 1, n):
            if not g.has_edge(i, j) and gen.random() < edge_prob:
                g.add_edge(i, j, bandwidth=float(gen.uniform(*bandwidth_range)))
    return g


def _check_platform_graph(g: nx.Graph, root: Hashable) -> None:
    if root not in g:
        raise ValueError(f"root {root!r} not in the graph")
    if not nx.is_connected(g):
        raise ValueError("platform graph must be connected")
    for node, data in g.nodes(data=True):
        if "speed" not in data:
            raise ValueError(f"node {node!r} has no 'speed' attribute")
    for u, v, data in g.edges(data=True):
        if "bandwidth" not in data:
            raise ValueError(f"edge ({u!r}, {v!r}) has no 'bandwidth'")


def best_spanning_tree(g: nx.Graph, root: Hashable) -> nx.Graph:
    """Maximum-bandwidth spanning tree (bottleneck-optimal paths).

    The maximum spanning tree under edge weight = bandwidth maximises,
    for every node, the minimum bandwidth along its path to the root —
    the right objective when every hop is a potential relay bottleneck.
    """
    _check_platform_graph(g, root)
    return nx.maximum_spanning_tree(g, weight="bandwidth")


def widest_paths_tree(g: nx.Graph, root: Hashable) -> nx.Graph:
    """Widest-path (max-min bandwidth) tree via modified Dijkstra.

    Differs from :func:`best_spanning_tree` only in tie-breaking — both
    are bottleneck-optimal — but exercises per-destination path
    extraction, useful when the tree must also bound hop counts.
    """
    _check_platform_graph(g, root)
    width = {node: 0.0 for node in g}
    width[root] = float("inf")
    parent: dict = {}
    visited = set()
    import heapq

    heap = [(-width[root], root)]
    while heap:
        neg_w, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for v, data in g[u].items():
            w = min(-neg_w, data["bandwidth"])
            if w > width[v]:
                width[v] = w
                parent[v] = u
                heapq.heappush(heap, (-w, v))
    tree = nx.Graph()
    for node, data in g.nodes(data=True):
        tree.add_node(node, **data)
    for v, u in parent.items():
        tree.add_edge(u, v, bandwidth=g[u][v]["bandwidth"])
    return tree


def to_tree_platform(
    tree: nx.Graph, root: Hashable, master_computes: bool = True
) -> TreePlatform:
    """Convert a rooted spanning tree into a :class:`TreePlatform`.

    Node names become the stringified graph node labels.  When
    ``master_computes`` is False the root's speed is made negligible,
    matching the paper's non-computing master.
    """
    _check_platform_graph(tree, root)
    if not nx.is_tree(tree):
        raise ValueError("expected a tree (use best_spanning_tree first)")
    root_speed = tree.nodes[root]["speed"] if master_computes else 1e-12
    root_node = TreeNode(speed=float(root_speed), name=str(root))

    def grow(gnode: Hashable, tnode: TreeNode, parent: Hashable | None) -> None:
        for nb in sorted(tree[gnode], key=str):
            if nb == parent:
                continue
            child = tnode.add_child(
                speed=float(tree.nodes[nb]["speed"]),
                bandwidth=float(tree[gnode][nb]["bandwidth"]),
                name=str(nb),
            )
            grow(nb, child, gnode)

    grow(root, root_node, None)
    return TreePlatform(root_node)


def schedule_on_graph(
    g: nx.Graph,
    root: Hashable,
    N: float,
    alpha: float = 1.0,
    extraction: str = "max-spanning",
    master_computes: bool = True,
):
    """End-to-end: graph → spanning tree → tree DLT schedule.

    ``extraction`` ∈ {"max-spanning", "widest-paths"}.  Returns
    ``(TreePlatform, TreeAllocation)``.
    """
    from repro.dlt.tree_solver import solve_tree

    if extraction == "max-spanning":
        tree = best_spanning_tree(g, root)
    elif extraction == "widest-paths":
        tree = widest_paths_tree(g, root)
    else:
        raise ValueError(f"unknown extraction {extraction!r}")
    platform = to_tree_platform(tree, root, master_computes=master_computes)
    return platform, solve_tree(platform, N, alpha=alpha)
