"""Latency-under-SLO search: the highest rate a target sustains.

``repro loadtest --slo-p99-ms X --find-max-rps`` answers the capacity
question the single-rate harness can't: *what is the largest request
rate at which client-observed p99 stays under X milliseconds and the
run still passes its error budget?*  The search is a bracketed
bisection over the rate axis:

1. **Floor probe** — run at the requested base rate.  If even that
   violates the SLO, the answer is "none at or above the floor" and
   the search stops after one run (``max_rps = 0``).
2. **Exponential ramp** — double the rate until a probe fails (or the
   ramp cap is hit).  The last passing rate and the first failing rate
   bracket the capacity cliff.
3. **Bisection** — halve the bracket for a fixed number of rounds.
   Latency near saturation is noisy, so the search stops at a relative
   resolution rather than chasing a fixed-point answer the noise
   would invalidate.

Every probe is a full :func:`~repro.loadtest.driver.run_loadtest` run
(same seed, same mix — only the rate moves), and every probe's verdict
is recorded in the result: a capacity number you can't audit is a
number you can't trust.  Probes are sequential by construction — two
concurrent probes would contend for the same target and measure each
other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.loadtest.report import LoadtestReport

#: bisection stops when the bracket is within this fraction of the cap
RESOLUTION = 0.10

#: safety cap on the exponential ramp (doublings of the floor rate)
MAX_DOUBLINGS = 8


@dataclass
class SloProbe:
    """One probe run: the rate asked for and how the target fared."""

    rps: float
    p99_ms: float
    error_rate: float
    passed_budget: bool
    #: the probe's overall verdict: budget passed AND p99 under SLO
    ok: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rps": round(self.rps, 2),
            "p99_ms": self.p99_ms,
            "error_rate": round(self.error_rate, 6),
            "passed_budget": self.passed_budget,
            "ok": self.ok,
        }


@dataclass
class SloSearchResult:
    """Outcome of a latency-under-SLO capacity search."""

    slo_p99_ms: float
    #: highest probed rate that met the SLO (0.0 = even the floor failed)
    max_rps: float
    #: every probe, in execution order — the audit trail
    probes: List[SloProbe] = field(default_factory=list)
    #: the report of the best passing probe (None when none passed)
    best_report: Optional[LoadtestReport] = None

    @property
    def found(self) -> bool:
        return self.max_rps > 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo_p99_ms": self.slo_p99_ms,
            "max_rps": round(self.max_rps, 2),
            "found": self.found,
            "probes": [probe.as_dict() for probe in self.probes],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"SLO search: p99 <= {self.slo_p99_ms:g}ms "
            f"({len(self.probes)} probes)"
        ]
        for probe in self.probes:
            state = "ok" if probe.ok else "FAIL"
            why = (
                ""
                if probe.passed_budget
                else f" (error rate {probe.error_rate:.2%})"
            )
            lines.append(
                f"  {probe.rps:>8.1f} req/s  p99={probe.p99_ms:>8.2f}ms  "
                f"{state}{why}"
            )
        if self.found:
            lines.append(f"  max sustainable rate: {self.max_rps:.1f} req/s")
        else:
            lines.append("  no probed rate met the SLO")
        return "\n".join(lines)


def find_max_rps(
    target: str,
    *,
    slo_p99_ms: float,
    start_rps: float = 20.0,
    duration: float = 2.0,
    rounds: int = 4,
    runner: Optional[Callable[..., LoadtestReport]] = None,
    **loadtest_kwargs: Any,
) -> SloSearchResult:
    """Bisect for the highest rate whose p99 stays under ``slo_p99_ms``.

    ``start_rps`` is the floor: the search never reports a capacity
    below it (if the floor probe fails, ``max_rps`` is 0.0 and the
    caller knows the target can't hold even the base rate).  ``rounds``
    bounds the bisection after the ramp brackets the cliff; the search
    also stops early once the bracket is within ``RESOLUTION`` of its
    upper edge — tighter answers would be noise.  ``runner`` overrides
    the probe function (tests substitute a synthetic target);
    everything else in ``loadtest_kwargs`` flows into each
    :func:`~repro.loadtest.driver.run_loadtest` probe unchanged.
    """
    if slo_p99_ms <= 0:
        raise ValueError(f"slo_p99_ms must be > 0, got {slo_p99_ms}")
    if start_rps <= 0:
        raise ValueError(f"start_rps must be > 0, got {start_rps}")
    if rounds < 0:
        raise ValueError(f"rounds must be >= 0, got {rounds}")
    if runner is None:
        from repro.loadtest.driver import run_loadtest

        runner = run_loadtest

    result = SloSearchResult(slo_p99_ms=float(slo_p99_ms), max_rps=0.0)

    def probe(rps: float) -> SloProbe:
        report = runner(
            target, rps=rps, duration=duration, **loadtest_kwargs
        )
        outcome = SloProbe(
            rps=rps,
            p99_ms=report.p99_ms,
            error_rate=report.error_rate,
            passed_budget=report.passed,
            ok=report.passed and report.p99_ms <= slo_p99_ms,
        )
        result.probes.append(outcome)
        if outcome.ok and rps > result.max_rps:
            result.max_rps = rps
            result.best_report = report
        return outcome

    # 1) floor: if the base rate already violates the SLO, stop — the
    # answer "less than start_rps" is outside the search's contract
    if not probe(start_rps).ok:
        return result

    # 2) ramp: double until a probe fails, bracketing the cliff
    lo = start_rps
    hi: Optional[float] = None
    rate = start_rps
    for _ in range(MAX_DOUBLINGS):
        rate *= 2.0
        if probe(rate).ok:
            lo = rate
        else:
            hi = rate
            break
    if hi is None:
        # never failed inside the ramp cap: the target outruns the
        # search window; report the last passing rate honestly
        return result

    # 3) bisect the bracket; stop early once further halving is under
    # the noise floor
    for _ in range(rounds):
        if (hi - lo) <= RESOLUTION * hi:
            break
        mid = (lo + hi) / 2.0
        if probe(mid).ok:
            lo = mid
        else:
            hi = mid
    return result
