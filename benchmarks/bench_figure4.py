"""Benchmarks regenerating Figure 4 (a)–(c): experiments E7–E9.

Paper protocol (§4.3): p = 10…100 processors; speeds homogeneous /
uniform[1,100] / lognormal(0,1); 100 trials per point; y-axis = ratio of
communication volume to the lower bound ``LB = 2NΣ√x_i`` for the
``Comm_het``, ``Comm_hom`` and ``Comm_hom/k`` (e ≤ 1%) strategies.

Expected shape assertions (the paper's findings):

* 4(a) homogeneous — every strategy sits at ratio ≈ 1;
* 4(b)/4(c) heterogeneous — ``Comm_het`` within a few %, ``Comm_hom/k``
  reaching 15–30× (we assert > 8× at p = 100 for seed robustness).
"""

import pytest

from repro.core.session import PlannerSession
from repro.experiments.figure4 import run_figure4


def _run_panel(speed_model, protocol):
    # the threaded session fans each trial's strategy sweep out and
    # memoises repeated instances; results are identical to serial
    with PlannerSession(backend="threaded") as session:
        return run_figure4(
            speed_model,
            processors=protocol["processors"],
            trials=protocol["trials"],
            seed=2013,
            session=session,
        )


def test_fig4a_homogeneous(benchmark, figure4_protocol):
    result = benchmark.pedantic(
        _run_panel,
        args=("homogeneous", figure4_protocol),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    # Figure 4a: every registered strategy within a percent of the bound
    for name in result.means:
        assert result.final_ratio(name) < 1.01, name
    # het's overhead shrinks with p
    assert result.means["het"][-1] <= result.means["het"][0] + 1e-9


def test_fig4b_uniform(benchmark, figure4_protocol):
    result = benchmark.pedantic(
        _run_panel,
        args=("uniform", figure4_protocol),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.final_ratio("het") < 1.02  # paper: "never more than 2%"
    assert result.final_ratio("hom/k") > 8.0  # paper: 15-30x
    assert result.final_ratio("hom/k") > result.final_ratio("hom")


def test_fig4c_lognormal(benchmark, figure4_protocol):
    result = benchmark.pedantic(
        _run_panel,
        args=("lognormal", figure4_protocol),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.final_ratio("het") < 1.02
    assert result.final_ratio("hom/k") > 8.0
