"""The Heterogeneous Blocks strategy (``Comm_het``, §4.1.2).

One rectangle per worker, areas proportional to speeds (perfect load
balance by construction), geometry from the PERI-SUM column-based
partitioner.  Worker *i* receives the ``k`` consecutive values of ``a``
and ``l`` values of ``b`` spanned by its rectangle, so its
communication cost is the scaled half-perimeter ``k + l``; the total is
``N ×`` (sum of unit-square half-perimeters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import registry
from repro.blocks.metrics import StrategyResult
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_positive


@register(
    "strategy",
    "het",
    summary="Heterogeneous Blocks: one PERI-SUM rectangle per worker (§4.1.2)",
    section="§4.1.2",
)
@dataclass(frozen=True)
class HeterogeneousBlocksStrategy:
    """Plan an outer product with one speed-proportional rectangle each.

    ``partitioner`` names any registered area-vector partitioner
    (``repro list partitioner``); the default is the paper's PERI-SUM
    column-based DP.  Swapping it in a :class:`PlanRequest`'s params is
    how the partitioner ablation runs through sessions.
    """

    partitioner: str = "peri-sum"

    def plan(self, platform: StarPlatform, N: float) -> StrategyResult:
        """Partition, scale to ``N × N``, account communications.

        Finish times: worker *i* computes its whole rectangle, i.e.
        :math:`x_i N^2` products at cycle time :math:`w_i` — identical
        for all workers up to float error, so ``e ≈ 0`` (the perfect
        balance the paper imposes as a constraint).
        """
        check_positive(N, "N")
        x = platform.normalized_speeds
        part = registry.create("partitioner", self.partitioner, x)
        scaled = part.scaled(N)
        comm = scaled.sum_half_perimeters
        w = platform.cycle_times
        areas = np.empty(platform.size)
        for rect in part:
            areas[rect.owner] = rect.area
        finish = areas * (N * N) * w
        imbalance = (
            0.0
            if np.allclose(finish, finish[0], rtol=1e-9)
            else float((finish.max() - finish.min()) / finish.min())
        )
        return StrategyResult(
            strategy="het",
            N=float(N),
            speeds=platform.speeds,
            comm_volume=float(comm),
            finish_times=finish,
            imbalance=imbalance,
            detail={
                "partition": part,
                "scaled_partition": scaled,
                "partitioner": self.partitioner,
            },
        )
