"""Tests for the TreeAllocation result type and tree-solver edge cases."""

import pytest

from repro.dlt.tree_solver import equivalent_rate, solve_tree
from repro.platform.tree import TreeNode, TreePlatform


class TestTreeAllocation:
    def test_amount_of_by_node(self):
        plat = TreePlatform.star([1.0, 3.0])
        alloc = solve_tree(plat, 40.0)
        child = plat.root.children[1]
        assert alloc.amount_of(child) == alloc.amounts[child.name]
        assert alloc.amount_of(child) > alloc.amount_of(plat.root.children[0])

    def test_covered_fraction_linear_is_one(self):
        plat = TreePlatform.star([1.0, 2.0])
        alloc = solve_tree(plat, 30.0)
        assert alloc.covered_work_fraction(30.0) == pytest.approx(1.0, rel=1e-6)

    def test_single_node_tree(self):
        root = TreeNode(speed=2.0, name="only")
        plat = TreePlatform(root)
        alloc = solve_tree(plat, 10.0)
        # lone computing root: T = N * w = 5
        assert alloc.makespan == pytest.approx(5.0, rel=1e-9)
        assert alloc.amounts["only"] == pytest.approx(10.0)

    def test_equivalent_rate_single_node(self):
        root = TreeNode(speed=3.0)
        assert equivalent_rate(root) == pytest.approx(3.0)

    def test_equivalent_rate_chain(self):
        """Two-node chain: rho = s0 + s1/(1 + c1*s1)."""
        root = TreeNode(speed=1.0, name="r")
        root.add_child(speed=2.0, bandwidth=0.5)  # c = 2
        expected = 1.0 + 2.0 / (1.0 + 2.0 * 2.0)
        assert equivalent_rate(root) == pytest.approx(expected)

    def test_makespan_scales_linearly_in_N(self):
        plat = TreePlatform.balanced(depth=1, fanout=3)
        t1 = solve_tree(plat, 10.0).makespan
        t2 = solve_tree(plat, 20.0).makespan
        assert t2 == pytest.approx(2.0 * t1, rel=1e-6)

    def test_nonlinear_makespan_superlinear_in_N(self):
        plat = TreePlatform.balanced(depth=1, fanout=3, bandwidth=100.0)
        t1 = solve_tree(plat, 10.0, alpha=2.0).makespan
        t2 = solve_tree(plat, 20.0, alpha=2.0).makespan
        assert t2 > 2.0 * t1
