"""repro.registry — the library's plugin registry.

Every comparable component family — **cost models** (§2), **outer
product strategies** (§4), **partitioners** (§4.1.2), **DLT solvers**
(§2–3), **simulations** and **execution backends** — registers here
under a short name, and all dispatch (the
:func:`repro.core.plan_outer_product` façade, planner sessions, the
experiment sweeps, the CLI) goes through these catalogues instead of
hard-coded ``if/elif`` chains.

Usage::

    from repro import registry

    registry.available("strategy")          # ('het', 'hom', 'hom/k')
    registry.create("strategy", "het")      # HeterogeneousBlocksStrategy()
    registry.create("cost_model", "power-law", alpha=3.0)
    registry.get("partitioner", "peri-sum") # the function itself

Registering a new component (anywhere — plugins included)::

    from repro import registry

    @registry.register("strategy", "my-strategy")
    class MyStrategy:
        \"\"\"One-line summary shown by `repro list strategy`.\"\"\"
        def plan(self, platform, N): ...

After that, ``repro plan --strategy my-strategy``, ``repro compare``
and every registry-driven sweep pick it up with no further edits.

Built-ins are loaded lazily: the provider-module table in
:mod:`repro.registry.builtins` is imported on the first query of each
kind, entry-point style.  Genuine ``importlib.metadata`` entry points
are honored too: a third-party distribution declaring
``[project.entry-points."repro.plugins"]`` has its components
discovered on the first query, no import required.
"""

from repro.registry.builtins import PROVIDER_MODULES, install_builtin_providers
from repro.registry.core import (
    ENTRY_POINT_GROUP,
    KINDS,
    Component,
    DuplicateComponentError,
    Registry,
    RegistryError,
    UnknownComponentError,
    UnknownKindError,
)

#: the process-wide default registry holding all built-ins
default_registry = Registry()
install_builtin_providers(default_registry)
# third-party distributions join via the "repro.plugins" entry-point
# group — scanned lazily on the first catalogue query, like built-ins
default_registry.enable_entry_point_discovery(ENTRY_POINT_GROUP)

# module-level façade over the default registry
register = default_registry.register
add = default_registry.add
unregister = default_registry.unregister
get = default_registry.get
create = default_registry.create
component = default_registry.component
available = default_registry.available
describe = default_registry.describe
kinds = default_registry.kinds
add_kind = default_registry.add_kind
register_provider_modules = default_registry.register_provider_modules
ensure_loaded = default_registry.ensure_loaded
enable_entry_point_discovery = default_registry.enable_entry_point_discovery

__all__ = [
    "ENTRY_POINT_GROUP",
    "KINDS",
    "Component",
    "Registry",
    "RegistryError",
    "UnknownKindError",
    "UnknownComponentError",
    "DuplicateComponentError",
    "PROVIDER_MODULES",
    "install_builtin_providers",
    "default_registry",
    "register",
    "add",
    "unregister",
    "get",
    "create",
    "component",
    "available",
    "describe",
    "kinds",
    "add_kind",
    "register_provider_modules",
    "ensure_loaded",
    "enable_entry_point_discovery",
]
