"""Tests for repro.mapreduce.engine."""

from collections import Counter

import pytest

from repro.mapreduce.engine import (
    MapReduceEngine,
    MapReduceJob,
    hash_partitioner,
)


def identity_job(n_reducers=2, combine=None):
    return MapReduceJob(
        map_fn=lambda rec: [(rec, 1)],
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        n_reducers=n_reducers,
        combine_fn=combine,
    )


class TestBasics:
    def test_counts_match_counter(self):
        data = list("abracadabra")
        out = MapReduceEngine().run(identity_job(), data)
        assert out == dict(Counter(data))

    def test_metrics_record_counts(self):
        engine = MapReduceEngine()
        engine.run(identity_job(), list("aabb"))
        m = engine.metrics
        assert m.map_input_records == 4
        assert m.map_output_records == 4
        assert m.shuffle_records == 4
        assert m.reduce_input_groups == 2
        assert m.reduce_output_records == 2

    def test_empty_input(self):
        out, m = MapReduceEngine().run_with_metrics(identity_job(), [])
        assert out == {}
        assert m.shuffle_volume == 0.0

    def test_n_reducers_validated(self):
        with pytest.raises(ValueError):
            identity_job(n_reducers=0)


class TestCombiner:
    def test_combiner_reduces_shuffle(self):
        combine = lambda k, vs: [sum(vs)]  # noqa: E731
        data = ["a"] * 100  # one map task per record → no intra-task dup
        # put all records in one map task to see combining:
        job = MapReduceJob(
            map_fn=lambda rec: [("w", 1) for _ in range(10)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
            n_reducers=1,
            combine_fn=combine,
        )
        out, m = MapReduceEngine().run_with_metrics(job, ["x", "y"])
        assert out == {"w": 20}
        assert m.map_output_records == 20
        assert m.shuffle_records == 2  # one combined record per task
        assert m.combine_savings == 18

    def test_combiner_preserves_result(self):
        data = list("mississippi")
        plain = MapReduceEngine().run(identity_job(), data)
        combined = MapReduceEngine().run(
            identity_job(combine=lambda k, vs: [sum(vs)]), data
        )
        assert plain == combined


class TestShuffleAccounting:
    def test_size_of_prices_values(self):
        job = MapReduceJob(
            map_fn=lambda rec: [("k", rec)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
            n_reducers=1,
            size_of=lambda v: float(v),
        )
        _, m = MapReduceEngine().run_with_metrics(job, [2.0, 3.0])
        assert m.shuffle_volume == 5.0

    def test_reducer_volumes_sum_to_total(self):
        job = identity_job(n_reducers=4)
        _, m = MapReduceEngine().run_with_metrics(job, list("abcdefgh"))
        assert sum(m.reducer_volumes) == pytest.approx(m.shuffle_volume)

    def test_reducer_imbalance_zero_when_single(self):
        _, m = MapReduceEngine().run_with_metrics(identity_job(1), list("ab"))
        assert m.reducer_imbalance == 0.0

    def test_reducer_imbalance_inf_when_starved(self):
        job = MapReduceJob(
            map_fn=lambda rec: [(0, 1)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
            n_reducers=2,
            partition_fn=lambda key, n: 0,
        )
        _, m = MapReduceEngine().run_with_metrics(job, [1, 2])
        assert m.reducer_imbalance == float("inf")


class TestPartitioner:
    def test_hash_partitioner_stable(self):
        assert hash_partitioner(("a", 1), 7) == hash_partitioner(("a", 1), 7)
        assert 0 <= hash_partitioner("anything", 5) < 5

    def test_bad_partitioner_caught(self):
        job = MapReduceJob(
            map_fn=lambda rec: [(rec, 1)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
            n_reducers=2,
            partition_fn=lambda key, n: 99,
        )
        with pytest.raises(ValueError, match="reducer 99"):
            MapReduceEngine().run(job, ["a"])

    def test_duplicate_output_key_rejected(self):
        job = MapReduceJob(
            map_fn=lambda rec: [(rec, 1)],
            reduce_fn=lambda k, vs: [("same", 1)],
            n_reducers=1,
        )
        with pytest.raises(ValueError, match="duplicate output key"):
            MapReduceEngine().run(job, ["a", "b"])
