"""Deterministic, seeded request streams for the load-test driver.

A load test is only a regression instrument if two runs disagree about
nothing but the machine they ran on: the same seed must produce the
identical sequence of operations — same kinds, same platforms, same
problem sizes, same batch shapes — regardless of RPS, thread count, or
how far the previous run got.  :func:`request_stream` therefore builds
the whole operation list up front from one
:class:`numpy.random.Generator` (the repo-wide seeding idiom of
:mod:`repro.util.rng`), and the driver merely replays it on a clock.

The mix is a weighted choice over the three hot endpoints:

* ``plan`` — one scalar :class:`~repro.core.pipeline.PlanRequest` to
  ``POST /plan``;
* ``plan_batch`` — a list of ``batch_size`` requests to
  ``POST /plan_batch``;
* ``cache_get`` — a content key (the exact
  :func:`~repro.core.cache.plan_cache_key` a session would compute) to
  ``POST /cache/get``.  Keys are derived from the stream's own plan
  requests, so a warm server answers a growing share of them with hits
  — the realistic read-mostly traffic a shared cache exists for.

Platforms are drawn from a small pool of ``platforms`` distinct
heterogeneous stars (distinct fingerprints exercise dispatch and cache
keying; a small pool keeps generation fast), and ``N`` is sampled
per-request so plans are not trivially identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from repro.core.cache import plan_cache_key
from repro.core.pipeline import PlanRequest
from repro.platform.star import StarPlatform
from repro.util.rng import make_rng

#: operation kinds and the endpoint each one drives
OP_KINDS: Tuple[str, ...] = ("plan", "plan_batch", "cache_get")

ENDPOINT_BY_KIND: Dict[str, str] = {
    "plan": "/plan",
    "plan_batch": "/plan_batch",
    "cache_get": "/cache/get",
}

#: default traffic mix: plan-heavy with a read-mostly cache component
DEFAULT_MIX: Dict[str, float] = {
    "plan": 0.6,
    "plan_batch": 0.2,
    "cache_get": 0.2,
}


@dataclass(frozen=True)
class Op:
    """One scheduled operation of a load-test run."""

    #: position in the stream (also fixes its open-loop send slot)
    index: int
    #: one of :data:`OP_KINDS`
    kind: str
    #: PlanRequest | list[PlanRequest] | cache key, by kind
    payload: Any
    #: flat request count this op carries (1, or the batch size)
    weight: int

    @property
    def endpoint(self) -> str:
        return ENDPOINT_BY_KIND[self.kind]


def parse_mix(text: str) -> Dict[str, float]:
    """Parse a CLI mix spec like ``plan=6,plan_batch=2,cache_get=2``.

    Weights are relative (normalised later); kinds may be omitted
    (weight 0) but unknown kinds are a loud error.
    """
    mix: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        name = name.strip()
        if not sep or name not in OP_KINDS:
            raise ValueError(
                f"bad mix component {part!r}; expected KIND=WEIGHT with "
                f"KIND one of {', '.join(OP_KINDS)}"
            )
        try:
            weight = float(value)
        except ValueError:
            raise ValueError(f"bad mix weight in {part!r}") from None
        if weight < 0:
            raise ValueError(f"mix weight must be >= 0 in {part!r}")
        mix[name] = weight
    if not mix or not any(mix.values()):
        raise ValueError(f"mix {text!r} selects no operations")
    return mix


def _normalised_mix(mix: Mapping[str, float]) -> List[Tuple[str, float]]:
    unknown = sorted(set(mix) - set(OP_KINDS))
    if unknown:
        raise ValueError(
            f"unknown mix kind(s) {unknown}; expected {', '.join(OP_KINDS)}"
        )
    total = float(sum(mix.values()))
    if total <= 0:
        raise ValueError("mix weights sum to zero")
    return [(kind, mix.get(kind, 0.0) / total) for kind in OP_KINDS]


def request_stream(
    count: int,
    *,
    seed: int = 2013,
    mix: Mapping[str, float] | None = None,
    platforms: int = 4,
    p: int = 8,
    batch_size: int = 8,
    strategy: str = "het",
    n_lo: float = 1_000.0,
    n_hi: float = 20_000.0,
    distinct_n: int = 64,
) -> List[Op]:
    """The full, deterministic operation list one load test replays.

    ``distinct_n`` bounds how many different ``N`` values appear: a
    finite working set is what gives ``cache_get`` (and a caching
    server re-planning) realistic hit rates; raise it to make traffic
    colder, or to 1 to hammer one entry.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if platforms < 1 or p < 1 or batch_size < 1 or distinct_n < 1:
        raise ValueError("platforms, p, batch_size, distinct_n must be >= 1")
    if not (0 < n_lo <= n_hi):
        raise ValueError(f"need 0 < n_lo <= n_hi, got {n_lo}..{n_hi}")
    weights = _normalised_mix(DEFAULT_MIX if mix is None else mix)
    rng = make_rng(seed)
    pool = [
        StarPlatform.from_speeds(rng.uniform(1.0, 8.0, size=p))
        for _ in range(platforms)
    ]
    n_values = np.round(rng.uniform(n_lo, n_hi, size=distinct_n), 3)

    def draw_request() -> PlanRequest:
        platform = pool[int(rng.integers(len(pool)))]
        return PlanRequest(
            platform=platform,
            N=float(n_values[int(rng.integers(len(n_values)))]),
            strategy=strategy,
        )

    # the strategy factory joins the cache key; resolve it once so
    # cache_get ops probe exactly the keys the server's session writes
    from repro import registry

    factory = registry.get("strategy", strategy)

    kinds = [kind for kind, _ in weights]
    probabilities = np.array([w for _, w in weights])
    ops: List[Op] = []
    for index in range(count):
        # one draw per op (not one vectorised block up front) so a
        # longer stream is an exact extension of a shorter one with the
        # same seed — raising --duration never reshuffles early traffic
        kind = kinds[int(rng.choice(len(kinds), p=probabilities))]
        if kind == "plan":
            ops.append(Op(index, kind, draw_request(), 1))
        elif kind == "plan_batch":
            batch = [draw_request() for _ in range(batch_size)]
            ops.append(Op(index, kind, batch, len(batch)))
        else:
            key = plan_cache_key(draw_request(), factory)
            ops.append(Op(index, kind, key, 1))
    return ops


def stream_fingerprint(ops: List[Op]) -> str:
    """A stable digest of a stream, for replay/identity assertions."""
    import hashlib

    from repro.core.cache import encode_key, plan_cache_key  # noqa: F401

    digest = hashlib.sha256()
    for op in ops:
        digest.update(op.kind.encode())
        if op.kind == "plan":
            digest.update(repr(_request_identity(op.payload)).encode())
        elif op.kind == "plan_batch":
            for request in op.payload:
                digest.update(repr(_request_identity(request)).encode())
        else:
            digest.update(repr(op.payload).encode())
    return digest.hexdigest()


def _request_identity(request: PlanRequest) -> tuple:
    return (
        request.platform.fingerprint(),
        float(request.N),
        request.strategy,
        tuple(sorted(request.params.items())),
    )
