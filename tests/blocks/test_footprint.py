"""Tests for repro.blocks.footprint — Figure 2's accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.footprint import (
    assignment_footprints,
    block_footprint_volume,
    demand_driven_grid_assignment,
    naive_block_volume,
)

cells_strategy = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
    min_size=1,
    max_size=30,
    unique=True,
)


class TestVolumes:
    def test_naive(self):
        assert naive_block_volume(5, 2.0) == 20.0

    def test_footprint_counts_distinct_rows_cols(self):
        cells = [(0, 0), (0, 1), (1, 0)]
        # rows {0,1}, cols {0,1} → (2+2)*d
        assert block_footprint_volume(cells, 3.0) == pytest.approx(12.0)

    def test_duplicate_cells_counted_once(self):
        assert block_footprint_volume([(0, 0), (0, 0)], 1.0) == 2.0

    @given(cells=cells_strategy)
    @settings(max_examples=60, deadline=None)
    def test_footprint_never_exceeds_naive(self, cells):
        """Each block adds at most one row and one column — invariant."""
        d = 1.5
        naive = naive_block_volume(len(cells), d)
        fp = block_footprint_volume(cells, d)
        assert fp <= naive + 1e-12

    def test_single_row_reuse_maximal(self):
        """k blocks in one row: footprint (1+k)d vs naive 2kd."""
        k, d = 8, 1.0
        cells = [(0, c) for c in range(k)]
        assert block_footprint_volume(cells, d) == pytest.approx((1 + k) * d)


class TestAssignmentFootprints:
    def test_structure_and_savings(self):
        out = assignment_footprints({0: [(0, 0), (0, 1)], 1: [(1, 1)]}, 2.0)
        assert out[0]["naive"] == 8.0
        assert out[0]["footprint"] == 6.0
        assert out[0]["savings"] == 2.0
        assert out[1]["savings"] == 0.0


class TestGridAssignment:
    def test_counts_respected(self):
        asg = demand_driven_grid_assignment([2, 1], grid=2)
        assert len(asg[0]) == 2 and len(asg[1]) == 1

    def test_round_robin_interleaves(self):
        asg = demand_driven_grid_assignment([2, 2], grid=2)
        # deal order: w0, w1, w0, w1 over row-major cells
        assert asg[0] == [(0, 0), (1, 0)]
        assert asg[1] == [(0, 1), (1, 1)]

    def test_cells_unique_across_workers(self):
        asg = demand_driven_grid_assignment([3, 3, 3], grid=3)
        all_cells = [c for cells in asg.values() for c in cells]
        assert len(set(all_cells)) == 9

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            demand_driven_grid_assignment([5], grid=2)

    def test_unsupported_order_rejected(self):
        with pytest.raises(ValueError):
            demand_driven_grid_assignment([1], grid=2, order="shuffled")
