"""Equivalence suite for the batched §2 nonlinear solvers.

The batch kernels run the same nested bisections as the scalar solvers
but stacked over every same-size instance at once; both paths converge
within the bisection tolerance of the same root, so results must agree
within the vectorisation contract's ``rtol = 1e-12`` (a small absolute
floor covers chunks that are themselves ~1e-13).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vectorize import batch_capable, solve_dlt_batch
from repro.dlt.nonlinear_solver import (
    solve_nonlinear_one_port,
    solve_nonlinear_one_port_batch,
    solve_nonlinear_parallel,
    solve_nonlinear_parallel_batch,
)
from repro.platform.generators import make_speeds
from repro.platform.star import StarPlatform

RTOL = 1e-12
ATOL = 1e-12


def random_instances(seed=21, sizes=(2, 4, 9, 16), per_size=3):
    rng = np.random.default_rng(seed)
    platforms, Ns = [], []
    for p in sizes:
        for model in ("uniform", "lognormal"):
            for _ in range(per_size):
                platforms.append(
                    StarPlatform.from_speeds(make_speeds(model, p, rng))
                )
                Ns.append(float(rng.uniform(50.0, 5000.0)))
    return platforms, Ns


def assert_allocations_match(scalar, batched):
    assert batched.model == scalar.model
    assert batched.alpha == scalar.alpha
    assert batched.total_work == scalar.total_work
    np.testing.assert_allclose(
        batched.amounts, scalar.amounts, rtol=RTOL, atol=ATOL
    )
    np.testing.assert_allclose(
        batched.finish, scalar.finish, rtol=RTOL, atol=ATOL
    )
    assert scalar.makespan == pytest.approx(batched.makespan, rel=RTOL)
    assert scalar.partial_work == pytest.approx(batched.partial_work, rel=RTOL)


SOLVER_PAIRS = [
    pytest.param(
        solve_nonlinear_parallel, solve_nonlinear_parallel_batch, id="parallel"
    ),
    pytest.param(
        solve_nonlinear_one_port, solve_nonlinear_one_port_batch, id="one-port"
    ),
]


@pytest.mark.parametrize("scalar, batch", SOLVER_PAIRS)
class TestBatchEquivalence:
    @pytest.mark.parametrize("alpha", [1.2, 1.5, 2.0, 3.0])
    def test_mixed_sizes_match_scalar(self, scalar, batch, alpha):
        platforms, Ns = random_instances()
        allocs = batch(platforms, Ns, alpha=alpha)
        assert len(allocs) == len(platforms)
        for platform, N, batched in zip(platforms, Ns, allocs):
            assert_allocations_match(scalar(platform, N, alpha=alpha), batched)

    def test_conservation(self, scalar, batch):
        platforms, Ns = random_instances(seed=5, sizes=(3, 8), per_size=2)
        for N, alloc in zip(Ns, batch(platforms, Ns)):
            assert alloc.total == pytest.approx(N, rel=1e-9)

    def test_homogeneous_platforms(self, scalar, batch):
        platforms = [StarPlatform.homogeneous(p) for p in (2, 4, 4, 16)]
        Ns = [100.0, 200.0, 200.0, 400.0]
        for platform, N, batched in zip(
            platforms, Ns, batch(platforms, Ns, alpha=2.0)
        ):
            assert_allocations_match(scalar(platform, N, alpha=2.0), batched)

    def test_length_mismatch_raises(self, scalar, batch):
        with pytest.raises(ValueError, match="platforms but"):
            batch([StarPlatform.homogeneous(2)], [10.0, 20.0])

    def test_invalid_N_raises(self, scalar, batch):
        with pytest.raises(ValueError, match="N must be"):
            batch([StarPlatform.homogeneous(2)] * 2, [10.0, -1.0])

    def test_plan_batch_seam_attached(self, scalar, batch):
        assert scalar.plan_batch is batch
        assert batch_capable(scalar)


class TestOnePortOrder:
    def test_explicit_order_matches_scalar(self):
        rng = np.random.default_rng(9)
        platforms = [
            StarPlatform.from_speeds(make_speeds("uniform", 6, rng))
            for _ in range(4)
        ]
        Ns = [100.0, 500.0, 900.0, 1300.0]
        order = [5, 3, 1, 0, 2, 4]
        allocs = solve_nonlinear_one_port_batch(
            platforms, Ns, alpha=2.0, order=order
        )
        for platform, N, batched in zip(platforms, Ns, allocs):
            assert_allocations_match(
                solve_nonlinear_one_port(platform, N, alpha=2.0, order=order),
                batched,
            )

    def test_explicit_order_needs_equal_sizes(self):
        platforms = [StarPlatform.homogeneous(2), StarPlatform.homogeneous(3)]
        with pytest.raises(ValueError, match="equal size"):
            solve_nonlinear_one_port_batch(
                platforms, [10.0, 10.0], order=[0, 1]
            )

    def test_invalid_order_raises(self):
        platforms = [StarPlatform.homogeneous(3)] * 2
        with pytest.raises(ValueError, match="permutation"):
            solve_nonlinear_one_port_batch(
                platforms, [10.0, 10.0], order=[0, 0, 2]
            )


class TestSolveDltBatchSeam:
    def test_routes_through_kernel(self):
        platforms, Ns = random_instances(seed=13, sizes=(4, 7), per_size=2)
        via_seam = solve_dlt_batch("nonlinear-parallel", platforms, Ns)
        direct = solve_nonlinear_parallel_batch(platforms, Ns)
        for a, b in zip(via_seam, direct):
            np.testing.assert_array_equal(a.amounts, b.amounts)

    def test_singleton_takes_scalar_path(self):
        platform = StarPlatform.homogeneous(4)
        (via_seam,) = solve_dlt_batch("nonlinear-parallel", [platform], [64.0])
        scalar = solve_nonlinear_parallel(platform, 64.0)
        np.testing.assert_array_equal(via_seam.amounts, scalar.amounts)

    def test_params_forwarded(self):
        platforms = [StarPlatform.homogeneous(4)] * 2
        for alloc in solve_dlt_batch(
            "nonlinear-one-port", platforms, [64.0, 81.0], alpha=1.5
        ):
            assert alloc.alpha == 1.5
            assert alloc.model == "nonlinear/one-port"

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="platforms but"):
            solve_dlt_batch(
                "nonlinear-parallel", [StarPlatform.homogeneous(2)], []
            )
