"""Smoke test for the heavyweight `all` CLI command (reduced protocol)."""

from repro.cli import main


def test_all_command_runs_every_experiment(capsys):
    rc = main(["all", "--trials", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    for marker in (
        "Figure 4 (homogeneous",
        "Figure 4 (uniform",
        "Figure 4 (lognormal",
        "Section 2",
        "Section 3",
        "rho",
    ):
        assert marker in out, marker
