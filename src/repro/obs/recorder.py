"""Span recording: named timed sections, flushed as JSONL.

A :class:`Span` is one named, timed section of one process's work on a
trace — ``server /plan_batch``, ``cache_lookup``, ``dispatch`` — with
a wall-clock start (so spans from different processes on one host line
up on a shared timeline) and a monotonic-derived duration (so an NTP
step mid-span cannot produce negative time).

:class:`SpanRecorder` collects them behind one lock, the same
discipline as :class:`~repro.service.metrics.ServerMetrics`.  With a
stream it flushes each span as one JSON line the moment it closes
(``repro serve --trace [PATH]``, mirroring ``--log``); without one it
buffers in memory for in-process consumers (tests, the loadtest
driver).  :func:`parse_span_line` is the exact inverse of
:meth:`Span.to_json_line`, and ``repro trace`` reassembles whole
multi-process traces from any pile of such files.

Two recording styles coexist:

* **explicit** — :meth:`SpanRecorder.span` with a trace id and parent
  id in hand.  The cluster coordinator uses this from its dispatch
  threads, where no ambient state can help.
* **ambient** — :func:`activate` installs a (recorder, trace) pair in
  a ``contextvars`` context local, and :func:`span` opens a child of
  whatever span is innermost — or does *nothing at all* when no trace
  is active, which is what lets deep layers like
  :meth:`~repro.core.session.PlannerSession.plan_batch` carry
  permanent instrumentation at zero cost on the untraced hot path
  (one context-var read deciding "no").
"""

from __future__ import annotations

import contextvars
import json
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterator, List, Optional

from repro.obs.context import TraceContext, new_span_id


@dataclass
class Span:
    """One named, timed section of one process's work on a trace."""

    trace_id: str
    span_id: str
    #: the enclosing span (possibly in another process); None for roots
    parent_id: Optional[str]
    #: stage name — the unit ``repro trace`` aggregates p50/p99 over
    name: str
    #: which process kind recorded it: client / server / coordinator...
    service: str
    #: wall-clock start, seconds since the epoch (cross-process timeline)
    start_s: float
    duration_s: float
    #: free-form labels: worker url, item counts, reroute round, status
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "service": self.service,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
        }
        if self.meta:
            payload["meta"] = self.meta
        return payload

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


def parse_span_line(line: str) -> Span:
    """Parse one :meth:`Span.to_json_line` line back into a :class:`Span`.

    Raises ``ValueError`` on anything that is not a complete span line,
    so trace-assembly tools fail loudly on truncated or interleaved
    output instead of silently dropping stages.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not a span line ({exc}): {line!r}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"not a span object: {line!r}")
    missing = [
        key
        for key in ("trace_id", "span_id", "name", "service", "start_s",
                    "duration_s")
        if key not in payload
    ]
    if missing:
        raise ValueError(f"span line missing field(s) {missing}: {line!r}")
    return Span(
        trace_id=str(payload["trace_id"]),
        span_id=str(payload["span_id"]),
        parent_id=(
            None if payload.get("parent_id") is None
            else str(payload["parent_id"])
        ),
        name=str(payload["name"]),
        service=str(payload["service"]),
        start_s=float(payload["start_s"]),
        duration_s=float(payload["duration_s"]),
        meta=dict(payload.get("meta") or {}),
    )


class SpanRecorder:
    """Thread-safe span sink: JSONL to a stream, or an in-memory buffer.

    ``SpanRecorder()`` buffers (drain with :meth:`drain`, inspect with
    :meth:`snapshot`); ``SpanRecorder(stream)`` writes each span as one
    JSON line the moment it closes (``SpanRecorder.stderr()`` for the
    bare ``--trace`` flag, :meth:`open` for ``--trace PATH``).  Like
    :class:`~repro.service.metrics.AccessLog`, a stream closed under us
    mid-shutdown loses the line, never fails the request it traces.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        *,
        service: str = "repro",
        _owns_stream: bool = False,
    ) -> None:
        self._stream = stream
        self._owns_stream = _owns_stream
        self._lock = threading.Lock()
        self._buffer: List[Span] = []
        #: default ``service`` label for spans recorded through this sink
        self.service = service
        #: spans ever recorded (tests and status displays)
        self.spans_recorded = 0

    @classmethod
    def open(cls, path: str, *, service: str = "repro") -> "SpanRecorder":
        """A recorder appending JSONL to ``path`` (created if missing)."""
        return cls(
            open(path, "a", encoding="utf-8"),
            service=service,
            _owns_stream=True,
        )

    @classmethod
    def stderr(cls, *, service: str = "repro") -> "SpanRecorder":
        """A recorder streaming to stderr (the bare ``--trace`` flag)."""
        return cls(sys.stderr, service=service)

    # -- recording --------------------------------------------------------

    def record(self, span: Span) -> None:
        with self._lock:
            if self._stream is None:
                self._buffer.append(span)
            else:
                try:
                    self._stream.write(span.to_json_line() + "\n")
                    self._stream.flush()
                except ValueError:
                    # closed under us (shutdown race): a lost span must
                    # never fail the request it traces
                    return
            self.spans_recorded += 1

    @contextmanager
    def span(
        self,
        trace_id: str,
        name: str,
        *,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        service: Optional[str] = None,
        **meta: Any,
    ) -> Iterator[Span]:
        """Record one explicitly-parented span around a ``with`` body.

        Yields the in-flight :class:`Span` so the body can read its
        ``span_id`` (to forward in a child :class:`TraceContext`) and
        add ``meta`` labels; duration and recording happen on exit —
        exceptions included, so a failed hop still leaves its span.
        """
        span = Span(
            trace_id=trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            parent_id=parent_id,
            name=name,
            service=service if service is not None else self.service,
            start_s=time.time(),
            duration_s=0.0,
            meta=dict(meta),
        )
        began = time.perf_counter()
        try:
            yield span
        finally:
            span.duration_s = time.perf_counter() - began
            self.record(span)

    # -- buffered-mode access --------------------------------------------

    def snapshot(self) -> List[Span]:
        """The buffered spans so far (buffer mode; copies, keeps them)."""
        with self._lock:
            return list(self._buffer)

    def drain(self) -> List[Span]:
        """Remove and return the buffered spans (buffer mode)."""
        with self._lock:
            spans, self._buffer = self._buffer, []
            return spans

    def close(self) -> None:
        """Close an owned file stream (stderr/borrowed streams survive)."""
        if self._owns_stream and self._stream is not None:
            with self._lock:
                self._stream.close()


# ---------------------------------------------------------------------------
# ambient tracing: the context-local (recorder, trace, span stack) triple


class ActiveTrace:
    """The ambient tracing state one request handler installs.

    ``stack`` holds open span ids innermost-last; its base is the
    *incoming* context's span id, so the first ambient :func:`span`
    becomes the process's root span, parented across the process
    boundary.  The stack is only mutated by the thread that owns the
    context — dispatch threads use the explicit
    :meth:`SpanRecorder.span` API instead.
    """

    __slots__ = ("recorder", "context", "stack")

    def __init__(self, recorder: SpanRecorder, context: TraceContext) -> None:
        self.recorder = recorder
        self.context = context
        self.stack: List[str] = [context.span_id]

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def current_span_id(self) -> str:
        return self.stack[-1]


_ACTIVE: contextvars.ContextVar[Optional[ActiveTrace]] = (
    contextvars.ContextVar("repro-obs-active", default=None)
)


def current() -> Optional[ActiveTrace]:
    """The thread's active trace, or ``None`` (the untraced fast path)."""
    return _ACTIVE.get()


@contextmanager
def activate(
    recorder: SpanRecorder, context: TraceContext
) -> Iterator[ActiveTrace]:
    """Install ambient tracing for the ``with`` body (this thread only).

    Unsampled contexts install nothing — :func:`span` stays a no-op —
    but the body runs identically, so sampling decisions never change
    behaviour.
    """
    if not context.sampled:
        yield None  # type: ignore[misc]
        return
    active = ActiveTrace(recorder, context)
    token = _ACTIVE.set(active)
    try:
        yield active
    finally:
        _ACTIVE.reset(token)


@contextmanager
def serving(
    recorder: Optional[SpanRecorder],
    context: Optional[TraceContext],
    name: str,
    **meta: Any,
) -> Iterator[Optional[Span]]:
    """The receiving side of a hop: root span + ambient tracing.

    Records ``name`` as this process's root span — parented to the
    *incoming* context's span id, which is how the tree chains across
    the process boundary — and activates ambient tracing under it so
    :func:`span` seams inside the handler attach as children.  With no
    recorder, no context, or an unsampled context this is a no-op and
    the body runs bare.
    """
    if recorder is None or context is None or not context.sampled:
        yield None
        return
    with recorder.span(
        context.trace_id, name, parent_id=context.span_id, **meta
    ) as root:
        inner = TraceContext(
            trace_id=context.trace_id, span_id=root.span_id, sampled=True
        )
        with activate(recorder, inner):
            yield root


@contextmanager
def span(name: str, **meta: Any) -> Iterator[Optional[Span]]:
    """Open a child of the innermost ambient span; no-op when untraced.

    This is the form permanent instrumentation uses at the seams (wire
    decode, cache lookup, kernel time, wire encode): when no trace is
    active the cost is one context-var read and the body runs bare.
    """
    active = _ACTIVE.get()
    if active is None:
        yield None
        return
    open_span = Span(
        trace_id=active.trace_id,
        span_id=new_span_id(),
        parent_id=active.current_span_id,
        name=name,
        service=active.recorder.service,
        start_s=time.time(),
        duration_s=0.0,
        meta=dict(meta),
    )
    active.stack.append(open_span.span_id)
    began = time.perf_counter()
    try:
        yield open_span
    finally:
        active.stack.pop()
        open_span.duration_s = time.perf_counter() - began
        active.recorder.record(open_span)
