"""Shared mutable state for the lazy provider-loading test.

``_lazy_provider`` registers into whatever registry the test parked in
``TARGET`` — mimicking how real provider modules register into the
default registry at import time.
"""

TARGET = None
IMPORT_COUNT = 0
