"""Tests for repro.platform.graph — arbitrary networks via networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.dlt.tree_solver import solve_tree
from repro.platform.graph import (
    best_spanning_tree,
    make_cluster_graph,
    random_cluster,
    schedule_on_graph,
    to_tree_platform,
    widest_paths_tree,
)


def diamond_graph():
    """master - {a, b} - leaf, with a fat and a thin route."""
    return make_cluster_graph(
        speeds={"m": 1.0, "a": 2.0, "b": 2.0, "leaf": 4.0},
        links=[
            ("m", "a", 10.0),
            ("m", "b", 1.0),
            ("a", "leaf", 10.0),
            ("b", "leaf", 1.0),
        ],
    )


class TestGraphConstruction:
    def test_make_cluster_graph(self):
        g = diamond_graph()
        assert g.number_of_nodes() == 4
        assert g["m"]["a"]["bandwidth"] == 10.0

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            make_cluster_graph({"a": 1.0}, [("a", "b", 1.0)])

    def test_bad_speed_rejected(self):
        with pytest.raises(ValueError):
            make_cluster_graph({"a": 0.0}, [])

    def test_random_cluster_connected(self):
        g = random_cluster(20, rng=0)
        assert nx.is_connected(g)
        assert all("speed" in d for _, d in g.nodes(data=True))
        assert all("bandwidth" in d for _, _, d in g.edges(data=True))

    def test_random_cluster_reproducible(self):
        a = random_cluster(10, rng=5)
        b = random_cluster(10, rng=5)
        assert sorted(a.edges) == sorted(b.edges)


class TestTreeExtraction:
    def test_max_spanning_picks_fat_route(self):
        tree = best_spanning_tree(diamond_graph(), "m")
        assert tree.has_edge("m", "a")
        assert tree.has_edge("a", "leaf")
        assert nx.is_tree(tree)

    def test_widest_paths_agrees_on_bottleneck(self):
        g = diamond_graph()
        wp = widest_paths_tree(g, "m")
        assert wp.has_edge("a", "leaf")  # the 10-bandwidth route
        assert nx.is_tree(wp)

    def test_disconnected_rejected(self):
        g = make_cluster_graph({"a": 1.0, "b": 1.0}, [])
        with pytest.raises(ValueError, match="connected"):
            best_spanning_tree(g, "a")

    def test_unknown_root_rejected(self):
        with pytest.raises(ValueError, match="root"):
            best_spanning_tree(diamond_graph(), "zzz")


class TestToTreePlatform:
    def test_structure_preserved(self):
        tree = best_spanning_tree(diamond_graph(), "m")
        plat = to_tree_platform(tree, "m")
        assert plat.size == 4
        names = {n.name for n in plat.nodes()}
        assert names == {"m", "a", "b", "leaf"}

    def test_non_tree_rejected(self):
        with pytest.raises(ValueError, match="tree"):
            to_tree_platform(diamond_graph(), "m")

    def test_master_computes_flag(self):
        tree = best_spanning_tree(diamond_graph(), "m")
        lazy = to_tree_platform(tree, "m", master_computes=False)
        assert lazy.root.speed == pytest.approx(1e-12)


class TestEndToEnd:
    def test_schedule_on_graph_linear(self):
        plat, alloc = schedule_on_graph(diamond_graph(), "m", N=100.0)
        assert alloc.total == pytest.approx(100.0)
        assert alloc.makespan > 0

    def test_fat_tree_beats_thin_tree(self):
        """Scheduling over the max-bandwidth tree beats a thin tree."""
        g = diamond_graph()
        fat = best_spanning_tree(g, "m")
        # adversarial thin tree: force the 1-bandwidth route
        thin = nx.Graph()
        for node, data in g.nodes(data=True):
            thin.add_node(node, **data)
        thin.add_edge("m", "b", bandwidth=1.0)
        thin.add_edge("b", "leaf", bandwidth=1.0)
        thin.add_edge("m", "a", bandwidth=10.0)
        t_fat = solve_tree(to_tree_platform(fat, "m"), 100.0).makespan
        t_thin = solve_tree(to_tree_platform(thin, "m"), 100.0).makespan
        assert t_fat < t_thin

    def test_nonlinear_on_graph_still_no_free_lunch(self):
        g = random_cluster(30, rng=1, edge_prob=0.2,
                           bandwidth_range=(50.0, 100.0))
        plat, alloc = schedule_on_graph(g, 0, N=100.0, alpha=2.0)
        assert alloc.total == pytest.approx(100.0)
        # 30 workers, fast links: coverage ~ O(1/30)
        assert alloc.covered_work_fraction(100.0) < 0.15

    def test_unknown_extraction_rejected(self):
        with pytest.raises(ValueError, match="extraction"):
            schedule_on_graph(diamond_graph(), "m", 10.0, extraction="mst?")

    def test_extractions_equal_bottlenecks(self):
        """Both trees are bottleneck-optimal: same min bandwidth on the
        path to the root for every node, on random graphs."""
        g = random_cluster(15, rng=3)
        a = best_spanning_tree(g, 0)
        b = widest_paths_tree(g, 0)

        def bottleneck(tree, node):
            path = nx.shortest_path(tree, 0, node)
            return min(
                tree[u][v]["bandwidth"] for u, v in zip(path, path[1:])
            )

        for node in g.nodes:
            if node == 0:
                continue
            assert bottleneck(a, node) == pytest.approx(bottleneck(b, node))
