#!/usr/bin/env python3
"""Diff a benchmark run against a committed BENCH_*.json trendline.

The benchmarks print machine-readable ``BENCH {...}`` JSON lines; the
repo commits their history in ``BENCH_service.json`` /
``BENCH_figure4.json``.  This script reads a fresh run's output (a log
file or stdin), extracts the BENCH lines, and compares each named
benchmark's key metric against the newest committed history entry:

* ``higher_is_better`` metrics regress when
  ``fresh < committed * tolerance``;
* lower-is-better metrics regress when
  ``fresh > committed / tolerance``.

``tolerance`` defaults to the baseline file's own value (0.5 committed
— generous, because CI machines vary) and ``--tolerance`` overrides
it.  ``--update`` appends the fresh numbers to the trendline instead
of judging them, for the commit that intentionally moves the baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -s \\
        | tee /tmp/bench.log
    python scripts/check_bench.py BENCH_service.json /tmp/bench.log
    python scripts/check_bench.py BENCH_service.json /tmp/bench.log \\
        --update --run "2026-08-08 wire v2"

Exits 1 on any regression, 2 on a run that produced no BENCH lines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def parse_bench_lines(text: str) -> dict[str, dict]:
    """Extract ``BENCH {...}`` JSON payloads, last line per name wins."""
    fresh: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("BENCH "):
            continue
        try:
            payload = json.loads(line[len("BENCH "):])
        except json.JSONDecodeError:
            continue
        name = payload.pop("name", None)
        if name:
            fresh[name] = payload
    return fresh


def check(
    baseline: dict, fresh: dict[str, dict], tolerance: float | None
) -> int:
    """Print a comparison table; return the number of regressions."""
    tol = tolerance if tolerance is not None else baseline.get("tolerance", 0.5)
    regressions = 0
    for name, spec in baseline["benchmarks"].items():
        metric = spec["metric"]
        higher = spec.get("higher_is_better", True)
        history = spec["history"]
        if name not in fresh:
            print(f"  {name}: NOT RUN (no BENCH line)")
            continue
        if not history:
            print(f"  {name}: no committed history — {metric}="
                  f"{fresh[name].get(metric)} (informational)")
            continue
        committed = float(history[-1][metric])
        value = float(fresh[name][metric])
        if higher:
            floor = committed * tol
            bad = value < floor
            bound = f">= {floor:.4g}"
        else:
            ceiling = committed / tol
            bad = value > ceiling
            bound = f"<= {ceiling:.4g}"
        verdict = "REGRESSION" if bad else "ok"
        regressions += bad
        print(
            f"  {name}: {metric} committed={committed:.4g} "
            f"fresh={value:.4g} (allowed {bound}) {verdict}"
        )
    for name in sorted(set(fresh) - set(baseline["benchmarks"])):
        print(f"  {name}: new benchmark, not in baseline (add with --update)")
    return regressions


def update(baseline: dict, fresh: dict[str, dict], run_label: str) -> None:
    """Append the fresh numbers as a new history entry per benchmark."""
    for name, payload in fresh.items():
        spec = baseline["benchmarks"].setdefault(
            name,
            {"metric": "speedup", "higher_is_better": True, "history": []},
        )
        spec["history"].append({"run": run_label, **payload})
        print(f"  {name}: appended entry {run_label!r}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="compare BENCH output lines against a committed baseline"
    )
    parser.add_argument("baseline", help="BENCH_*.json trendline file")
    parser.add_argument(
        "log",
        nargs="?",
        help="file holding the run's output (default: read stdin)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed regression ratio (default: the baseline file's value)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="append the fresh numbers to the trendline instead of judging",
    )
    parser.add_argument(
        "--run",
        default="unlabelled run",
        help="history label used with --update",
    )
    args = parser.parse_args()

    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
    elif args.update:
        # --update against a missing file seeds a fresh trendline, so a
        # new benchmark suite's first run can commit its own baseline
        baseline = {
            "description": (
                "Committed trendline seeded by check_bench.py --update; "
                "'metric' names the field compared and 'tolerance' the "
                "allowed regression ratio."
            ),
            "tolerance": 0.5,
            "benchmarks": {},
        }
        print(f"seeding new baseline {baseline_path}")
    else:
        print(
            f"baseline {baseline_path} does not exist "
            "(seed it with --update)",
            file=sys.stderr,
        )
        return 2
    text = (
        Path(args.log).read_text() if args.log else sys.stdin.read()
    )
    fresh = parse_bench_lines(text)
    if not fresh:
        print("no BENCH lines found in the run output", file=sys.stderr)
        return 2

    if args.update:
        print(f"updating {baseline_path}:")
        update(baseline, fresh, args.run)
        baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
        return 0

    print(f"checking against {baseline_path}:")
    regressions = check(baseline, fresh, args.tolerance)
    if regressions:
        print(f"{regressions} benchmark regression(s)", file=sys.stderr)
        return 1
    print("benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
