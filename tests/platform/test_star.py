"""Tests for repro.platform.star."""

import numpy as np
import pytest

from repro.platform.comm_models import OnePort
from repro.platform.processor import Processor
from repro.platform.star import StarPlatform


class TestConstruction:
    def test_from_speeds_scalar_bandwidth(self):
        plat = StarPlatform.from_speeds([1, 2, 3], bandwidths=2.0)
        assert np.array_equal(plat.bandwidths, [2, 2, 2])

    def test_from_speeds_vector_bandwidth(self):
        plat = StarPlatform.from_speeds([1, 2], bandwidths=[3, 4])
        assert np.array_equal(plat.bandwidths, [3, 4])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="bandwidths"):
            StarPlatform.from_speeds([1, 2], bandwidths=[1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StarPlatform(())

    def test_homogeneous_factory(self):
        plat = StarPlatform.homogeneous(5, speed=3.0)
        assert plat.size == 5
        assert plat.is_homogeneous
        assert np.all(plat.speeds == 3.0)

    def test_homogeneous_bad_p(self):
        with pytest.raises(ValueError):
            StarPlatform.homogeneous(0)

    def test_auto_naming(self):
        plat = StarPlatform.from_speeds([1, 2])
        assert [p.name for p in plat] == ["P1", "P2"]

    def test_explicit_names_preserved(self):
        plat = StarPlatform((Processor(1.0, name="fast"), Processor(2.0)))
        assert plat[0].name == "fast"
        assert plat[1].name == "P2"


class TestViews:
    def test_normalized_speeds_sum_to_one(self):
        plat = StarPlatform.from_speeds([1, 3, 6])
        assert plat.normalized_speeds.sum() == pytest.approx(1.0)
        assert plat.normalized_speeds[2] == pytest.approx(0.6)

    def test_cycle_and_comm_times(self):
        plat = StarPlatform.from_speeds([2.0], bandwidths=[4.0])
        assert plat.cycle_times[0] == pytest.approx(0.5)
        assert plat.comm_times[0] == pytest.approx(0.25)

    def test_total_speed(self):
        assert StarPlatform.from_speeds([1, 2, 3]).total_speed == 6.0

    def test_is_homogeneous_false_on_bandwidth_mix(self):
        plat = StarPlatform.from_speeds([1, 1], bandwidths=[1, 2])
        assert not plat.is_homogeneous

    def test_len_iter_getitem(self):
        plat = StarPlatform.from_speeds([1, 2, 3])
        assert len(plat) == 3
        assert plat[1].speed == 2.0
        assert [p.speed for p in plat] == [1.0, 2.0, 3.0]


class TestTransforms:
    def test_sorted_by_speed(self):
        plat = StarPlatform.from_speeds([3, 1, 2]).sorted_by_speed()
        assert np.array_equal(plat.speeds, [1, 2, 3])

    def test_sorted_descending(self):
        plat = StarPlatform.from_speeds([3, 1, 2]).sorted_by_speed(descending=True)
        assert np.array_equal(plat.speeds, [3, 2, 1])

    def test_sort_preserves_bandwidth_pairing(self):
        plat = StarPlatform.from_speeds([3, 1], bandwidths=[30, 10]).sorted_by_speed()
        assert np.array_equal(plat.speeds, [1, 3])
        assert np.array_equal(plat.bandwidths, [10, 30])

    def test_with_comm_model(self):
        plat = StarPlatform.from_speeds([1]).with_comm_model(OnePort())
        assert plat.comm_model.name == "one-port"

    def test_subset(self):
        plat = StarPlatform.from_speeds([1, 2, 3]).subset([2, 0])
        assert np.array_equal(plat.speeds, [3, 1])

    def test_subset_empty_rejected(self):
        with pytest.raises(ValueError):
            StarPlatform.from_speeds([1]).subset([])

    def test_describe_mentions_all_workers(self):
        text = StarPlatform.from_speeds([1, 2]).describe()
        assert "P1" in text and "P2" in text


class TestFingerprint:
    def test_stable_across_instances(self):
        a = StarPlatform.from_speeds([1, 2, 4], bandwidths=[1, 2, 1])
        b = StarPlatform.from_speeds([1, 2, 4], bandwidths=[1, 2, 1])
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_is_hex_of_requested_length(self):
        fp = StarPlatform.from_speeds([1, 2]).fingerprint()
        assert len(fp) == 16
        int(fp, 16)  # raises if not hex
        assert len(StarPlatform.from_speeds([1, 2]).fingerprint(64)) == 64

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            StarPlatform.from_speeds([1]).fingerprint(0)
        with pytest.raises(ValueError):
            StarPlatform.from_speeds([1]).fingerprint(65)

    def test_sensitive_to_speeds(self):
        assert (
            StarPlatform.from_speeds([1, 2]).fingerprint()
            != StarPlatform.from_speeds([1, 3]).fingerprint()
        )

    def test_sensitive_to_bandwidths(self):
        assert (
            StarPlatform.from_speeds([1, 2], bandwidths=[1, 1]).fingerprint()
            != StarPlatform.from_speeds([1, 2], bandwidths=[1, 2]).fingerprint()
        )

    def test_sensitive_to_worker_order(self):
        assert (
            StarPlatform.from_speeds([1, 2]).fingerprint()
            != StarPlatform.from_speeds([2, 1]).fingerprint()
        )

    def test_sensitive_to_comm_model(self):
        plat = StarPlatform.from_speeds([1, 2])
        assert plat.fingerprint() != plat.with_comm_model(OnePort()).fingerprint()

    def test_sensitive_to_comm_model_parameters(self):
        from repro.platform.comm_models import BoundedMultiport

        plat = StarPlatform.from_speeds([1, 2])
        narrow = plat.with_comm_model(BoundedMultiport(master_bandwidth=1.0))
        wide = plat.with_comm_model(BoundedMultiport(master_bandwidth=100.0))
        assert narrow.fingerprint() != wide.fingerprint()

    def test_insensitive_to_worker_names(self):
        # names are presentation only; content hash ignores them
        base = StarPlatform.from_speeds([1, 2])
        renamed = StarPlatform(
            tuple(p.renamed(f"W{i}") for i, p in enumerate(base.processors))
        )
        assert base.fingerprint() == renamed.fingerprint()
