"""Tests for repro.experiments.report and the footprint experiment."""

import pytest

from repro.experiments.footprint import run_footprint_experiment
from repro.experiments.report import build_report


class TestFootprintExperiment:
    def test_rows_and_invariants(self):
        result = run_footprint_experiment(
            configs=(([1.0, 2.0, 4.0], 8), ([1.0, 1.0, 5.0, 9.0], 12))
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.affinity_shipped <= row.plain_shipped + 1e-9
            assert row.affinity_shipped == pytest.approx(row.union_footprint)
            assert 0.0 <= row.saved_fraction < 1.0

    def test_render(self):
        text = run_footprint_experiment(
            configs=(([1.0, 3.0], 6),)
        ).render()
        assert "affinity" in text and "footprint" in text


class TestReport:
    def test_small_report_builds(self):
        report = build_report(trials=2, processors=(10, 20), charts=True)
        text = report.text
        assert "REPRODUCTION REPORT" in text
        assert "SECTION 2" in text
        assert "FIGURE 4 (uniform)" in text
        assert "rho" in text
        # charts included
        assert "o=het" in text
        assert set(report.figure4) == {"homogeneous", "uniform", "lognormal"}

    def test_charts_can_be_disabled(self):
        report = build_report(trials=2, processors=(10,), charts=False)
        assert "o=het" not in report.text

    def test_save(self, tmp_path):
        report = build_report(trials=2, processors=(10,), charts=False)
        path = tmp_path / "report.txt"
        report.save(str(path))
        assert path.read_text().startswith("REPRODUCTION REPORT")
