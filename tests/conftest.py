"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.platform.star import StarPlatform


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def homogeneous_platform() -> StarPlatform:
    return StarPlatform.homogeneous(4)


@pytest.fixture
def heterogeneous_platform() -> StarPlatform:
    return StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0], bandwidths=[1.0, 2.0, 1.0, 4.0])


@pytest.fixture
def half_fast_platform() -> StarPlatform:
    return StarPlatform.from_speeds([1.0, 1.0, 1.0, 9.0, 9.0, 9.0])


# ---- hypothesis strategies -------------------------------------------------

#: positive speeds with bounded dynamic range (keeps float math honest)
speeds_strategy = st.lists(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=24,
)

#: strictly positive area vectors; tests normalise them to sum to 1
areas_strategy = st.lists(
    st.floats(min_value=1e-3, max_value=1.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=24,
)


def normalize(values) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    return arr / arr.sum()
