"""Tests for repro.platform.tree."""

import pytest

from repro.platform.tree import TreeNode, TreePlatform


class TestTreeNode:
    def test_add_child_links_parent(self):
        root = TreeNode(speed=1.0, name="r")
        child = root.add_child(speed=2.0)
        assert child.parent is root
        assert child.name == "r.1"
        assert not root.is_leaf and child.is_leaf

    def test_depth_and_height(self):
        root = TreeNode(speed=1.0)
        a = root.add_child(1.0)
        b = a.add_child(1.0)
        assert root.depth == 0 and b.depth == 2
        assert root.height == 2 and b.height == 0

    def test_subtree_iteration_preorder(self):
        root = TreeNode(speed=1.0, name="r")
        a = root.add_child(1.0, name="a")
        root.add_child(1.0, name="b")
        a.add_child(1.0, name="a1")
        names = [n.name for n in root.iter_subtree()]
        assert names == ["r", "a", "a1", "b"]

    def test_total_speed(self):
        root = TreeNode(speed=1.0)
        root.add_child(2.0).add_child(3.0)
        assert root.total_speed == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TreeNode(speed=0.0)
        with pytest.raises(ValueError):
            TreeNode(speed=1.0, bandwidth=-1.0)


class TestTreePlatform:
    def test_star_factory(self):
        plat = TreePlatform.star([1.0, 2.0, 3.0], bandwidths=2.0)
        assert plat.size == 4
        assert plat.height == 1
        assert len(plat.leaves()) == 3
        assert plat.root.children[1].speed == 2.0

    def test_star_bandwidth_length_checked(self):
        with pytest.raises(ValueError):
            TreePlatform.star([1.0, 2.0], bandwidths=[1.0])

    def test_balanced_factory(self):
        plat = TreePlatform.balanced(depth=2, fanout=3)
        assert plat.size == 1 + 3 + 9
        assert plat.height == 2
        assert len(plat.leaves()) == 9

    def test_balanced_validation(self):
        with pytest.raises(ValueError):
            TreePlatform.balanced(depth=-1, fanout=2)

    def test_root_must_be_root(self):
        root = TreeNode(speed=1.0)
        child = root.add_child(1.0)
        with pytest.raises(ValueError):
            TreePlatform(child)

    def test_describe(self):
        plat = TreePlatform.star([1.0, 2.0])
        text = plat.describe()
        assert "master" in text and "P1" in text and "P2" in text
