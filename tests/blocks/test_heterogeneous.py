"""Tests for repro.blocks.heterogeneous — the Comm_het strategy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.heterogeneous import HeterogeneousBlocksStrategy
from repro.core.bounds import comm_het_upper_bound, lower_bound_comm
from repro.platform.star import StarPlatform

speeds_lists = st.lists(
    st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=16
)


class TestPlan:
    @given(speeds=speeds_lists, N=st.floats(min_value=10.0, max_value=1e5))
    @settings(max_examples=50, deadline=None)
    def test_volume_between_lb_and_guarantee(self, speeds, N):
        """LB <= Comm_het <= (7/4) LB — the §4.1.2 sandwich."""
        plat = StarPlatform.from_speeds(speeds)
        plan = HeterogeneousBlocksStrategy().plan(plat, N)
        lb = lower_bound_comm(N, speeds)
        assert lb - 1e-6 <= plan.comm_volume
        assert plan.comm_volume <= comm_het_upper_bound(N, speeds) + 1e-6

    def test_perfect_balance_by_construction(self):
        plat = StarPlatform.from_speeds([1.0, 2.0, 7.0])
        plan = HeterogeneousBlocksStrategy().plan(plat, 1000.0)
        assert plan.imbalance == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(plan.finish_times, plan.finish_times[0])

    def test_partition_areas_match_speeds(self):
        speeds = [1.0, 3.0, 6.0]
        plat = StarPlatform.from_speeds(speeds)
        plan = HeterogeneousBlocksStrategy().plan(plat, 100.0)
        part = plan.detail["partition"]
        owners = part.by_owner()
        x = np.asarray(speeds) / np.sum(speeds)
        for i in range(3):
            assert owners[i].area == pytest.approx(x[i])

    def test_scaled_partition_provided(self):
        plat = StarPlatform.from_speeds([1.0, 1.0])
        plan = HeterogeneousBlocksStrategy().plan(plat, 50.0)
        scaled = plan.detail["scaled_partition"]
        assert scaled.side == pytest.approx(50.0)
        assert plan.comm_volume == pytest.approx(scaled.sum_half_perimeters)

    def test_observed_quality_matches_paper(self):
        """§4.3: within ~2% of LB for realistic 100-processor platforms."""
        rng = np.random.default_rng(5)
        speeds = rng.uniform(1, 100, 100)
        plat = StarPlatform.from_speeds(speeds)
        plan = HeterogeneousBlocksStrategy().plan(plat, 10_000.0)
        assert plan.ratio_to_lower_bound < 1.02

    def test_homogeneous_nearly_optimal(self):
        plat = StarPlatform.homogeneous(16)
        plan = HeterogeneousBlocksStrategy().plan(plat, 1600.0)
        assert plan.ratio_to_lower_bound == pytest.approx(1.0, abs=1e-9)
