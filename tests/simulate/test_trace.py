"""Tests for repro.simulate.trace."""

import pytest

from repro.simulate.trace import Trace, TraceRecord, render_gantt


class TestTraceRecord:
    def test_duration(self):
        assert TraceRecord("w", "compute", 1.0, 3.5).duration == 2.5

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord("w", "compute", 2.0, 1.0)


class TestTrace:
    def test_makespan(self):
        tr = Trace()
        tr.add("a", "recv", 0.0, 1.0)
        tr.add("b", "compute", 1.0, 4.0)
        assert tr.makespan == 4.0

    def test_empty_makespan(self):
        assert Trace().makespan == 0.0

    def test_by_worker_sorted(self):
        tr = Trace()
        tr.add("a", "compute", 2.0, 3.0)
        tr.add("a", "recv", 0.0, 1.0)
        recs = tr.by_worker()["a"]
        assert [r.kind for r in recs] == ["recv", "compute"]

    def test_busy_time_filters_kinds(self):
        tr = Trace()
        tr.add("a", "recv", 0.0, 1.0)
        tr.add("a", "compute", 1.0, 4.0)
        assert tr.busy_time("a") == 3.0
        assert tr.busy_time("a", kinds=("recv", "compute")) == 4.0


class TestGantt:
    def test_renders_rows_per_worker(self):
        tr = Trace()
        tr.add("P1", "recv", 0.0, 1.0)
        tr.add("P1", "compute", 1.0, 2.0)
        tr.add("P2", "recv", 0.0, 2.0)
        out = render_gantt(tr, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("P1")
        assert lines[1].startswith("P2")
        assert "=" in lines[1] and "#" in lines[0]

    def test_empty_trace(self):
        assert render_gantt(Trace()) == "(empty trace)"

    def test_width_validated(self):
        tr = Trace()
        tr.add("a", "recv", 0.0, 1.0)
        with pytest.raises(ValueError):
            render_gantt(tr, width=5)

    def test_idle_shown_as_dots(self):
        tr = Trace()
        tr.add("a", "compute", 5.0, 10.0)
        row = render_gantt(tr, width=20).splitlines()[0]
        assert "." in row  # the idle prefix
