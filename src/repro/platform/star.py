"""The star (master–worker) platform aggregate."""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.platform.comm_models import CommunicationModel, ParallelLinks
from repro.platform.processor import Processor
from repro.util.validation import check_positive_array


@dataclass(frozen=True)
class StarPlatform:
    """A master plus ``p`` heterogeneous workers.

    The master holds all input data and is not itself a compute resource
    (the paper's model); workers are indexed ``0 .. p-1`` in Python even
    though the paper writes :math:`P_1 \\dots P_p`.

    Vectorised views (``speeds``, ``cycle_times``, ``comm_times``,
    ``normalized_speeds``) are the arrays every solver in the library
    consumes; they are computed once and cached.
    """

    processors: tuple[Processor, ...]
    comm_model: CommunicationModel = field(default_factory=ParallelLinks)

    def __post_init__(self) -> None:
        if len(self.processors) == 0:
            raise ValueError("a platform needs at least one worker")
        named = tuple(
            proc if proc.name != "P?" else proc.renamed(f"P{i + 1}")
            for i, proc in enumerate(self.processors)
        )
        object.__setattr__(self, "processors", named)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_speeds(
        cls,
        speeds: Sequence[float],
        bandwidths: Sequence[float] | float = 1.0,
        comm_model: CommunicationModel | None = None,
    ) -> "StarPlatform":
        """Build a platform from raw speed (and bandwidth) vectors."""
        speeds = check_positive_array(speeds, "speeds")
        if np.isscalar(bandwidths):
            bandwidths = np.full(speeds.size, float(bandwidths))
        bandwidths = check_positive_array(bandwidths, "bandwidths")
        if bandwidths.size != speeds.size:
            raise ValueError(
                f"{speeds.size} speeds but {bandwidths.size} bandwidths"
            )
        procs = tuple(
            Processor(speed=float(s), bandwidth=float(b))
            for s, b in zip(speeds, bandwidths)
        )
        return cls(procs, comm_model=comm_model or ParallelLinks())

    @classmethod
    def homogeneous(
        cls,
        p: int,
        speed: float = 1.0,
        bandwidth: float = 1.0,
        comm_model: CommunicationModel | None = None,
    ) -> "StarPlatform":
        """``p`` identical workers — the §2 analysis platform."""
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        return cls.from_speeds(
            np.full(p, float(speed)),
            np.full(p, float(bandwidth)),
            comm_model=comm_model,
        )

    # -- basic views ----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of workers ``p``."""
        return len(self.processors)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def __getitem__(self, i: int) -> Processor:
        return self.processors[i]

    @property
    def speeds(self) -> np.ndarray:
        """Speed vector :math:`s_i` (work units per time unit)."""
        return np.array([proc.speed for proc in self.processors])

    @property
    def cycle_times(self) -> np.ndarray:
        """Cycle-time vector :math:`w_i = 1/s_i`."""
        return 1.0 / self.speeds

    @property
    def bandwidths(self) -> np.ndarray:
        """Incoming bandwidth of each worker."""
        return np.array([proc.bandwidth for proc in self.processors])

    @property
    def comm_times(self) -> np.ndarray:
        """Per-unit communication time :math:`c_i`."""
        return 1.0 / self.bandwidths

    @property
    def normalized_speeds(self) -> np.ndarray:
        """:math:`x_i = s_i / \\sum_k s_k` — sums to one (§4.1)."""
        s = self.speeds
        return s / s.sum()

    @property
    def total_speed(self) -> float:
        """Aggregate speed :math:`\\sum_i s_i`."""
        return float(self.speeds.sum())

    @property
    def is_homogeneous(self) -> bool:
        """True when all workers share one speed and one bandwidth."""
        s, b = self.speeds, self.bandwidths
        return bool(np.all(s == s[0]) and np.all(b == b[0]))

    # -- transforms -------------------------------------------------------

    def sorted_by_speed(self, descending: bool = False) -> "StarPlatform":
        """A copy with workers re-indexed by speed (paper sorts ascending)."""
        order = np.argsort(self.speeds, kind="stable")
        if descending:
            order = order[::-1]
        procs = tuple(
            Processor(self.processors[i].speed, self.processors[i].bandwidth)
            for i in order
        )
        return StarPlatform(procs, comm_model=self.comm_model)

    def with_comm_model(self, comm_model: CommunicationModel) -> "StarPlatform":
        """A copy using a different communication model."""
        return StarPlatform(self.processors, comm_model=comm_model)

    def subset(self, indices: Iterable[int]) -> "StarPlatform":
        """The sub-platform of the given worker indices (re-named)."""
        idx = list(indices)
        if not idx:
            raise ValueError("subset needs at least one index")
        procs = tuple(
            Processor(self.processors[i].speed, self.processors[i].bandwidth)
            for i in idx
        )
        return StarPlatform(procs, comm_model=self.comm_model)

    def fingerprint(self, length: int = 16) -> str:
        """Stable content hash of the platform (hex digest).

        Hashes the exact float bits of every worker's speed and
        bandwidth, in worker order, plus the communication model's name
        and (for dataclass models, i.e. all built-ins) its field
        values — so e.g. two ``BoundedMultiport`` platforms differing
        only in ``master_bandwidth`` fingerprint differently.  Two
        platforms with identical content fingerprint identically in
        any process (unlike ``hash()``, which is salted per run), so the
        digest is usable as a cache key component and in experiment
        reports.  ``length`` truncates the sha256 hex digest (default 16
        hex chars = 64 bits; pass 64 for the full digest).
        """
        if not 1 <= length <= 64:
            raise ValueError(f"length must be in 1..64, got {length}")
        h = hashlib.sha256()
        h.update(self.comm_model.name.encode("utf-8"))
        if dataclasses.is_dataclass(self.comm_model):
            for f in dataclasses.fields(self.comm_model):
                h.update(f.name.encode("utf-8"))
                h.update(repr(getattr(self.comm_model, f.name)).encode("utf-8"))
        for proc in self.processors:
            h.update(struct.pack("<dd", proc.speed, proc.bandwidth))
        return h.hexdigest()[:length]

    # -- convenience -----------------------------------------------------

    def describe(self) -> str:
        """Human-readable one-line-per-worker summary."""
        lines = [
            f"StarPlatform(p={self.size}, comm={self.comm_model.name})"
        ]
        for proc in self.processors:
            lines.append(
                f"  {proc.name}: speed={proc.speed:.4g} "
                f"(w={proc.cycle_time:.4g}), bw={proc.bandwidth:.4g} "
                f"(c={proc.comm_time:.4g})"
            )
        return "\n".join(lines)
