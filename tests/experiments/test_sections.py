"""Tests for the Section-2/3 and rho experiment harnesses."""

import pytest

from repro.experiments.rho import run_rho_experiment
from repro.experiments.runner import sweep_mean_std
from repro.experiments.section2 import run_section2
from repro.experiments.section3 import run_section3


class TestRunner:
    def test_mean_std_deterministic(self):
        fn = lambda x, rng: x + rng.normal()  # noqa: E731
        a = sweep_mean_std(fn, [1.0, 2.0], trials=5, seed=0)
        b = sweep_mean_std(fn, [1.0, 2.0], trials=5, seed=0)
        assert (a.means == b.means).all()
        assert a.trials == 5

    def test_constant_fn_zero_std(self):
        res = sweep_mean_std(lambda x, rng: float(x), [3.0], trials=4, seed=0)
        assert res.means[0] == 3.0
        assert res.stds[0] == 0.0

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            sweep_mean_std(lambda x, rng: 0.0, [1], trials=0)


class TestSection2:
    def test_solver_matches_analytic_on_homogeneous(self):
        res = run_section2(processors=(4, 16), alphas=(2.0,), N=500.0)
        for row in res.rows:
            assert row.solved_fraction_homogeneous == pytest.approx(
                row.analytic_fraction, rel=1e-5
            )

    def test_fraction_decreases_with_P(self):
        res = run_section2(processors=(2, 8, 32), alphas=(2.0,))
        fracs = [r.analytic_fraction for r in res.rows]
        assert fracs == sorted(fracs, reverse=True)

    def test_rounds_grow_with_alpha(self):
        res = run_section2(processors=(16,), alphas=(1.5, 3.0))
        rounds = [r.rounds_for_99pct for r in res.rows]
        assert rounds[1] > rounds[0]

    def test_render(self):
        text = run_section2(processors=(4,), alphas=(2.0,)).render()
        assert "Section 2" in text and "rounds" in text


class TestSection3:
    def test_residue_table_values(self):
        res = run_section3(
            residue_Ns=(2**10,), residue_ps=(4,), exec_N=5000, exec_ps=(4,)
        )
        assert res.residue_rows[0].residual_fraction == pytest.approx(0.2)

    def test_executions_actually_sort(self):
        res = run_section3(exec_N=20_000, exec_ps=(4,))
        assert all(r.sorted_ok for r in res.execution_rows)

    def test_render_has_both_tables(self):
        text = run_section3(exec_N=10_000, exec_ps=(4,)).render()
        assert "residue" in text and "executed" in text


class TestRho:
    def test_measured_rho_exceeds_simple_bound(self):
        """ρ >= √k - 1 (§4.1.3) for every k.

        The paper's chain assumes Comm_het ≈ LB, which holds as p grows;
        p = 40 workers is comfortably in that regime.
        """
        res = run_rho_experiment(ks=(4, 16, 36), p=40, N=4000.0)
        for row in res.rows:
            assert row.measured_rho >= row.bound_simple - 1e-9

    def test_rho_grows_with_k(self):
        res = run_rho_experiment(ks=(4, 16, 64), p=10, N=2000.0)
        rhos = [r.measured_rho for r in res.rows]
        assert rhos == sorted(rhos)

    def test_k_one_homogeneous(self):
        res = run_rho_experiment(ks=(1,), p=10, N=2000.0)
        assert res.rows[0].measured_rho == pytest.approx(1.0, abs=0.05)

    def test_render(self):
        text = run_rho_experiment(ks=(4,), p=6, N=500.0).render()
        assert "rho" in text
