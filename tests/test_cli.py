"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure4_defaults(self):
        args = build_parser().parse_args(["figure4"])
        assert args.model == "uniform"
        assert args.trials == 100

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure4", "--model", "weird"])


class TestCommands:
    def test_plan(self, capsys):
        rc = main(["plan", "--speeds", "1", "2", "4", "--N", "1000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rho" in out and "het" in out

    def test_sort(self, capsys):
        rc = main(["sort", "--n", "20000", "--speeds", "1", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sorted=True" in out

    def test_figure4_small(self, capsys):
        rc = main(
            ["figure4", "--model", "homogeneous", "--processors", "10",
             "--trials", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 4" in out

    def test_section2(self, capsys):
        rc = main(["section2", "--processors", "4", "--alphas", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Section 2" in out

    def test_section3(self, capsys):
        rc = main(["section3", "--n", "10000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "residue" in out

    def test_rho(self, capsys):
        rc = main(["rho", "--k", "4", "--p", "10", "--N", "500"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rho" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "r.txt"
        rc = main(
            ["report", "--trials", "2", "--no-charts", "--output", str(out_file)]
        )
        assert rc == 0
        assert "written" in capsys.readouterr().out
        assert out_file.read_text().startswith("REPRODUCTION REPORT")

    def test_compare_backend_flag(self, capsys):
        rc = main(
            ["compare", "--speeds", "1", "2", "4", "--N", "500",
             "--backend", "threaded", "--jobs", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Strategy sweep" in out
        assert "cache:" in out

    def test_compare_no_cache(self, capsys):
        rc = main(
            ["compare", "--speeds", "1", "2", "--N", "500", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "cache:" not in out

    def test_unknown_backend_is_user_error(self, capsys):
        rc = main(["compare", "--speeds", "1", "2", "--backend", "nope"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown backend 'nope'" in err

    def test_cache_stats(self, capsys):
        rc = main(
            ["cache-stats", "--speeds", "1", "2", "4", "--N", "500",
             "--repeats", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Plan cache statistics" in out
        # repeats 2 and 3 hit everything the first sweep planned
        assert "hit(s)" in out

    def test_cache_stats_no_cache(self, capsys):
        rc = main(
            ["cache-stats", "--speeds", "1", "2", "--N", "500", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "plan cache disabled" in out

    def test_plan_strategy_with_backend(self, capsys):
        rc = main(
            ["plan", "--speeds", "1", "2", "--N", "500",
             "--strategy", "het", "--backend", "process"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "planned in" in out or "served from cache" in out

    def test_nonpositive_jobs_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["compare", "--speeds", "1", "2", "--jobs", "0"])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_figure4_no_cache(self, capsys):
        rc = main(
            ["figure4", "--model", "homogeneous", "--processors", "10",
             "--trials", "2", "--no-cache"]
        )
        assert rc == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_list_backends(self, capsys):
        rc = main(["list", "backend"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("serial", "threaded", "process"):
            assert name in out

    def test_seed_threaded_through(self, capsys):
        main(["--seed", "7", "sort", "--n", "5000"])
        first = capsys.readouterr().out
        main(["--seed", "7", "sort", "--n", "5000"])
        second = capsys.readouterr().out
        assert first == second


class TestCompareCostModel:
    def test_coverage_column_printed(self, capsys):
        rc = main(
            ["compare", "--speeds", "1", "2", "4", "--N", "100",
             "--cost-model", "piecewise"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "work coverage under cost model 'piecewise'" in out

    def test_unknown_cost_model_is_clean_error(self, capsys):
        rc = main(
            ["compare", "--speeds", "1", "2", "--cost-model", "nope"]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown cost_model" in err


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8640
        assert args.backend == "serial"

    def test_serve_accepts_session_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--backend", "threaded",
             "--cache", "memory:64", "--jobs", "2"]
        )
        assert args.port == 0
        assert args.cache == "memory:64"


class TestBackendSpecs:
    def test_unknown_backend_spec_is_clean_error(self, capsys):
        rc = main(
            ["compare", "--speeds", "1", "2", "--backend", "nope:arg"]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown backend" in err

    def test_unreachable_remote_backend_reports_cleanly(self, capsys):
        rc = main(
            ["compare", "--speeds", "1", "2",
             "--backend", "remote:127.0.0.1:9", "--no-cache"]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "cannot reach plan server" in err
