"""Tests for the asyncio execution backend."""

import asyncio
import threading

import numpy as np
import pytest

from repro import registry
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.platform.star import StarPlatform
from repro.service.asyncio_backend import AsyncioBackend


class TestRegistration:
    def test_registered_under_backend_kind(self):
        assert "asyncio" in registry.available("backend")

    def test_session_spec(self):
        with PlannerSession(backend="asyncio", jobs=2) as session:
            assert isinstance(session.backend, AsyncioBackend)
            assert session.backend.limit == 2


class TestMap:
    def test_order_preserving(self):
        backend = AsyncioBackend(jobs=4)
        try:
            assert backend.map(lambda x: x * x, range(10)) == [
                x * x for x in range(10)
            ]
        finally:
            backend.shutdown()

    def test_single_item_skips_loop(self):
        backend = AsyncioBackend()
        try:
            assert backend.map(lambda x: x + 1, [41]) == [42]
            assert backend._executor is None  # no pool was spun up
        finally:
            backend.shutdown()

    def test_bounded_concurrency(self):
        """Never more than ``jobs`` items in flight at once."""
        backend = AsyncioBackend(jobs=3)
        lock = threading.Lock()
        state = {"now": 0, "peak": 0}
        barrier_delay = 0.01

        def tracked(item):
            import time

            with lock:
                state["now"] += 1
                state["peak"] = max(state["peak"], state["now"])
            time.sleep(barrier_delay)
            with lock:
                state["now"] -= 1
            return item

        try:
            assert backend.map(tracked, range(12)) == list(range(12))
        finally:
            backend.shutdown()
        assert 1 <= state["peak"] <= 3

    def test_map_inside_running_loop_raises_with_guidance(self):
        backend = AsyncioBackend(jobs=2)

        async def call_sync_map():
            backend.map(lambda x: x, [1, 2])

        try:
            with pytest.raises(RuntimeError, match="amap"):
                asyncio.run(call_sync_map())
        finally:
            backend.shutdown()

    def test_amap_awaitable_from_running_loop(self):
        backend = AsyncioBackend(jobs=2)

        async def go():
            return await backend.amap(lambda x: x * 2, [1, 2, 3])

        try:
            assert asyncio.run(go()) == [2, 4, 6]
        finally:
            backend.shutdown()


class TestPlanningEquivalence:
    def test_sweep_matches_serial(self, heterogeneous_platform):
        with PlannerSession() as serial, PlannerSession(
            backend="asyncio", jobs=4
        ) as aio:
            a = serial.sweep(heterogeneous_platform, 5000.0)
            b = aio.sweep(heterogeneous_platform, 5000.0)
        assert list(a.results) == list(b.results)
        for name in a.results:
            assert np.isclose(
                a.results[name].comm_volume,
                b.results[name].comm_volume,
                rtol=1e-12,
            )

    def test_batch_matches_serial(self, heterogeneous_platform):
        requests = [
            PlanRequest(
                platform=StarPlatform.from_speeds([1.0, s]), N=float(n),
                strategy=strategy,
            )
            for s in (2.0, 3.0)
            for n in (500, 1000)
            for strategy in ("hom", "het")
        ]
        with PlannerSession(cache=False) as serial, PlannerSession(
            backend="asyncio", cache=False, jobs=4
        ) as aio:
            a = serial.plan_batch(requests)
            b = aio.plan_batch(requests)
        for x, y in zip(a, b):
            assert np.isclose(x.comm_volume, y.comm_volume, rtol=1e-12)
