"""Property tests: the MapReduce engine vs a trivial reference.

The engine (map → combine → shuffle → reduce, metered) must compute the
same result as the obvious sequential implementation for *any* job that
is combiner-safe, and its meters must satisfy conservation laws.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.engine import MapReduceEngine, MapReduceJob

# records: small tuples of (key-ish int, value int)
records_strategy = st.lists(
    st.tuples(st.integers(0, 10), st.integers(-100, 100)),
    min_size=0,
    max_size=60,
)


def reference_groupsum(records):
    groups = defaultdict(int)
    for k, v in records:
        groups[k] += v
    return dict(groups)


def make_sum_job(n_reducers, combine):
    return MapReduceJob(
        map_fn=lambda rec: [(rec[0], rec[1])],
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        n_reducers=n_reducers,
        combine_fn=(lambda k, vs: [sum(vs)]) if combine else None,
    )


class TestEngineProperties:
    @given(
        records=records_strategy,
        n_reducers=st.integers(1, 6),
        combine=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, records, n_reducers, combine):
        out = MapReduceEngine().run(make_sum_job(n_reducers, combine), records)
        assert out == reference_groupsum(records)

    @given(records=records_strategy, n_reducers=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_meter_conservation(self, records, n_reducers):
        _, m = MapReduceEngine().run_with_metrics(
            make_sum_job(n_reducers, combine=False), records
        )
        assert m.map_input_records == len(records)
        assert m.map_output_records == len(records)
        assert m.shuffle_records == m.map_output_records  # no combiner
        assert sum(m.reducer_volumes) == pytest.approx(m.shuffle_volume)
        assert m.reduce_input_groups == len({k for k, _ in records})
        assert m.reduce_output_records == m.reduce_input_groups

    @given(records=records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_combiner_never_increases_shuffle(self, records):
        _, plain = MapReduceEngine().run_with_metrics(
            make_sum_job(3, combine=False), records
        )
        _, combined = MapReduceEngine().run_with_metrics(
            make_sum_job(3, combine=True), records
        )
        assert combined.shuffle_records <= plain.shuffle_records

    @given(
        records=records_strategy,
        reducers_a=st.integers(1, 6),
        reducers_b=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_independent_of_reducer_count(
        self, records, reducers_a, reducers_b
    ):
        a = MapReduceEngine().run(make_sum_job(reducers_a, False), records)
        b = MapReduceEngine().run(make_sum_job(reducers_b, False), records)
        assert a == b
