"""Cluster mode: one coordinator fronting N plan-server replicas.

A single ``repro serve`` process is the throughput ceiling of the
service layer; this subsystem removes it without changing a single
client.  A :class:`~repro.cluster.coordinator.ClusterCoordinator`
listens on one address, speaks the exact v1/v2 wire protocol of
:class:`~repro.service.server.PlanServer`, and fans requests out to a
pool of ordinary worker replicas:

* :mod:`repro.cluster.pool` — worker registration, heartbeats, and
  liveness (:class:`~repro.cluster.pool.WorkerPool`): replicas that
  miss heartbeats are marked dead and their in-flight batches are
  reassigned.
* :mod:`repro.cluster.dispatch` — routing policies as a registry kind
  (``dispatch``): ``least-loaded`` for raw throughput,
  ``consistent-hash`` keyed on the plan content digest so each
  worker's warm store stays sticky.
* :mod:`repro.cluster.coordinator` — the HTTP front door: proxies
  ``/plan``, ``/plan_batch`` and ``/cache/*``, shards vectorised
  groups across alive workers, retries dead workers' shards elsewhere
  (bounded, bit-identical results — the rtol=1e-12 contract survives
  rerouting), and aggregates ``/metrics`` and ``/cache/stats``.
* :mod:`repro.cluster.lifecycle` — :class:`LocalCluster` plus the
  ``repro cluster up|status|down`` CLI: N local replicas on ephemeral
  ports behind one coordinator, for tests, benchmarks and demos.

Clients need no changes: ``backend="remote:HOST:PORT"`` pointed at the
coordinator plans exactly as against a single server, only faster and
fault-tolerant.
"""

from repro.cluster.coordinator import ClusterCoordinator, NoWorkersError
from repro.cluster.dispatch import (
    Candidate,
    ConsistentHashDispatch,
    DispatchPolicy,
    LeastLoadedDispatch,
    dispatch_from_spec,
    item_digest,
)
from repro.cluster.lifecycle import LocalCluster
from repro.cluster.pool import WorkerInfo, WorkerPool

__all__ = [
    "Candidate",
    "ClusterCoordinator",
    "ConsistentHashDispatch",
    "DispatchPolicy",
    "LeastLoadedDispatch",
    "LocalCluster",
    "NoWorkersError",
    "WorkerInfo",
    "WorkerPool",
    "dispatch_from_spec",
    "item_digest",
]
