"""Section 3 experiment: sorting's vanishing residue + sample-sort quality.

Two tables in one result:

* the residue table — ``log p / log N`` for sweeps of N and p,
  demonstrating that (unlike §2's :math:`1-1/P^{\\alpha-1}`) the
  non-divisible fraction *decreases* in the problem size;
* the execution table — real sample-sort runs (the arrays are actually
  sorted) reporting max-bucket overflow versus Theorem B.4's bound,
  parallel fraction of the makespan, and speedup, on homogeneous and
  heterogeneous platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.almost_linear import (
    sorting_residual_fraction,
    theorem_b4_max_bucket_bound,
)
from repro.platform.generators import make_speeds
from repro.platform.star import StarPlatform
from repro.sorting.sample_sort import sample_sort
from repro.util.rng import SeedLike, make_rng
from repro.util.tables import format_table


@dataclass(frozen=True)
class ResidueRow:
    N: int
    p: int
    residual_fraction: float


@dataclass(frozen=True)
class ExecutionRow:
    N: int
    p: int
    platform_kind: str
    max_bucket: int
    b4_bound: float
    parallel_fraction: float
    speedup: float
    sorted_ok: bool


@dataclass(frozen=True)
class Section3Result:
    residue_rows: tuple[ResidueRow, ...]
    execution_rows: tuple[ExecutionRow, ...]

    def render(self) -> str:
        residue = format_table(
            ["N", "p", "log p / log N"],
            [[r.N, r.p, r.residual_fraction] for r in self.residue_rows],
            title="Section 3: non-divisible residue of sorting",
        )
        execution = format_table(
            [
                "N",
                "p",
                "platform",
                "MaxSize",
                "B.4 bound",
                "parallel frac",
                "speedup",
                "sorted",
            ],
            [
                [
                    r.N,
                    r.p,
                    r.platform_kind,
                    r.max_bucket,
                    r.b4_bound,
                    r.parallel_fraction,
                    r.speedup,
                    r.sorted_ok,
                ]
                for r in self.execution_rows
            ],
            title="Section 3: executed sample sorts",
        )
        return residue + "\n\n" + execution


def run_section3(
    residue_Ns: Sequence[int] = (2**10, 2**14, 2**18, 2**22),
    residue_ps: Sequence[int] = (4, 16, 64, 256),
    exec_N: int = 200_000,
    exec_ps: Sequence[int] = (4, 16),
    seed: SeedLike = 7,
) -> Section3Result:
    """Build both Section-3 tables (experiments E3–E5 of DESIGN.md)."""
    residue_rows = tuple(
        ResidueRow(N=N, p=p, residual_fraction=sorting_residual_fraction(N, p))
        for N in residue_Ns
        for p in residue_ps
    )

    rng = make_rng(seed)
    exec_rows = []
    for p in exec_ps:
        keys = rng.random(exec_N)
        for kind in ("homogeneous", "uniform"):
            speeds = make_speeds(kind, p, rng)
            platform = StarPlatform.from_speeds(speeds)
            result = sample_sort(keys, platform, rng=rng)
            exec_rows.append(
                ExecutionRow(
                    N=exec_N,
                    p=p,
                    platform_kind=kind,
                    max_bucket=result.max_bucket,
                    b4_bound=theorem_b4_max_bucket_bound(exec_N, p),
                    parallel_fraction=result.parallel_fraction,
                    speedup=result.speedup(),
                    sorted_ok=bool(
                        np.array_equal(result.sorted_keys, np.sort(keys))
                    ),
                )
            )
    return Section3Result(
        residue_rows=residue_rows, execution_rows=tuple(exec_rows)
    )
