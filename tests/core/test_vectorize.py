"""Equivalence suite for the vectorised batch-planning path.

The contract (see :mod:`repro.core.vectorize`): for every built-in
strategy and backend, ``plan_batch(..., vectorize=True)`` returns plans
equal to the scalar path — bit-identical where the kernels share the
scalar op order, and within ``rtol = 1e-12`` otherwise — and cache
traffic is identical on both paths, so cached entries are
interchangeable.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import registry
from repro.core.cache import PlanCache
from repro.core.pipeline import PlanRequest, plan_request
from repro.core.session import PlannerSession
from repro.core.vectorize import (
    VectorGroup,
    batch_capable,
    group_key,
    plan_batch_requests,
    plan_request_group,
)
from repro.platform.generators import make_speeds
from repro.platform.star import StarPlatform

RTOL = 1e-12  # the documented vectorisation tolerance

VECTOR_STRATEGIES = ("hom", "het", "hom/k")


def random_platforms(seed=99, sizes=(3, 7, 16), models=("uniform", "lognormal")):
    rng = np.random.default_rng(seed)
    platforms = [StarPlatform.homogeneous(5)]
    for model in models:
        for p in sizes:
            platforms.append(
                StarPlatform.from_speeds(make_speeds(model, p, rng))
            )
    return platforms


def figure4_batch(trials=4, sizes=(10, 20), N=10_000.0, seed=2013):
    """The Figure-4 protocol's requests, flattened into one batch."""
    rng = np.random.default_rng(seed)
    requests = []
    for p in sizes:
        for _ in range(trials):
            platform = StarPlatform.from_speeds(make_speeds("uniform", p, rng))
            for name in registry.available("strategy"):
                requests.append(
                    PlanRequest(
                        platform=platform,
                        N=N,
                        strategy=name,
                        params={"imbalance_target": 0.01},
                    )
                )
    return requests


def assert_results_equivalent(scalar_results, vector_results):
    assert len(scalar_results) == len(vector_results)
    for a, b in zip(scalar_results, vector_results):
        assert a.strategy == b.strategy
        assert a.plan.strategy == b.plan.strategy
        assert a.plan.N == b.plan.N
        assert np.isclose(a.comm_volume, b.comm_volume, rtol=RTOL, atol=0)
        assert np.allclose(
            a.plan.finish_times, b.plan.finish_times, rtol=RTOL, atol=0
        )
        if math.isinf(a.imbalance):
            assert math.isinf(b.imbalance)
        else:
            assert np.isclose(a.imbalance, b.imbalance, rtol=1e-9, atol=1e-15)
        if "counts" in a.plan.detail:
            assert np.array_equal(
                a.plan.detail["counts"], b.plan.detail["counts"]
            )
            assert a.plan.detail["n_blocks"] == b.plan.detail["n_blocks"]
            assert a.plan.detail["subdivision"] == b.plan.detail["subdivision"]
        if "converged" in a.plan.detail:
            assert a.plan.detail["converged"] == b.plan.detail["converged"]


class TestStrategyKernels:
    """Strategy.plan_batch agrees with Strategy.plan, member by member."""

    @pytest.mark.parametrize("name", VECTOR_STRATEGIES)
    def test_random_platforms_and_N_grid(self, name):
        factory = registry.get("strategy", name)
        assert batch_capable(factory)
        strategy = factory()
        platforms, Ns = [], []
        for platform in random_platforms():
            for N in (500.0, 1000.0, 2500.0, 10_000.0):
                platforms.append(platform)
                Ns.append(N)
        batch = strategy.plan_batch(platforms, Ns)
        for platform, N, plan in zip(platforms, Ns, batch):
            scalar = strategy.plan(platform, N)
            assert plan.comm_volume == scalar.comm_volume
            assert np.allclose(
                plan.finish_times, scalar.finish_times, rtol=RTOL, atol=0
            )

    def test_length_mismatch_rejected(self):
        strategy = registry.get("strategy", "het")()
        with pytest.raises(ValueError, match="platforms but"):
            strategy.plan_batch([StarPlatform.homogeneous(2)], [1.0, 2.0])

    def test_invalid_N_rejected(self):
        strategy = registry.get("strategy", "hom")()
        with pytest.raises(ValueError, match="N"):
            strategy.plan_batch([StarPlatform.homogeneous(2)], [-1.0])

    def test_hom_closed_form_path(self):
        """Batches crossing the heap/closed-form threshold stay exact."""
        rng = np.random.default_rng(3)
        platform = StarPlatform.from_speeds(make_speeds("lognormal", 80, rng))
        strategy = registry.get("strategy", "hom")()
        assert strategy.n_blocks(platform, 1000.0) > 1000
        Ns = [float(n) for n in (800, 1000, 1200, 5000)]
        batch = strategy.plan_batch([platform] * len(Ns), Ns)
        for N, plan in zip(Ns, batch):
            scalar = strategy.plan(platform, N)
            assert np.array_equal(plan.finish_times, scalar.finish_times)
            assert plan.comm_volume == scalar.comm_volume


class TestSessionEquivalence:
    """The session-level acceptance: vectorize=True ≡ scalar path."""

    def test_figure4_sweep_batch(self):
        requests = figure4_batch()
        with PlannerSession(cache=False, vectorize=False) as scalar:
            scalar_results = scalar.plan_batch(requests)
        with PlannerSession(cache=False, vectorize=True) as vectorised:
            vector_results = vectorised.plan_batch(requests)
        assert_results_equivalent(scalar_results, vector_results)

    @pytest.mark.parametrize("backend", ["serial", "threaded", "process"])
    def test_every_backend_matches_serial_scalar(self, backend):
        requests = figure4_batch(trials=2, sizes=(8,))
        with PlannerSession(cache=False, vectorize=False) as reference:
            expected = reference.plan_batch(requests)
        with PlannerSession(
            backend=backend, jobs=2, cache=False, vectorize=True
        ) as session:
            got = session.plan_batch(requests)
        assert_results_equivalent(expected, got)

    def test_per_call_override_wins(self, heterogeneous_platform):
        requests = [
            PlanRequest(platform=heterogeneous_platform, N=float(n), strategy="het")
            for n in (100, 200, 300)
        ]
        with PlannerSession(cache=False, vectorize=True) as session:
            on = session.plan_batch(requests)
            off = session.plan_batch(requests, vectorize=False)
        assert_results_equivalent(off, on)

    def test_mixed_params_group_separately(self, heterogeneous_platform):
        """Requests with different effective params never share a kernel."""
        requests = [
            PlanRequest(
                platform=heterogeneous_platform,
                N=float(n),
                strategy="hom/k",
                params={"imbalance_target": target},
            )
            for n in (1000, 2000)
            for target in (0.01, 0.5)
        ]
        with PlannerSession(cache=False, vectorize=True) as session:
            results = session.plan_batch(requests)
        for req, res in zip(requests, results):
            scalar = plan_request(req)
            assert res.plan.detail["subdivision"] == scalar.plan.detail["subdivision"]
            assert np.isclose(
                res.comm_volume, scalar.comm_volume, rtol=RTOL, atol=0
            )


class TestCacheInteraction:
    """Cache traffic and contents are identical on both paths."""

    def test_cache_stats_unchanged_between_paths(self, heterogeneous_platform):
        requests = [
            PlanRequest(platform=heterogeneous_platform, N=float(n), strategy=s)
            for n in (100, 200, 300)
            for s in ("hom", "het")
        ] * 2  # in-batch repeats: lookups are up-front, so both copies miss
        stats = {}
        for vectorize in (False, True):
            with PlannerSession(vectorize=vectorize) as session:
                session.plan_batch(requests)
                session.plan_batch(requests)
                stats[vectorize] = session.cache_stats()
        assert stats[False] == stats[True]
        assert stats[True].hits == 12 and stats[True].misses == 12
        assert stats[True].entries == 6

    def test_warm_entries_interchangeable(self, heterogeneous_platform):
        requests = [
            PlanRequest(platform=heterogeneous_platform, N=float(n), strategy=s)
            for n in (100, 200)
            for s in ("hom", "het")
        ]
        shared = PlanCache()
        with PlannerSession(cache=shared, vectorize=True) as warm:
            planned = warm.plan_batch(requests)
            assert not any(r.cached for r in planned)
        with PlannerSession(cache=shared, vectorize=False) as scalar:
            served = scalar.plan_batch(requests)
        assert all(r.cached for r in served)
        assert_results_equivalent(planned, served)


class TestGroupingAndFallback:
    def test_singleton_groups_plan_scalar(self, heterogeneous_platform):
        """A batch of all-distinct strategies matches per-request planning."""
        requests = [
            PlanRequest(platform=heterogeneous_platform, N=1000.0, strategy=s)
            for s in ("hom", "het", "hom/k")
        ]
        results = plan_batch_requests(requests)
        for req, res in zip(requests, results):
            scalar = plan_request(req)
            assert res.comm_volume == scalar.comm_volume

    def test_strategy_without_kernel_falls_back(self, heterogeneous_platform):
        class ScalarOnlyStrategy:
            """A plugin-style strategy with no plan_batch."""

            def plan(self, platform, N):
                return registry.get("strategy", "het")().plan(platform, N)

        registry.register("strategy", "scalar-only")(ScalarOnlyStrategy)
        try:
            assert not batch_capable(ScalarOnlyStrategy)
            requests = [
                PlanRequest(
                    platform=heterogeneous_platform, N=float(n),
                    strategy="scalar-only",
                )
                for n in (100, 200)
            ]
            with PlannerSession(vectorize=True) as session:
                results = session.plan_batch(requests)
            assert [r.plan.N for r in results] == [100.0, 200.0]
        finally:
            registry.unregister("strategy", "scalar-only")

    def test_group_key_ignores_filtered_params(self, heterogeneous_platform):
        factory = registry.get("strategy", "het")
        a = group_key(
            PlanRequest(
                platform=heterogeneous_platform, N=1.0, strategy="het",
                params={"imbalance_target": 0.01},
            ),
            factory,
        )
        b = group_key(
            PlanRequest(
                platform=heterogeneous_platform, N=2.0, strategy="het",
                params={"imbalance_target": 0.99},
            ),
            factory,
        )
        assert a == b

    def test_plan_request_group_validates_length(self, heterogeneous_platform):
        class ShortStrategy:
            def plan(self, platform, N):  # pragma: no cover - unused
                raise AssertionError

            def plan_batch(self, platforms, Ns):
                return []

        registry.register("strategy", "short")(ShortStrategy)
        try:
            group = VectorGroup(
                strategy="short",
                requests=tuple(
                    PlanRequest(
                        platform=heterogeneous_platform, N=float(n),
                        strategy="short",
                    )
                    for n in (1, 2)
                ),
            )
            with pytest.raises(RuntimeError, match="returned 0 plans"):
                plan_request_group(group)
        finally:
            registry.unregister("strategy", "short")

    def test_group_timing_is_shared(self, heterogeneous_platform):
        requests = [
            PlanRequest(platform=heterogeneous_platform, N=float(n), strategy="het")
            for n in (100, 200, 300)
        ]
        results = plan_batch_requests(requests)
        shares = {r.elapsed_s for r in results}
        assert len(shares) == 1  # one kernel call, evenly attributed
        assert shares.pop() > 0.0
