"""A single worker of the star platform."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Processor:
    """One worker :math:`P_i` of a master–worker star.

    Parameters
    ----------
    speed:
        Processing speed :math:`s_i` in work units per time unit; the
        paper's cycle time is :math:`w_i = 1/s_i`.
    bandwidth:
        Incoming bandwidth in data units per time unit; the paper's
        per-unit communication time is :math:`c_i = 1/\\text{bandwidth}`.
    name:
        Optional label used in traces; defaults to ``P?`` until the
        processor joins a platform.
    """

    speed: float
    bandwidth: float = 1.0
    name: str = field(default="P?", compare=False)

    def __post_init__(self) -> None:
        check_positive(self.speed, "speed")
        check_positive(self.bandwidth, "bandwidth")

    @property
    def cycle_time(self) -> float:
        """Time :math:`w_i` to process one unit of work."""
        return 1.0 / self.speed

    @property
    def comm_time(self) -> float:
        """Time :math:`c_i` to receive one unit of data from the master."""
        return 1.0 / self.bandwidth

    def compute_time(self, work: float) -> float:
        """Wall time to execute ``work`` units of computation."""
        if work < 0:
            raise ValueError(f"work must be non-negative, got {work}")
        return work * self.cycle_time

    def receive_time(self, data: float) -> float:
        """Wall time to receive ``data`` units over this worker's link."""
        if data < 0:
            raise ValueError(f"data must be non-negative, got {data}")
        return data * self.comm_time

    def renamed(self, name: str) -> "Processor":
        """A copy of this processor carrying ``name`` (used by platforms)."""
        return Processor(speed=self.speed, bandwidth=self.bandwidth, name=name)
