#!/usr/bin/env python3
"""CI smoke for the planning service: serve → remote panel → shared hits.

Boots ``repro serve`` on an ephemeral port with a durable (sqlite)
store, runs the same small Figure-4 panel from two *separate client
processes* with ``--backend remote:HOST:PORT`` and no local cache —
one client per wire profile (``REPRO_WIRE=pickle-v1`` then
``REPRO_WIRE=binary-v2``) — and then asserts:

1. the two panels render identically (remote planning is
   deterministic regardless of the envelope profile on the wire);
2. ``/cache/stats`` reports disk hits — the binary-v2 client was
   served from the store the pickle-v1 client warmed, so cache
   entries are profile-agnostic;
3. ``/healthz`` advertises both wire profiles for the handshake.

Exits non-zero on any failure; prints a BENCH-style JSON line with the
observed hit counts so CI logs are grep-able.

Run: ``python scripts/service_smoke.py``
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
PANEL_ARGS = [
    "figure4",
    "--model",
    "uniform",
    "--processors",
    "10",
    "--trials",
    "3",
    "--no-cache",  # clients stay cold; all sharing happens server-side
]


def client_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def run_cli(args: list[str], wire_profile: str | None = None) -> str:
    env = client_env()
    if wire_profile:
        env["REPRO_WIRE"] = wire_profile
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"client command {args} failed ({proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc.stdout


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        store = Path(tmp) / "plans.db"
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--cache",
                f"sqlite:{store}",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=client_env(),
        )
        try:
            banner = server.stdout.readline()
            match = re.search(r"listening on (http://[\d.]+:\d+)", banner)
            if not match:
                raise SystemExit(f"no server banner, got: {banner!r}")
            url = match.group(1)
            address = url.removeprefix("http://")

            health = json.loads(
                urllib.request.urlopen(f"{url}/healthz", timeout=10).read()
            )
            assert health["status"] == "ok", health
            assert health["wire_profiles"] == ["binary-v2", "pickle-v1"], (
                f"healthz must advertise both wire profiles: {health}"
            )

            remote = PANEL_ARGS + ["--backend", f"remote:{address}"]
            first = run_cli(remote, wire_profile="pickle-v1")
            stats_after_first = json.loads(
                urllib.request.urlopen(f"{url}/cache/stats", timeout=10).read()
            )
            second = run_cli(remote, wire_profile="binary-v2")
            stats = json.loads(
                urllib.request.urlopen(f"{url}/cache/stats", timeout=10).read()
            )

            assert first == second, (
                "remote panels differ between wire profiles"
            )
            disk_hits = stats["hits"] - stats_after_first["hits"]
            assert stats["entries"] > 0, stats
            assert disk_hits > 0, (
                f"second client produced no shared-store hits: {stats}"
            )
            print(
                "BENCH "
                + json.dumps(
                    {
                        "name": "service_smoke",
                        "wire_profiles": health["wire_profiles"],
                        "entries": stats["entries"],
                        "first_run_misses": stats_after_first["misses"],
                        "second_run_disk_hits": disk_hits,
                    }
                )
            )
            print("service smoke OK")
            return 0
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
            time.sleep(0.1)


if __name__ == "__main__":
    sys.exit(main())
